#!/usr/bin/env python3
"""Trace collection across all three logger flavours, with persistence.

Shows the substrate the paper's deployment ran on: a registry application
(hooked API), a GConf application (preloaded shim) and a file-backed
application (flush diffing) all feeding one time-travel key-value store,
which is then saved to and reloaded from its append-only log.

Run:  python examples/trace_collection.py
"""

import tempfile
from pathlib import Path

from repro import TTKV, create_app
from repro.common.clock import SimClock
from repro.ttkv.persistence import load_ttkv, save_ttkv


def main() -> None:
    clock = SimClock()
    ttkv = TTKV()

    word = create_app("MS Word", clock=clock)          # Windows registry
    evolution = create_app("Evolution Mail", clock=clock)  # GConf
    chrome = create_app("Chrome Browser", clock=clock)     # JSON file

    for app in (word, evolution, chrome):
        logger = app.attach_logger(ttkv)
        print(f"attached {type(logger).__name__} to {app.name}")

    # Some activity: launches read every setting; edits write.
    clock.advance(60)
    word.launch()
    word.open_document("report.doc")
    clock.advance(120)
    evolution.launch()
    evolution.user_set("mail/mark_seen", False)
    evolution.user_set("mail/mark_seen_timeout", 0)
    clock.advance(30)
    chrome.user_set("bookmark_bar/show_on_all_tabs", False)

    print(
        f"\nTTKV now tracks {len(ttkv)} keys: "
        f"{ttkv.total_reads()} reads, {ttkv.total_writes()} writes"
    )
    print("a few recorded modifications:")
    for t, key, value in ttkv.write_events()[:5]:
        print(f"  t={t:7.1f}  {key} = {value!r}")

    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "ttkv.jsonl"
        entries = save_ttkv(ttkv, log_path)
        print(f"\nsaved {entries} log entries to {log_path.name}")
        reloaded = load_ttkv(log_path)
        assert reloaded.write_events() == ttkv.write_events()
        print("reloaded store replays to an identical modification history")

    # Time travel: the bookmark bar's value at any point in the past.
    key = chrome.canonical_key("bookmark_bar/show_on_all_tabs")
    t_before = ttkv.history(key)[0].timestamp - 1
    print(
        f"\ntime travel: {key.rsplit(':', 1)[1]} was "
        f"{ttkv.value_at(key, t_before)!r} before the change, "
        f"{ttkv.current_value(key)!r} now"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""DFS vs BFS search, with and without spurious fix attempts (Fig. 2b).

The user who fumbled with settings before asking Ocasta for help leaves
extra recent versions in the offending cluster's history.  DFS shrugs:
it was going to try that cluster's versions in sequence anyway.  BFS
suffers: reaching a deeper version of any cluster means first trying
that depth on *every* cluster.

Run:  python examples/search_strategies.py
"""

from repro import generate_trace, prepare_scenario, case_by_id, profile_by_name
from repro.core.search import SearchStrategy
from repro.repair.controller import OcastaRepairTool


def trials_needed(trace, spurious: int, strategy: SearchStrategy) -> int:
    scenario = prepare_scenario(
        trace, case_by_id(14), days_before_end=14, spurious_writes=spurious
    )
    tool = OcastaRepairTool(scenario.app, scenario.ttkv)
    report = tool.repair(
        scenario.trial,
        scenario.is_fixed,
        start_time=scenario.injection_time,
        strategy=strategy,
    )
    assert report.fixed
    return report.outcome.trials_to_fix


def main() -> None:
    print("generating the Linux-2 trace (Chrome, 84 days) ...")
    trace = generate_trace(profile_by_name("Linux-2"))

    print("\nerror #14 (home button missing), trials to find the fix:")
    print(f"{'spurious writes':>16} | {'DFS':>5} | {'BFS':>5}")
    print("-" * 34)
    for spurious in (0, 1, 2):
        dfs = trials_needed(trace, spurious, SearchStrategy.DFS)
        bfs = trials_needed(trace, spurious, SearchStrategy.BFS)
        print(f"{spurious:>16} | {dfs:>5} | {bfs:>5}")

    print(
        "\nBFS pays for depth across every cluster; DFS only within the\n"
        "offending cluster — the paper's Fig. 2b in miniature."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Clustering-accuracy analysis (the paper's §VI-A) on two applications.

Evolution Mail is the paper's least accurately clustered application: its
preference dialog applies whole pages of settings at once, and under the
collector's 1-second timestamps those page writes fuse unrelated groups
into oversized clusters.  Chrome, file-backed (the logger diffs flushes
and never sees same-value rewrites), clusters essentially perfectly.

This example reproduces that contrast and prints the oversized clusters
with their ground-truth decomposition.

Run:  python examples/clustering_analysis.py
"""

from repro.core.accuracy import ClusterVerdict, classify_cluster, evaluate_clustering
from repro.core.pipeline import cluster_settings
from repro.experiments.table2 import lab_profile
from repro.workload.tracegen import generate_trace


def analyse(app_name: str) -> None:
    print(f"=== {app_name} ===")
    trace = generate_trace(lab_profile(app_name))
    app = trace.apps[app_name]
    clusters = cluster_settings(trace.ttkv, key_filter=app.key_prefix)
    truth = app.canonical_ground_truth_groups()
    report = evaluate_clustering(
        app_name, clusters, truth, total_keys=len(app.schema)
    )

    accuracy = "N/A" if report.accuracy is None else f"{report.accuracy:.1%}"
    print(
        f"  {report.multi_clusters} multi-setting clusters of "
        f"{report.total_clusters} total; accuracy {accuracy}"
    )
    for verdict, count in report.verdicts.items():
        if count:
            print(f"    {verdict.value}: {count}")

    shown = 0
    for cluster in clusters.multi_clusters():
        verdict = classify_cluster(cluster, truth)
        if verdict in (ClusterVerdict.OVERSIZED, ClusterVerdict.OVERSIZED_AND_UNDERSIZED):
            locals_ = sorted(app.setting_name(k) for k in cluster.keys)
            print(f"    oversized example ({len(cluster)} keys): {locals_[:6]}"
                  + (" ..." if len(locals_) > 6 else ""))
            shown += 1
            if shown == 2:
                break
    print()


def main() -> None:
    analyse("Evolution Mail")
    analyse("Chrome Browser")

    print("Tuning, as §VI-A(b) describes for error #2 (MS Word):")
    # Reproduce the error-2 situation: a Word trace with the Fig. 1a
    # error injected.  At the defaults the limiter ends up alone in an
    # undersized cluster; the paper's tuned parameters pull it together
    # with the Item settings it governs.
    from repro.errors import case_by_id, prepare_scenario

    trace = generate_trace(lab_profile("MS Word"))
    scenario = prepare_scenario(trace, case_by_id(2), days_before_end=14)
    app = scenario.app
    limiter = app.canonical_key("Options/MaxDisplay")
    for window, threshold in ((1.0, 2.0), (30.0, 1.0)):
        clusters = cluster_settings(
            scenario.ttkv, window=window, correlation_threshold=threshold,
            key_filter=app.key_prefix,
        )
        size = len(clusters.cluster_of(limiter)) if limiter in clusters else 0
        print(
            f"  window={window:>4}s threshold={threshold}: "
            f"Max Display clusters with {size - 1} Item settings"
        )


if __name__ == "__main__":
    main()

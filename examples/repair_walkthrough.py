#!/usr/bin/env python3
"""Full repair walkthrough: the paper's §III-B workflow on error #13.

Steps, mirroring how a user drives Ocasta:

1. a multi-week deployment trace is recorded (here: generated for the
   Linux-2 machine, whose user runs Chrome);
2. the configuration error appears — the bookmark bar vanishes (Table
   III error #13), injected 14 days before the end of the trace;
3. the user records a *trial* that makes the symptom visible;
4. Ocasta clusters the settings, sorts the clusters, and rolls cluster
   versions back in a sandbox, taking a screenshot after each trial;
5. the user picks the screenshot showing a fixed application, and
   Ocasta applies the fix permanently.

Run:  python examples/repair_walkthrough.py
"""

from repro import generate_trace, prepare_scenario, case_by_id, profile_by_name
from repro.common.format import format_mmss
from repro.core.search import SearchStrategy
from repro.repair.controller import OcastaRepairTool
from repro.repair.sandbox import Sandbox


def main() -> None:
    print("1. recording 84 days of Chrome usage on the Linux-2 machine ...")
    trace = generate_trace(profile_by_name("Linux-2"))
    stats = trace.ttkv
    print(
        f"   trace: {len(stats)} keys, {stats.total_writes()} writes, "
        f"{stats.total_reads()} reads"
    )

    print("2. injecting error #13 (bookmark bar is missing) 14 days ago ...")
    scenario = prepare_scenario(trace, case_by_id(13), days_before_end=14)

    print("3. the user's trial: launch Chrome, browse to a page")
    erroneous = Sandbox(scenario.app).execute(scenario.trial, None)
    print(f"   erroneous screen shows: bookmark_bar = "
          f"{erroneous.element('bookmark_bar')!r}")
    assert scenario.case.symptomatic(erroneous)

    print("4. searching historical cluster versions (DFS) ...")
    tool = OcastaRepairTool(scenario.app, scenario.ttkv)
    report = tool.repair(
        scenario.trial,
        scenario.is_fixed,
        start_time=scenario.injection_time,
        strategy=SearchStrategy.DFS,
    )
    outcome = report.outcome
    assert report.fixed, "Ocasta must find the fix in the recorded history"
    print(
        f"   fixed after {outcome.trials_to_fix} trials "
        f"({format_mmss(outcome.time_to_fix)} simulated); the user examined "
        f"{outcome.unique_screenshots} unique screenshot(s)"
    )
    print(
        f"   offending cluster: {sorted(report.offending_cluster.keys)} "
        f"(size {report.offending_cluster_size})"
    )

    print("5. applying the fix permanently and re-running the trial ...")
    tool.apply_fix(report)
    healed = Sandbox(scenario.app).execute(scenario.trial, None)
    print(f"   screen now shows: bookmark_bar = {healed.element('bookmark_bar')!r}")
    assert scenario.is_fixed(healed)
    print("done: the application is repaired and Ocasta returns to recording mode")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: cluster configuration settings from an access trace.

This is the smallest end-to-end use of the library's core: feed a
modification history into the time-travel key-value store, run the
paper's clustering (1-second sliding window, complete linkage,
correlation threshold 2), and inspect the clusters and their historical
versions.  The second half shows the way Ocasta actually runs — a live
:class:`ShardedPipeline` session, one shard per application prefix,
updated concurrently through a pluggable executor.

Run:  python examples/quickstart.py
"""

from repro import TTKV, ShardedPipeline, ThreadShardExecutor, cluster_settings
from repro.core.cluster_model import cluster_versions


def main() -> None:
    ttkv = TTKV()

    # A user enables a "mark seen" feature twice and disables it once;
    # the enabler and its timeout are always written together...
    for t, enabled, timeout in ((100.0, True, 1500), (2000.0, False, 1500), (9000.0, True, 2500)):
        ttkv.record_write("mail/mark_seen", enabled, t)
        ttkv.record_write("mail/mark_seen_timeout", timeout, t)

    # ...while an unrelated zoom setting changes on its own schedule.
    for t, zoom in ((500.0, 1.0), (2000.5, 1.25), (7000.0, 1.5)):
        ttkv.record_write("view/zoom", zoom, t)

    clusters = cluster_settings(ttkv)  # paper defaults: window 1 s, corr 2

    print("Clusters found:")
    for cluster in clusters:
        print(f"  cluster {cluster.cluster_id}: {cluster.sorted_keys()}")

    mark_seen = clusters.cluster_of("mail/mark_seen")
    assert "mail/mark_seen_timeout" in mark_seen, "related keys must cluster"
    assert clusters.cluster_of("view/zoom").is_singleton()

    print("\nHistorical versions of the mark-seen cluster (rollback candidates):")
    for version in cluster_versions(ttkv, mark_seen):
        print(f"  t={version.timestamp:8.1f}  {version.values}")

    # Rolling back the cluster restores *both* settings together — the
    # capability that lets Ocasta fix multi-setting configuration errors.
    plan = cluster_versions(ttkv, mark_seen)[0].rollback_plan()
    print(f"\nRollback plan to the first version: {plan.assignments}")

    # Deployment mode: clustering runs continuously alongside logging.
    # A ShardedPipeline keeps one engine per application prefix and, with
    # an executor, updates the dirty shards concurrently; only shards
    # whose journals advanced do any work at all.
    pool = ThreadShardExecutor(4)
    live = ShardedPipeline(ttkv, shard_prefixes=("mail/", "view/"), executor=pool)
    live_clusters = live.update()
    stats = live.last_stats
    print(
        f"\nLive sharded session: {len(live_clusters)} clusters from "
        f"{stats.shards_updated}/{stats.shards_total} shards "
        f"(slowest {stats.slowest_shard!r}, "
        f"{stats.parallel_speedup:.1f}x overlap)"
    )
    assert [c.sorted_keys() for c in live_clusters] == [
        c.sorted_keys() for c in clusters
    ], "streaming must equal batch"
    live.close()
    pool.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fail on broken relative links in README.md and docs/.

Scans markdown files for inline links and images, resolves every
*relative* target against the linking file, and exits non-zero if any
target does not exist.  External links (``http(s)://``, ``mailto:``),
pure in-page anchors (``#...``) and targets that resolve outside the
repository (e.g. GitHub's ``../../actions/...`` badge convention) are
skipped — this gate is about files the repository itself promises.

Usage::

    python scripts/check_links.py [FILE_OR_DIR ...]

Defaults to ``README.md`` and ``docs/``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links and images: [text](target) / ![alt](target).
#: Reference-style definitions: [label]: target
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(text: str) -> str:
    """Drop fenced and inline code spans — links inside them are examples."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path: Path) -> list[str]:
    """All broken relative link targets in one markdown file."""
    text = _strip_code(path.read_text(encoding="utf-8"))
    targets = _INLINE.findall(text) + _REFERENCE.findall(text)
    broken = []
    for target in targets:
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        candidate = target.split("#", 1)[0]
        if not candidate:
            continue
        resolved = (path.parent / candidate).resolve()
        if not resolved.is_relative_to(REPO_ROOT):
            continue  # points outside the repo (e.g. the CI badge): not ours
        if not resolved.exists():
            broken.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return broken


def main(argv: list[str] | None = None) -> int:
    roots = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not roots:
        roots = [REPO_ROOT / "README.md", REPO_ROOT / "docs"]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.exists():
            files.append(root)
        else:
            print(f"FAIL  no such file or directory: {root}", file=sys.stderr)
            return 1
    failures: list[str] = []
    for path in files:
        failures.extend(check_file(path))
    for failure in failures:
        print(f"FAIL  {failure}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} broken link(s)", file=sys.stderr)
        return 1
    print(f"ok    {len(files)} markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Cross-module property tests on the core invariants."""


from hypothesis import given, settings, strategies as st

from repro.core.cluster_model import Cluster, cluster_versions
from repro.core.correlation import CorrelationMatrix
from repro.core.pipeline import cluster_settings
from repro.core.search import (
    SearchStrategy,
    candidate_versions,
    search_order,
    total_candidates,
)
from repro.core.windowing import extract_write_groups, key_group_sets
from repro.ttkv.store import DELETED, TTKV

# modification streams over a small key alphabet
_events = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=5000, allow_nan=False),
        st.sampled_from(["k0", "k1", "k2", "k3"]),
        st.one_of(st.integers(min_value=0, max_value=9), st.just(DELETED)),
    ),
    min_size=1,
    max_size=60,
)


@given(_events)
@settings(max_examples=60, deadline=None)
def test_cluster_versions_match_value_at(events):
    """Every cluster version's values equal value_at at its timestamp."""
    store = TTKV.from_events(events)
    keys = frozenset(store.keys())
    cluster = Cluster(cluster_id=0, keys=keys)
    for version in cluster_versions(store, cluster):
        for key, value in version.values.items():
            assert store.value_at(key, version.timestamp) == value


@given(_events)
@settings(max_examples=60, deadline=None)
def test_cluster_versions_strictly_distinct(events):
    """Consecutive versions always differ (rewrites are coalesced)."""
    store = TTKV.from_events(events)
    cluster = Cluster(cluster_id=0, keys=frozenset(store.keys()))
    versions = cluster_versions(store, cluster)
    for earlier, later in zip(versions, versions[1:]):
        assert earlier.values != later.values
        assert earlier.timestamp < later.timestamp


@given(_events, st.floats(min_value=0, max_value=5000, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_search_strategies_enumerate_identical_candidate_sets(events, start):
    store = TTKV.from_events(events)
    clusters = [
        Cluster(cluster_id=i, keys=frozenset((key,)))
        for i, key in enumerate(sorted(store.keys()))
    ]
    versions = candidate_versions(store, clusters, start=start)
    dfs = list(search_order(clusters, versions, SearchStrategy.DFS))
    bfs = list(search_order(clusters, versions, SearchStrategy.BFS))
    assert len(dfs) == len(bfs) == total_candidates(versions)
    as_set = lambda seq: {
        (c.cluster.cluster_id, c.version.timestamp) for c in seq
    }
    assert as_set(dfs) == as_set(bfs)


@given(_events)
@settings(max_examples=40, deadline=None)
def test_clustering_partitions_modified_keys(events):
    """cluster_settings covers every modified key exactly once."""
    store = TTKV.from_events(events)
    clusters = cluster_settings(store)
    clustered = sorted(k for c in clusters for k in c.keys)
    assert clustered == sorted(store.modified_keys())


@given(_events, st.sampled_from([0.5, 1.0, 1.5, 2.0]))
@settings(max_examples=40, deadline=None)
def test_lower_threshold_coarsens_partition(events, threshold):
    """Clusters at threshold 2 refine the clusters at any lower threshold.

    Complete-linkage cuts are nested: everything merged by distance d is
    still merged at distance d' > d.
    """
    store = TTKV.from_events(events)
    strict = cluster_settings(store, correlation_threshold=2.0)
    loose = cluster_settings(store, correlation_threshold=threshold)
    for cluster in strict:
        # each strict cluster must sit inside exactly one loose cluster
        homes = {loose.cluster_of(key).cluster_id for key in cluster.keys}
        assert len(homes) == 1


@given(_events)
@settings(max_examples=40, deadline=None)
def test_window_zero_groups_at_most_window_one(events):
    """Write groups at window 0 refine the groups at window 1."""
    store = TTKV.from_events(events)
    zero = extract_write_groups(store.write_events(), 0.0)
    one = extract_write_groups(store.write_events(), 1.0)
    assert len(zero) >= len(one)
    # correlations can only grow with the window for co-written pairs
    kg_zero = key_group_sets(zero)
    kg_one = key_group_sets(one)
    if len(kg_zero) >= 2:
        m0 = CorrelationMatrix(kg_zero)
        m1 = CorrelationMatrix(kg_one)
        keys = sorted(kg_zero)
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                if m0.correlation_of(a, b) == 2.0:
                    # always-together at window 0 stays positive at 1
                    assert m1.correlation_of(a, b) > 0.0

"""Tests for oversized/undersized classification and Table II metrics."""

import pytest

from repro.core.accuracy import (
    ClusterVerdict,
    classify_cluster,
    evaluate_clustering,
    mean_accuracy,
    overall_accuracy,
)
from repro.core.cluster_model import ClusterSet

GROUPS = [frozenset({"g1a", "g1b", "g1c"}), frozenset({"g2a", "g2b"})]


class TestClassify:
    def test_exact_group_is_correct(self):
        assert classify_cluster(frozenset({"g1a", "g1b", "g1c"}), GROUPS) is ClusterVerdict.CORRECT

    def test_strict_subset_is_undersized(self):
        assert classify_cluster(frozenset({"g1a", "g1b"}), GROUPS) is ClusterVerdict.UNDERSIZED

    def test_spanning_two_groups_is_oversized(self):
        cluster = frozenset({"g1a", "g1b", "g1c", "g2a", "g2b"})
        assert classify_cluster(cluster, GROUPS) is ClusterVerdict.OVERSIZED

    def test_independent_key_makes_oversized(self):
        cluster = frozenset({"g1a", "g1b", "g1c", "lonely"})
        assert classify_cluster(cluster, GROUPS) is ClusterVerdict.OVERSIZED

    def test_both_oversized_and_undersized(self):
        # spans two groups and misses members of both
        cluster = frozenset({"g1a", "g2a"})
        assert (
            classify_cluster(cluster, GROUPS)
            is ClusterVerdict.OVERSIZED_AND_UNDERSIZED
        )

    def test_two_independents_oversized(self):
        assert classify_cluster(frozenset({"x", "y"}), GROUPS) is ClusterVerdict.OVERSIZED

    def test_overlapping_ground_truth_rejected(self):
        with pytest.raises(ValueError):
            classify_cluster(
                frozenset({"a"}),
                [frozenset({"a", "b"}), frozenset({"b", "c"})],
            )


def _cluster_set(*key_sets):
    return ClusterSet.from_key_sets(
        [frozenset(ks) for ks in key_sets], window=1.0, correlation_threshold=2.0
    )


class TestEvaluate:
    def test_paper_criterion_counts_undersized_as_correct(self):
        # "correct iff there is a dependency relationship among every
        # setting of the cluster" — a pure subset satisfies that.
        cluster_set = _cluster_set({"g1a", "g1b"}, {"g2a", "lonely"})
        report = evaluate_clustering("app", cluster_set, GROUPS)
        assert report.multi_clusters == 2
        assert report.correct_multi_clusters == 1
        assert report.accuracy == 0.5

    def test_exact_accuracy_stricter(self):
        cluster_set = _cluster_set({"g1a", "g1b"}, {"g2a", "g2b"})
        report = evaluate_clustering("app", cluster_set, GROUPS)
        assert report.accuracy == 1.0
        assert report.exact_accuracy == 0.5

    def test_singletons_not_counted(self):
        cluster_set = _cluster_set({"g1a"}, {"g1b"}, {"lonely"})
        report = evaluate_clustering("app", cluster_set, GROUPS)
        assert report.multi_clusters == 0
        assert report.accuracy is None

    def test_verdict_histogram(self):
        cluster_set = _cluster_set(
            {"g1a", "g1b", "g1c"}, {"g2a", "lonely"}, {"g2b", "x", "y"}
        )
        report = evaluate_clustering("app", cluster_set, GROUPS)
        assert report.verdicts[ClusterVerdict.CORRECT] == 1
        oversized_total = (
            report.verdicts[ClusterVerdict.OVERSIZED]
            + report.verdicts[ClusterVerdict.OVERSIZED_AND_UNDERSIZED]
        )
        assert oversized_total == 2

    def test_total_keys_override(self):
        cluster_set = _cluster_set({"g1a", "g1b"})
        report = evaluate_clustering("app", cluster_set, GROUPS, total_keys=99)
        assert report.total_keys == 99


class TestAggregates:
    def _reports(self):
        r1 = evaluate_clustering(
            "one", _cluster_set({"g1a", "g1b", "g1c"}), GROUPS
        )
        r2 = evaluate_clustering(
            "two", _cluster_set({"g2a", "lonely"}, {"x", "y"}, {"g1a", "g1b"}),
            GROUPS,
        )
        return [r1, r2]

    def test_overall_accuracy_pools_clusters(self):
        # 4 multi clusters total, 2 correct -> 0.5
        assert overall_accuracy(self._reports()) == 0.5

    def test_mean_accuracy_averages_apps(self):
        # per-app: 1.0 and 1/3
        assert mean_accuracy(self._reports()) == pytest.approx((1.0 + 1 / 3) / 2)

    def test_empty_aggregates(self):
        assert overall_accuracy([]) is None
        assert mean_accuracy([]) is None

"""Tests for DFS/BFS candidate enumeration."""

import pytest

from repro.core.cluster_model import Cluster, ClusterVersion
from repro.core.search import (
    SearchStrategy,
    candidate_versions,
    search_order,
    total_candidates,
)
from repro.ttkv.store import TTKV


def _cluster(cid, *keys):
    return Cluster(cluster_id=cid, keys=frozenset(keys))


def _version(t):
    return ClusterVersion(timestamp=t, values={"k": t})


@pytest.fixture
def two_clusters():
    c1 = _cluster(1, "a")
    c2 = _cluster(2, "b")
    versions = {
        1: [_version(30.0), _version(20.0), _version(10.0)],
        2: [_version(25.0), _version(5.0)],
    }
    return [c1, c2], versions


class TestSearchOrder:
    def test_dfs_exhausts_cluster_first(self, two_clusters):
        clusters, versions = two_clusters
        order = list(search_order(clusters, versions, SearchStrategy.DFS))
        ids = [(c.cluster.cluster_id, c.version.timestamp) for c in order]
        assert ids == [(1, 30.0), (1, 20.0), (1, 10.0), (2, 25.0), (2, 5.0)]

    def test_bfs_round_robins_depth(self, two_clusters):
        clusters, versions = two_clusters
        order = list(search_order(clusters, versions, SearchStrategy.BFS))
        ids = [(c.cluster.cluster_id, c.version.timestamp) for c in order]
        assert ids == [(1, 30.0), (2, 25.0), (1, 20.0), (2, 5.0), (1, 10.0)]

    def test_both_strategies_cover_all_candidates(self, two_clusters):
        clusters, versions = two_clusters
        dfs = {
            (c.cluster.cluster_id, c.version.timestamp)
            for c in search_order(clusters, versions, SearchStrategy.DFS)
        }
        bfs = {
            (c.cluster.cluster_id, c.version.timestamp)
            for c in search_order(clusters, versions, SearchStrategy.BFS)
        }
        assert dfs == bfs
        assert len(dfs) == total_candidates(versions)

    def test_ranks_recorded(self, two_clusters):
        clusters, versions = two_clusters
        first = next(iter(search_order(clusters, versions, SearchStrategy.DFS)))
        assert first.cluster_rank == 0
        assert first.version_rank == 0

    def test_empty_versions(self):
        cluster = _cluster(1, "a")
        order = list(search_order([cluster], {1: []}, SearchStrategy.DFS))
        assert order == []

    def test_empty_clusters(self):
        assert list(search_order([], {}, SearchStrategy.BFS)) == []


class TestCandidateVersions:
    def test_versions_newest_first(self):
        store = TTKV()
        store.record_write("a", 1, 10.0)
        store.record_write("a", 2, 20.0)
        cluster = _cluster(7, "a")
        versions = candidate_versions(store, [cluster])
        assert [v.timestamp for v in versions[7]] == [20.0, 10.0]

    def test_bounds_forwarded(self):
        store = TTKV()
        for t in (10.0, 20.0, 30.0, 40.0):
            store.record_write("a", t, t)
        cluster = _cluster(7, "a")
        versions = candidate_versions(store, [cluster], start=20.0, end=30.0)
        # 30, 20, plus the pre-start snapshot at 10
        assert [v.timestamp for v in versions[7]] == [30.0, 20.0, 10.0]

    def test_total_candidates(self):
        assert total_candidates({1: [_version(1.0)], 2: []}) == 1

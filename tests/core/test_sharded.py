"""Sharded ≡ unsharded ≡ batch, and checkpoint/resume round-trips.

The contracts under test:

- for every shard prefix, the :class:`ShardedPipeline`'s per-shard
  clusters equal both the batch ``cluster_settings(store,
  key_filter=prefix)`` reference and an unsharded
  :class:`IncrementalPipeline` with the same ``key_filter`` — for **any**
  prefix of a multi-application stream, including same-tick writes that
  straddle prefixes;
- the merged cluster set is exactly the per-shard sets re-sorted;
- a session checkpointed with ``to_state()`` and resumed with
  ``from_state()`` on a re-opened store yields a byte-identical cluster
  set while consuming **zero** already-read journal events.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.incremental import IncrementalPipeline
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.sharding import CATCH_ALL
from repro.ttkv.store import DELETED, TTKV

PREFIXES = ("app_a/", "app_b/", "app_c/")

_KEYS = (
    "app_a/k0", "app_a/k1", "app_a/k2",
    "app_b/k0", "app_b/k1",
    "app_c/k0",
    "sys/noise0", "sys/noise1",
)


def _sorted_stream(events):
    """Events ordered the way a live deployment would append them."""
    return [e for _, e in sorted(enumerate(events), key=lambda p: (p[1][0], p[0]))]


def _key_sets(cluster_set):
    return [tuple(c.sorted_keys()) for c in cluster_set]


def _batch_for_shard(store, shard_id, **params):
    """The batch reference for one shard: filter-then-extract."""
    if shard_id != CATCH_ALL:
        return cluster_settings(store, key_filter=shard_id, **params)
    leftover = TTKV.from_events(
        [
            e
            for e in store.write_events()
            if not any(e[1].startswith(p) for p in PREFIXES)
        ]
    )
    return cluster_settings(leftover, **params)


# Small integer timestamps force same-tick ties, routinely straddling
# prefixes — the case where a global window would bridge applications but
# the sharded (filter-then-extract) semantics must not.
_multi_prefix_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40).map(float),
        st.sampled_from(_KEYS),
        st.one_of(st.integers(min_value=0, max_value=9), st.just(DELETED)),
    ),
    min_size=1,
    max_size=60,
)


@given(_multi_prefix_events, st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_sharded_equals_unsharded_equals_batch(events, rng):
    stream = _sorted_stream(events)
    live = TTKV()
    sharded = ShardedPipeline(live, shard_prefixes=PREFIXES)
    unsharded = {
        prefix: IncrementalPipeline(live, key_filter=prefix)
        for prefix in PREFIXES
    }
    positions = sorted(rng.sample(range(len(stream) + 1), min(4, len(stream) + 1)))
    if len(stream) not in positions:
        positions.append(len(stream))
    consumed = 0
    for position in positions:
        live.record_events(stream[consumed:position])
        consumed = position
        merged = sharded.update()
        for prefix in PREFIXES:
            shard_sets = _key_sets(sharded.cluster_set_for(prefix))
            batch_sets = _key_sets(_batch_for_shard(live, prefix))
            assert shard_sets == batch_sets, (
                f"shard {prefix} diverged from batch at prefix "
                f"{position}/{len(stream)}"
            )
            assert shard_sets == _key_sets(unsharded[prefix].update()), (
                f"shard {prefix} diverged from the unsharded pipeline at "
                f"prefix {position}/{len(stream)}"
            )
        assert _key_sets(sharded.cluster_set_for(CATCH_ALL)) == _key_sets(
            _batch_for_shard(live, CATCH_ALL)
        )
        # the merged set is exactly the per-shard sets re-sorted
        combined = [
            frozenset(keys)
            for shard_id in sharded.shard_ids
            for keys in _key_sets(sharded.cluster_set_for(shard_id))
        ]
        combined.sort(key=lambda c: (-len(c), tuple(sorted(c))))
        assert _key_sets(merged) == [tuple(sorted(c)) for c in combined]


@given(
    _multi_prefix_events,
    st.randoms(use_true_random=False),
    st.sampled_from([0.0, 1.0, 10.0]),
    st.sampled_from([0.5, 2.0]),
)
@settings(max_examples=25, deadline=None)
def test_sharded_equals_batch_across_parameters(events, rng, window, threshold):
    stream = _sorted_stream(events)
    cut = rng.randrange(len(stream) + 1)
    live = TTKV()
    live.record_events(stream[:cut])
    sharded = ShardedPipeline(
        live,
        shard_prefixes=PREFIXES,
        window=window,
        correlation_threshold=threshold,
    )
    sharded.update()
    live.record_events(stream[cut:])
    sharded.update()
    for prefix in PREFIXES:
        assert _key_sets(sharded.cluster_set_for(prefix)) == _key_sets(
            _batch_for_shard(
                live, prefix, window=window, correlation_threshold=threshold
            )
        )


@given(_multi_prefix_events, st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_checkpoint_resume_round_trip(events, rng):
    stream = _sorted_stream(events)
    cut = rng.randrange(len(stream) + 1)

    live = TTKV()
    live.record_events(stream[:cut])
    original = ShardedPipeline(live, shard_prefixes=PREFIXES)
    before = original.update()

    # checkpoint through an actual JSON round trip (the state must be
    # JSON-safe), restart the deployment, re-open the same store
    blob = json.dumps(original.to_state())
    reopened = TTKV()
    reopened.record_events(stream[:cut])
    resumed = ShardedPipeline.from_state(reopened, json.loads(blob))

    after = resumed.update()
    assert resumed.last_stats.events_consumed == 0, (
        "resume must not re-read consumed journal events"
    )
    assert _key_sets(after) == _key_sets(before)
    assert after.window == before.window
    assert after.correlation_threshold == before.correlation_threshold

    # both sessions must agree with batch as the streams keep growing
    live.record_events(stream[cut:])
    reopened.record_events(stream[cut:])
    assert _key_sets(original.update()) == _key_sets(resumed.update())
    for prefix in PREFIXES:
        assert _key_sets(resumed.cluster_set_for(prefix)) == _key_sets(
            _batch_for_shard(reopened, prefix)
        )


class TestShardedBehaviour:
    def test_only_advanced_shards_update(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=("a/", "b/"))
        store.record_write("a/x", 1, 10.0)
        store.record_write("b/y", 1, 10.0)
        pipeline.update()
        assert pipeline.last_stats.shards_updated == 3  # first run: all
        store.record_write("a/x", 2, 500.0)
        first = pipeline.update()
        assert pipeline.last_stats.shards_updated == 1
        assert pipeline.last_stats.shards_total == 3
        second = pipeline.update()  # nothing advanced at all
        assert pipeline.last_stats.shards_updated == 0
        assert pipeline.last_stats.events_consumed == 0
        assert second is first

    def test_catch_all_disabled_drops_unmatched_keys(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",), catch_all=False)
        store.record_write("a/x", 1, 10.0)
        store.record_write("sys/noise", 1, 10.0)
        clusters = pipeline.update()
        assert _key_sets(clusters) == [("a/x",)]
        assert pipeline.shard_ids == ("a/",)

    def test_retuned_parameters_restart_the_session(self):
        store = TTKV()
        store.record_events([
            (0.0, "a/x", 1), (0.0, "a/y", 1), (100.0, "a/x", 2),
        ])
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        pipeline.update()
        pipeline.correlation_threshold = 0.5
        result = pipeline.update()
        assert pipeline.last_stats.rebuilt
        assert _key_sets(result) == _key_sets(
            cluster_settings(store, key_filter="a/", correlation_threshold=0.5)
        )

    def test_retuned_shard_prefixes_restart_the_session(self):
        store = TTKV()
        store.record_write("a/x", 1, 10.0)
        store.record_write("b/y", 1, 10.0)
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        pipeline.update()
        pipeline.shard_prefixes = ("a/", "b/")
        pipeline.update()
        assert pipeline.last_stats.rebuilt
        assert pipeline.shard_ids == ("a/", "b/", CATCH_ALL)

    def test_matrix_for_is_read_only(self):
        store = TTKV()
        store.record_write("a/x", 1, 10.0)
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        pipeline.update()
        view = pipeline.matrix_for("a/")
        assert "a/x" in view
        with pytest.raises(TypeError):
            view.observe_group(99, {"mallory"})

    def test_unknown_shard_raises(self):
        pipeline = ShardedPipeline(TTKV(), shard_prefixes=("a/",))
        with pytest.raises(KeyError):
            pipeline.cluster_set_for("ghost/")

    def test_close_detaches_from_the_store(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        pipeline.update()
        pipeline.close()
        store.record_write("a/x", 1, 10.0)
        # the detached session no longer sees new events
        assert pipeline.last_stats.events_consumed == 0
        assert len(pipeline._engines["a/"].journal) == 0

    def test_reorders_are_absorbed_per_shard(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=("a/", "b/"))
        store.record_write("a/x", 1, 100.0)
        store.record_write("b/y", 1, 100.0)
        pipeline.update()
        # lands before b/'s consumed tail but inside its trailing group;
        # shard a/ is untouched entirely
        store.record_write("b/early", 1, 50.0)
        result = pipeline.update()
        stats = pipeline.last_stats
        assert not stats.rebuilt
        assert stats.reorders_absorbed == 1
        assert stats.shards_updated == 1
        assert _key_sets(pipeline.cluster_set_for("b/")) == _key_sets(
            _batch_for_shard(store, "b/")
        )
        assert ("a/x",) in _key_sets(result)


class TestCheckpointValidation:
    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError):
            ShardedPipeline.from_state(TTKV(), {"version": 99})

    def test_checkpoints_are_written_at_version_3(self):
        pipeline = ShardedPipeline(TTKV(), shard_prefixes=("a/",))
        assert pipeline.to_state()["version"] == 3
        pipeline.close()

    def test_legacy_v1_checkpoint_loads_and_compacts(self):
        # a version-1 checkpoint carries the FULL group history and no
        # compacted baseline; it must still resume, produce identical
        # clusters, and compact on the first update
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        # pin the matrices to the uncompacted v1 behaviour so to_state()
        # emits the legacy layout (batch observation folds internally, so
        # it must be routed back through plain update_groups as well)
        for engine in pipeline._engines.values():
            matrix = engine._matrix
            matrix.compact = lambda keep_from: 0
            matrix.observe_groups_batch = (
                lambda start, groups, _m=matrix: _m.update_groups(
                    added=list(enumerate(groups, start))
                )
            )
        for t in range(12):
            store.record_write("a/x", t, t * 100.0)
            store.record_write("a/y", t, t * 100.0 + 0.2)
        before = pipeline.update()
        legacy = json.loads(json.dumps(pipeline.to_state()))
        legacy["version"] = 1
        assert len(legacy["shards"]["a/"]["groups"]) > 1  # full history
        for shard_state in legacy["shards"].values():
            assert shard_state.pop("compacted") is None
        pipeline.close()

        resumed = ShardedPipeline.from_state(store, legacy)
        assert _key_sets(resumed.update()) == _key_sets(before)
        store.record_write("a/x", 99, 5000.0)
        store.record_write("a/y", 99, 5000.2)
        resumed.update()
        state = resumed.to_state()
        assert state["version"] == 3
        for shard_state in state["shards"].values():
            assert len(shard_state["groups"]) <= 1
        assert state["shards"]["a/"]["compacted"] is not None
        assert _key_sets(resumed.cluster_set) == _key_sets(
            _batch_for_shard(store, "a/")
        )
        resumed.close()

    def test_mismatched_store_rejected(self):
        store = TTKV()
        store.record_write("a/x", 1, 10.0)
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        pipeline.update()
        state = pipeline.to_state()
        # resume over an EMPTY store: the cursor points past the journal
        with pytest.raises(ValueError):
            ShardedPipeline.from_state(TTKV(), state)

    def test_different_stream_same_length_rejected(self):
        # a checkpoint from one deployment must not resume over another
        # store that merely happens to be long enough (regression: only
        # the cursor position used to be validated)
        store = TTKV()
        store.record_write("a/x", 1, 10.0)
        store.record_write("a/y", 1, 700.0)
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        pipeline.update()
        state = json.loads(json.dumps(pipeline.to_state()))
        other = TTKV()
        other.record_write("a/completely", 9, 1.0)
        other.record_write("a/different", 9, 2.0)
        with pytest.raises(ValueError):
            ShardedPipeline.from_state(other, state)

    def test_fresh_session_round_trips(self):
        # checkpointing before any update() must also work
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        state = json.loads(json.dumps(pipeline.to_state()))
        resumed = ShardedPipeline.from_state(TTKV(), state)
        assert len(resumed.update()) == 0

    def test_deleted_values_survive_the_state_round_trip(self):
        store = TTKV()
        store.record_write("a/x", 1, 10.0)
        store.record_delete("a/x", 10.5)  # deletion inside the trailing group
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        before = pipeline.update()
        blob = json.dumps(pipeline.to_state())
        reopened = TTKV()
        reopened.record_write("a/x", 1, 10.0)
        reopened.record_delete("a/x", 10.5)
        resumed = ShardedPipeline.from_state(reopened, json.loads(blob))
        assert _key_sets(resumed.update()) == _key_sets(before)
        assert resumed.last_stats.events_consumed == 0


class TestTypedCheckpointErrors:
    """Damaged checkpoints raise typed errors, never bare KeyError/TypeError.

    Covers every supported state version (1–3): a truncated or corrupted
    checkpoint — missing fields, wrong-typed sections, mangled shard
    entries — must surface as
    :class:`~repro.exceptions.CorruptCheckpointError` with the faulty
    field named, and an unknown version as
    :class:`~repro.exceptions.CheckpointError`.  Both subclass
    ``ValueError``, so pre-existing callers keep working.
    """

    def _state(self, version):
        store = TTKV()
        store.record_write("a/x", 1, 10.0)
        store.record_write("a/y", 1, 10.2)
        pipeline = ShardedPipeline(store, shard_prefixes=("a/",))
        pipeline.update()
        state = json.loads(json.dumps(pipeline.to_state()))
        state["version"] = version
        if version == 1:
            # v1 predates the compacted baseline
            for shard_state in state["shards"].values():
                shard_state.pop("compacted")
        pipeline.close()
        return store, state

    def test_unsupported_version_is_a_checkpoint_error(self):
        from repro.exceptions import CheckpointError

        with pytest.raises(CheckpointError, match="version"):
            ShardedPipeline.from_state(TTKV(), {"version": 99})

    @pytest.mark.parametrize("version", (1, 2, 3))
    @pytest.mark.parametrize("missing", ("params", "shards"))
    def test_missing_section_raises_corrupt_error(self, version, missing):
        from repro.exceptions import CorruptCheckpointError

        store, state = self._state(version)
        del state[missing]
        with pytest.raises(CorruptCheckpointError, match="truncated or corrupt"):
            ShardedPipeline.from_state(store, state)

    @pytest.mark.parametrize("version", (1, 2, 3))
    def test_missing_param_raises_corrupt_error(self, version):
        from repro.exceptions import CorruptCheckpointError

        store, state = self._state(version)
        del state["params"]["key_filter"]
        with pytest.raises(CorruptCheckpointError, match="key_filter"):
            ShardedPipeline.from_state(store, state)

    @pytest.mark.parametrize("version", (1, 2, 3))
    def test_wrong_typed_params_raise_corrupt_error(self, version):
        from repro.exceptions import CorruptCheckpointError

        store, state = self._state(version)
        state["params"] = "not-a-dict"
        with pytest.raises(CorruptCheckpointError):
            ShardedPipeline.from_state(store, state)

    @pytest.mark.parametrize("version", (1, 2, 3))
    def test_mangled_shard_entry_names_the_shard(self, version):
        from repro.exceptions import CorruptCheckpointError

        store, state = self._state(version)
        state["shards"]["a/"] = {"truncated": True}
        with pytest.raises(CorruptCheckpointError, match="a/"):
            ShardedPipeline.from_state(store, state)

    def test_typed_errors_remain_valueerrors(self):
        store, state = self._state(3)
        del state["shards"]
        with pytest.raises(ValueError):
            ShardedPipeline.from_state(store, state)

"""Tests for the dendrogram and threshold pruning."""

import pytest

from repro.core.dendrogram import Dendrogram, Merge


def merge(left, right, distance):
    left, right = frozenset(left), frozenset(right)
    return Merge(left=left, right=right, distance=distance, members=left | right)


class TestValidation:
    def test_rejects_decreasing_distances(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Dendrogram(
                {"a", "b", "c"},
                [merge("a", "b", 1.0), merge("ab", "c", 0.5)],
            )

    def test_rejects_inconsistent_members(self):
        bad = Merge(
            left=frozenset("a"),
            right=frozenset("b"),
            distance=0.5,
            members=frozenset("abc"),
        )
        with pytest.raises(ValueError, match="union"):
            Dendrogram({"a", "b", "c"}, [bad])


class TestCut:
    @pytest.fixture
    def dendrogram(self) -> Dendrogram:
        return Dendrogram(
            {"a", "b", "c", "d"},
            [
                merge("a", "b", 0.5),
                merge(("a", "b"), ("c",), 0.8),
            ],
        )

    def test_cut_below_everything_gives_singletons(self, dendrogram):
        clusters = dendrogram.cut(0.4)
        assert all(len(c) == 1 for c in clusters)
        assert len(clusters) == 4

    def test_cut_applies_merges_up_to_threshold(self, dendrogram):
        clusters = dendrogram.cut(0.5)
        assert frozenset({"a", "b"}) in clusters
        assert frozenset({"c"}) in clusters

    def test_cut_at_higher_threshold(self, dendrogram):
        clusters = dendrogram.cut(1.0)
        assert frozenset({"a", "b", "c"}) in clusters
        assert frozenset({"d"}) in clusters

    def test_cut_ordering_big_first(self, dendrogram):
        clusters = dendrogram.cut(1.0)
        assert clusters[0] == frozenset({"a", "b", "c"})

    def test_cut_threshold_boundary_inclusive(self, dendrogram):
        assert frozenset({"a", "b"}) in dendrogram.cut(0.5)

    def test_items_never_lost(self, dendrogram):
        for threshold in (0.0, 0.5, 0.8, 2.0):
            clusters = dendrogram.cut(threshold)
            assert sorted(k for c in clusters for k in c) == ["a", "b", "c", "d"]

    def test_merge_distances(self, dendrogram):
        assert dendrogram.merge_distances() == [0.5, 0.8]

"""Executor strategies: serial ≡ thread ≡ process ≡ batch, and timing stats.

The contracts under test:

- for ANY prefix of a random multi-application stream, consumed in random
  chunks, every executor strategy leaves the pipeline with exactly the
  cluster sets the serial walk produces — which the sharded suite already
  pins to the batch ``cluster_settings`` reference;
- process-mode execution round-trips engines through the
  ``export_task()``/``run_shard_task()``/``adopt_update()`` checkpoint
  boundary, including streams with out-of-order appends and sessions that
  later checkpoint/resume;
- per-shard wall times are reported for exactly the shards that ran
  (``UpdateStats.shard_timings``/``slowest_shard``/``parallel_speedup``);
- the executor is runtime configuration: swapping strategies between
  updates never perturbs the session.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.executors import (
    EXECUTOR_NAMES,
    ProcessShardExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    make_executor,
    run_affinity_task,
    run_shard_task,
)
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.store import DELETED, TTKV

PREFIXES = ("app_a/", "app_b/", "app_c/")

_KEYS = (
    "app_a/k0", "app_a/k1", "app_a/k2",
    "app_b/k0", "app_b/k1",
    "app_c/k0",
    "sys/noise0", "sys/noise1",
)


@pytest.fixture(scope="module")
def thread_executor():
    executor = ThreadShardExecutor(2)
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def process_executor():
    executor = ProcessShardExecutor(2)
    yield executor
    executor.close()


def _sorted_stream(events):
    return [e for _, e in sorted(enumerate(events), key=lambda p: (p[1][0], p[0]))]


def _key_sets(cluster_set):
    return [tuple(c.sorted_keys()) for c in cluster_set]


def _run_chunked(events, executor, positions):
    store = TTKV()
    pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES, executor=executor)
    consumed = 0
    merged = None
    for position in positions:
        store.record_events(events[consumed:position])
        consumed = position
        merged = pipeline.update()
    per_shard = {
        shard_id: _key_sets(pipeline.cluster_set_for(shard_id))
        for shard_id in pipeline.shard_ids
    }
    stats = pipeline.last_stats
    pipeline.close()
    return _key_sets(merged), per_shard, stats


_multi_prefix_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40).map(float),
        st.sampled_from(_KEYS),
        st.one_of(st.integers(min_value=0, max_value=9), st.just(DELETED)),
    ),
    min_size=1,
    max_size=50,
)


@given(_multi_prefix_events, st.randoms(use_true_random=False))
@settings(max_examples=12, deadline=None)
def test_executors_agree_on_random_streams(
    thread_executor, process_executor, events, rng
):
    stream = _sorted_stream(events)
    positions = sorted(rng.sample(range(len(stream) + 1), min(3, len(stream) + 1)))
    if len(stream) not in positions:
        positions.append(len(stream))
    serial = _run_chunked(stream, None, positions)
    threaded = _run_chunked(stream, thread_executor, positions)
    process = _run_chunked(stream, process_executor, positions)
    assert serial[0] == threaded[0] == process[0]
    assert serial[1] == threaded[1] == process[1]
    # consumption bookkeeping is executor-independent
    assert (
        serial[2].events_consumed
        == threaded[2].events_consumed
        == process[2].events_consumed
    )


@given(_multi_prefix_events)
@settings(max_examples=10, deadline=None)
def test_process_executor_equals_batch_per_prefix(process_executor, events):
    stream = _sorted_stream(events)
    store = TTKV()
    pipeline = ShardedPipeline(
        store, shard_prefixes=PREFIXES, executor=process_executor
    )
    store.record_events(stream)
    pipeline.update()
    for prefix in PREFIXES:
        assert _key_sets(pipeline.cluster_set_for(prefix)) == _key_sets(
            cluster_settings(store, key_filter=prefix)
        )
    pipeline.close()


def test_process_executor_absorbs_consumed_prefix_reorder(process_executor):
    """An append older than consumed history forces the rebuild hand-off."""
    store = TTKV()
    pipeline = ShardedPipeline(
        store, shard_prefixes=PREFIXES, executor=process_executor
    )
    store.record_write("app_a/k0", 1, 10.0)
    store.record_write("app_a/k1", 1, 100.0)
    store.record_write("app_a/k2", 1, 200.0)
    pipeline.update()
    # a logger race: lands far inside the consumed prefix of the app_a
    # shard (per-key history stays ordered, the journal does not)
    store.record_write("app_a/k0", 2, 10.2)
    merged = pipeline.update()
    assert _key_sets(merged)
    for prefix in PREFIXES:
        assert _key_sets(pipeline.cluster_set_for(prefix)) == _key_sets(
            cluster_settings(store, key_filter=prefix)
        )
    pipeline.close()


def test_checkpoint_resume_across_executors(process_executor, thread_executor):
    """A session driven by one executor resumes cleanly under another."""
    events = [
        (float(t), key, t)
        for t in range(0, 120, 3)
        for key in ("app_a/k0", "app_b/k0", "sys/noise0")
    ]
    store = TTKV()
    pipeline = ShardedPipeline(
        store, shard_prefixes=PREFIXES, executor=process_executor
    )
    store.record_events(events[:60])
    pipeline.update()
    blob = json.dumps(pipeline.to_state())
    pipeline.close()

    reopened = TTKV()
    reopened.record_events(events)
    resumed = ShardedPipeline.from_state(
        reopened, json.loads(blob), executor=thread_executor
    )
    assert resumed.executor is thread_executor
    clusters = resumed.update()
    assert resumed.last_stats.events_consumed == len(events) - 60

    reference_store = TTKV()
    reference_store.record_events(events)
    reference = ShardedPipeline(reference_store, shard_prefixes=PREFIXES)
    assert _key_sets(clusters) == _key_sets(reference.update())
    resumed.close()
    reference.close()


def test_executor_swap_mid_session(process_executor, thread_executor):
    store = TTKV()
    pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
    for tick, executor in enumerate((None, process_executor, thread_executor)):
        pipeline.executor = executor
        base = tick * 50.0
        store.record_write("app_a/k0", tick, base + 1.0)
        store.record_write("app_a/k1", tick, base + 1.0)
        store.record_write("app_b/k0", tick, base + 2.0)
        pipeline.update()
    # swapping executors never restarts the session
    assert not pipeline.last_stats.rebuilt
    for prefix in PREFIXES:
        assert _key_sets(pipeline.cluster_set_for(prefix)) == _key_sets(
            cluster_settings(store, key_filter=prefix)
        )
    pipeline.close()


class TestTimingStats:
    def _pipeline(self, executor=None):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES, executor=executor)
        return store, pipeline

    def test_timings_cover_exactly_the_updated_shards(self):
        store, pipeline = self._pipeline()
        store.record_write("app_a/k0", 1, 10.0)
        pipeline.update()
        first = pipeline.last_stats
        # first update touches every shard (all cursors fresh)
        assert sorted(first.shard_timings) == sorted(pipeline.shard_ids)
        assert all(seconds >= 0.0 for seconds in first.shard_timings.values())
        assert first.slowest_shard in first.shard_timings
        assert first.parallel_speedup > 0

        store.record_write("app_b/k0", 1, 20.0)
        pipeline.update()
        second = pipeline.last_stats
        assert list(second.shard_timings) == ["app_b/"]
        assert second.slowest_shard == "app_b/"
        pipeline.close()

    def test_no_op_update_reports_no_timings(self):
        store, pipeline = self._pipeline()
        store.record_write("app_a/k0", 1, 10.0)
        pipeline.update()
        pipeline.update()  # nothing advanced
        stats = pipeline.last_stats
        assert stats.shard_timings == {}
        assert stats.slowest_shard is None
        assert stats.parallel_speedup == 1.0
        pipeline.close()

    def test_serial_updates_report_no_handoff(self):
        store, pipeline = self._pipeline()
        store.record_write("app_a/k0", 1, 10.0)
        pipeline.update()
        # hand-off time is a process-boundary cost; in-process updates
        # are pure compute
        assert pipeline.last_stats.handoff_seconds == 0.0
        pipeline.close()

    def test_serial_overlap_factor_is_at_most_one(self):
        store, pipeline = self._pipeline()
        for t in range(30):
            store.record_write("app_a/k0", t, float(t * 3))
            store.record_write("app_b/k0", t, float(t * 3 + 1))
        pipeline.update()
        assert 0.0 < pipeline.last_stats.parallel_speedup <= 1.0
        pipeline.close()


class TestExecutorFactory:
    def test_names(self):
        assert EXECUTOR_NAMES == ("serial", "thread", "process")
        for name, kind in (
            ("serial", SerialExecutor),
            ("thread", ThreadShardExecutor),
            ("process", ProcessShardExecutor),
        ):
            executor = make_executor(name, 2)
            assert isinstance(executor, kind)
            assert executor.name == name
            executor.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("fleet")

    @pytest.mark.parametrize("workers", (0, -1))
    @pytest.mark.parametrize("name", ("thread", "process"))
    def test_nonpositive_workers_rejected(self, name, workers):
        with pytest.raises(ValueError, match="workers must be at least 1"):
            make_executor(name, workers)

    def test_workers_default_to_cpu_count(self):
        executor = make_executor("thread")
        assert executor.workers >= 1
        executor.close()

    def test_map_shards_on_empty_batch(self, thread_executor, process_executor):
        assert thread_executor.map_shards([]) == []
        assert process_executor.map_shards([]) == []
        assert SerialExecutor().map_shards([]) == []

    def test_context_manager_closes_pool(self):
        with ThreadShardExecutor(1) as executor:
            assert isinstance(executor, ShardExecutor)
            assert executor.map_shards([]) == []
        assert executor._pool is None

    def test_base_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ShardExecutor().map_shards([])


class TestProcessBoundary:
    """export_task / run_shard_task / adopt_update plumbing details."""

    def test_fresh_engine_exports_full_stream(self):
        store, pipeline = TTKV(), None
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        store.record_write("app_a/k0", 1, 10.0)
        engine = pipeline._engines["app_a/"]
        task = engine.export_task()
        assert task["state"] is None
        assert task["components"] is None
        assert len(task["events"]["t"]) == 1
        assert task["result_position"] == 1
        pipeline.close()

    def test_worker_round_trip_matches_in_process_update(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        store.record_write("app_a/k0", 1, 10.0)
        store.record_write("app_a/k1", 1, 10.0)
        pipeline.update()
        store.record_write("app_a/k0", 2, 400.0)
        engine = pipeline._engines["app_a/"]
        task = engine.export_task()
        # the consumed prefix stays behind: only the unread slice ships
        assert len(task["events"]["t"]) == 1
        assert task["state"] is not None
        result, state, components = run_shard_task(task)
        adopted = engine.adopt_update(task, result, state, components)
        assert adopted.changed
        assert adopted.stats.events_consumed == 1
        assert not engine.needs_update()
        # engine-level adopt leaves the shard exactly where a serial
        # update would (the pipeline-level merge is exercised elsewhere)
        assert _key_sets(pipeline.cluster_set_for("app_a/")) == _key_sets(
            cluster_settings(store, key_filter="app_a/")
        )
        pipeline.close()

    def test_worker_round_trip_reports_handoff_separately(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        store.record_write("app_a/k0", 1, 10.0)
        engine = pipeline._engines["app_a/"]
        task = engine.export_task()
        result, state, components = run_shard_task(task)
        # serialization/restore overhead is split out of compute time
        assert result.handoff_seconds >= 0.0
        adopted = engine.adopt_update(task, result, state, components)
        assert adopted.seconds == result.seconds
        assert adopted.handoff_seconds > result.handoff_seconds
        pipeline.close()

    def test_stale_worker_result_is_recomputed_not_installed(self):
        """A reorder landing between export_task and adopt_update must not
        install the worker's clusters — they describe a stream the journal
        no longer holds (regression: the adopted cursor used to hide the
        reorder behind the current journal epoch)."""
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        store.record_write("app_a/k0", 1, 10.0)
        store.record_write("app_a/k1", 1, 100.0)
        store.record_write("app_a/k2", 1, 200.0)
        pipeline.update()
        store.record_write("app_a/k2", 2, 400.0)
        engine = pipeline._engines["app_a/"]
        task = engine.export_task()
        result, state, components = run_shard_task(task)
        # while the result was in flight, a late writer landed inside the
        # very range the worker consumed: k3 joins k0's long-closed group
        store.record_write("app_a/k3", 1, 10.0)
        engine.adopt_update(task, result, state, components)
        assert not engine.needs_update()
        # the stale result was discarded: k0 and k3 correlate, which the
        # worker could never have seen
        key_sets = _key_sets(pipeline.cluster_set_for("app_a/"))
        assert ("app_a/k0", "app_a/k3") in key_sets
        assert key_sets == _key_sets(
            cluster_settings(store, key_filter="app_a/")
        )
        pipeline.close()

    def test_slice_adopt_mirrors_stream_and_installs_components(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        store.record_write("app_a/k0", 1, 10.0)
        store.record_write("app_a/k1", 1, 10.0)
        pipeline.update()
        store.record_write("app_a/k0", 2, 400.0)
        engine = pipeline._engines["app_a/"]
        assert engine.can_export_slice()
        slice_task = engine.export_slice_task()
        # the fast path ships no checkpoint in either direction
        assert slice_task["mode"] == "slice"
        assert "state" not in slice_task
        assert len(slice_task["events"]["t"]) == 1
        # a full-task worker computes the identical result the sticky
        # worker would — adopt it through the slice path
        result, _state, components = run_shard_task(engine.export_task())
        adopted = engine.adopt_slice(slice_task, result, components)
        assert adopted.stats.events_consumed == 1
        assert not engine.needs_update()
        assert _key_sets(pipeline.cluster_set_for("app_a/")) == _key_sets(
            cluster_settings(store, key_filter="app_a/")
        )
        pipeline.close()

    def test_stale_slice_result_falls_back_to_local_update(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        store.record_write("app_a/k0", 1, 10.0)
        store.record_write("app_a/k1", 1, 100.0)
        pipeline.update()
        store.record_write("app_a/k2", 1, 200.0)
        engine = pipeline._engines["app_a/"]
        slice_task = engine.export_slice_task()
        result, _state, components = run_shard_task(engine.export_task())
        # the journal reorders while the slice result is in flight
        store.record_write("app_a/k3", 1, 10.0)
        engine.adopt_slice(slice_task, result, components)
        assert not engine.needs_update()
        assert _key_sets(pipeline.cluster_set_for("app_a/")) == _key_sets(
            cluster_settings(store, key_filter="app_a/")
        )
        pipeline.close()

    def test_slice_export_requires_a_clean_consumed_prefix(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        engine = pipeline._engines["app_a/"]
        assert not engine.can_export_slice()  # fresh engine
        with pytest.raises(ValueError, match="journal slice"):
            engine.export_slice_task()
        pipeline.close()


class TestWorkerAffinity:
    """The sticky-worker engine cache and its (epoch, position) views."""

    def test_worker_cache_round_trip_in_process(self):
        """A full task primes the worker cache; the follow-up ships only
        the journal slice and still matches the batch reference."""
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        store.record_write("app_a/k0", 1, 10.0)
        store.record_write("app_a/k1", 1, 10.0)
        engine = pipeline._engines["app_a/"]
        task = engine.export_task()
        outcome = run_affinity_task(task)
        assert outcome["state"] is not None
        engine.adopt_update(
            task, outcome["result"], outcome["state"], outcome["components"]
        )
        store.record_write("app_a/k0", 2, 400.0)
        slice_task = engine.export_slice_task()
        outcome = run_affinity_task(slice_task)
        assert "miss" not in outcome
        engine.adopt_slice(slice_task, outcome["result"], outcome["components"])
        assert _key_sets(pipeline.cluster_set_for("app_a/")) == _key_sets(
            cluster_settings(store, key_filter="app_a/")
        )
        pipeline.close()

    def test_worker_reports_miss_without_a_cached_engine(self):
        store = TTKV()
        pipeline = ShardedPipeline(store, shard_prefixes=PREFIXES)
        store.record_write("app_a/k0", 1, 10.0)
        store.record_write("app_a/k1", 1, 10.0)
        pipeline.update()
        store.record_write("app_a/k0", 2, 400.0)
        task = pipeline._engines["app_a/"].export_slice_task()
        assert run_affinity_task(task) == {"miss": True}
        pipeline.close()

    def test_second_update_ships_only_the_journal_slice(self):
        with ProcessShardExecutor(2) as executor:
            store = TTKV()
            pipeline = ShardedPipeline(
                store, shard_prefixes=PREFIXES, executor=executor
            )
            store.record_write("app_a/k0", 1, 10.0)
            store.record_write("app_a/k1", 1, 10.0)
            pipeline.update()
            engine = pipeline._engines["app_a/"]
            # the executor recorded the exact view the worker now holds
            assert executor._views[engine.affinity_key] == (
                engine.state_epoch,
                engine.cursor_position,
            )
            store.record_write("app_a/k0", 2, 400.0)
            assert executor._export(engine)["mode"] == "slice"
            pipeline.update()
            # process hand-off cost is visible, split from compute
            assert pipeline.last_stats.handoff_seconds > 0.0
            for prefix in PREFIXES:
                assert _key_sets(pipeline.cluster_set_for(prefix)) == _key_sets(
                    cluster_settings(store, key_filter=prefix)
                )
            pipeline.close()

    def test_serial_interleave_invalidates_the_cached_view(self):
        """Any mutation outside the executor bumps the state epoch, so the
        next process update falls back to the full checkpoint path instead
        of applying a slice to a stale worker engine."""
        with ProcessShardExecutor(2) as executor:
            store = TTKV()
            pipeline = ShardedPipeline(
                store, shard_prefixes=PREFIXES, executor=executor
            )
            store.record_write("app_a/k0", 1, 10.0)
            store.record_write("app_a/k1", 1, 10.0)
            pipeline.update()
            engine = pipeline._engines["app_a/"]
            pipeline.executor = None
            store.record_write("app_a/k0", 2, 400.0)
            pipeline.update()  # serial: diverges from the worker's copy
            store.record_write("app_a/k1", 2, 800.0)
            assert executor._export(engine)["mode"] == "full"
            pipeline.executor = executor
            pipeline.update()
            for prefix in PREFIXES:
                assert _key_sets(pipeline.cluster_set_for(prefix)) == _key_sets(
                    cluster_settings(store, key_filter=prefix)
                )
            pipeline.close()


class TestBrokenPoolRecovery:
    """A killed worker process must not take the session down.

    Killing a slot's worker breaks its single-process pool — every later
    submit raises ``BrokenProcessPool``.  The executor recreates the
    pool and hands the fresh worker the engine's *full* checkpoint task
    (its cache died with it), and the update's output must still match
    the batch reference.
    """

    def _kill_slot(self, executor, slot):
        import os as _os
        from concurrent.futures.process import BrokenProcessPool

        pool = executor._slots[slot]
        assert pool is not None
        with pytest.raises(BrokenProcessPool):
            pool.submit(_os._exit, 1).result()

    def test_update_survives_a_worker_death(self):
        with ProcessShardExecutor(2) as executor:
            store = TTKV()
            pipeline = ShardedPipeline(
                store, shard_prefixes=PREFIXES, executor=executor
            )
            store.record_write("app_a/k0", 1, 10.0)
            store.record_write("app_a/k1", 1, 10.0)
            store.record_write("app_b/k0", 1, 11.0)
            pipeline.update()
            victim = executor._slot_of[
                pipeline._engines["app_a/"].affinity_key
            ]
            self._kill_slot(executor, victim)
            # the dead worker's cached views are gone with it
            store.record_write("app_a/k0", 2, 400.0)
            store.record_write("app_b/k0", 2, 401.0)
            pipeline.update()
            for prefix in PREFIXES:
                assert _key_sets(pipeline.cluster_set_for(prefix)) == _key_sets(
                    cluster_settings(store, key_filter=prefix)
                )
            pipeline.close()

    def test_recovery_restores_the_slice_fast_path(self):
        with ProcessShardExecutor(1) as executor:
            store = TTKV()
            pipeline = ShardedPipeline(
                store, shard_prefixes=("app_a/",), executor=executor
            )
            store.record_write("app_a/k0", 1, 10.0)
            store.record_write("app_a/k1", 1, 10.0)
            pipeline.update()
            engine = pipeline._engines["app_a/"]
            self._kill_slot(executor, 0)
            store.record_write("app_a/k0", 2, 400.0)
            pipeline.update()  # recovery round: full task to a fresh pool
            # the fresh worker's view was recorded, so the next update
            # ships only the journal slice again
            store.record_write("app_a/k1", 2, 800.0)
            assert executor._export(engine)["mode"] == "slice"
            pipeline.update()
            assert _key_sets(pipeline.cluster_set_for("app_a/")) == _key_sets(
                cluster_settings(store, key_filter="app_a/")
            )
            pipeline.close()

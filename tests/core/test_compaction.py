"""Checkpoint compaction: bounded state with bit-identical clusters.

The contracts under test:

- a :class:`CorrelationMatrix` that compacts its closed groups after
  every registration answers every query — counts, correlations, finite
  pairs, components — exactly like one that never compacts, including
  across provisional-tail retractions (the only retraction the streaming
  engine ever performs);
- compacted group indices are hard guardrails: they can be neither
  retracted nor reused;
- the compacted baseline round-trips through
  ``compacted_state()``/``install_compacted()`` observationally intact;
- a streaming :class:`ShardedPipeline` (which compacts after every
  update) stays equal to the batch ``cluster_settings`` reference across
  every Table I machine profile, checkpoint round-trips included, while
  an engine with compaction disabled produces the identical clusters —
  compacted ≡ uncompacted ≡ batch;
- a long-deployment checkpoint plateaus: ``len(json.dumps(to_state()))``
  stops growing once the live key population saturates, where the
  uncompacted equivalent grows with every consumed group.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correlation import CorrelationMatrix
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.store import TTKV
from repro.workload.machines import PROFILES
from repro.workload.tracegen import generate_trace

_KEYS = ("a", "b", "c", "d", "e")


def _key_sets(cluster_set):
    return [tuple(c.sorted_keys()) for c in cluster_set]


def _assert_matrices_agree(plain: CorrelationMatrix, compacted: CorrelationMatrix):
    assert sorted(plain.keys) == sorted(compacted.keys)
    for key in plain.keys:
        assert plain.group_count(key) == compacted.group_count(key), key
    plain_pairs = {(a, b): c for a, b, c in plain.finite_pairs()}
    compact_pairs = {(a, b): c for a, b, c in compacted.finite_pairs()}
    assert plain_pairs.keys() == compact_pairs.keys()
    for pair, value in plain_pairs.items():
        other = compact_pairs[pair]
        # identical integer counts feed the same IEEE-754 operations, so
        # the correlations must be bit-identical, not merely close
        assert value == other or (math.isnan(value) and math.isnan(other))
    assert sorted(
        sorted(c) for c in plain.connected_components()
    ) == sorted(sorted(c) for c in compacted.connected_components())


_group_streams = st.lists(
    st.frozensets(st.sampled_from(_KEYS), min_size=1, max_size=4),
    min_size=1,
    max_size=24,
)


class TestMatrixCompaction:
    @given(_group_streams)
    @settings(max_examples=60, deadline=None)
    def test_always_compacting_matrix_equals_plain(self, groups):
        plain = CorrelationMatrix()
        compacted = CorrelationMatrix()
        for index, keys in enumerate(groups):
            plain.update_groups(added=[(index, keys)])
            compacted.update_groups(added=[(index, keys)])
            # keep exactly the newest group retractable — the streaming
            # engine's provisional-tail policy
            compacted.compact(index)
        _assert_matrices_agree(plain, compacted)
        assert compacted.compacted_groups == len(groups) - 1
        assert len(compacted.observed_groups()) == 1

    @given(_group_streams, st.frozensets(st.sampled_from(_KEYS), min_size=1))
    @settings(max_examples=60, deadline=None)
    def test_provisional_tail_retraction_edge(self, groups, replacement):
        """The newest group is retracted and replaced after compaction —
        the exact shape of a provisional write group growing in place."""
        plain = CorrelationMatrix()
        compacted = CorrelationMatrix()
        for index, keys in enumerate(groups):
            for matrix in (plain, compacted):
                matrix.update_groups(added=[(index, keys)])
            compacted.compact(index)
            for matrix in (plain, compacted):
                matrix.update_groups(
                    added=[(index, keys | replacement)],
                    removed=[(index, keys)],
                )
        _assert_matrices_agree(plain, compacted)

    def test_compacted_index_cannot_be_retracted(self):
        matrix = CorrelationMatrix()
        matrix.update_groups(added=[(0, frozenset("ab")), (1, frozenset("bc"))])
        matrix.compact(1)
        with pytest.raises(ValueError, match="can no longer be retracted"):
            matrix.update_groups(removed=[(0, frozenset("ab"))])
        # the provisional tail above the floor stays retractable
        matrix.update_groups(removed=[(1, frozenset("bc"))])

    def test_compacted_index_cannot_be_reused(self):
        matrix = CorrelationMatrix()
        matrix.update_groups(added=[(0, frozenset("ab"))])
        matrix.compact(1)
        with pytest.raises(ValueError, match="below the compaction floor"):
            matrix.update_groups(added=[(0, frozenset("xy"))])

    def test_compact_is_idempotent(self):
        matrix = CorrelationMatrix()
        matrix.update_groups(added=[(i, frozenset("ab")) for i in range(4)])
        assert matrix.compact(3) == 3
        assert matrix.compact(3) == 0
        assert matrix.compacted_groups == 3

    @given(_group_streams)
    @settings(max_examples=40, deadline=None)
    def test_compacted_state_round_trip(self, groups):
        source = CorrelationMatrix()
        for index, keys in enumerate(groups):
            source.update_groups(added=[(index, keys)])
        source.compact(len(groups) - 1)

        restored = CorrelationMatrix()
        retained = sorted(source.observed_groups().items())
        if retained:
            restored.update_groups(added=retained)
        state = source.compacted_state()
        if state is not None:
            restored.install_compacted(json.loads(json.dumps(state)))
        _assert_matrices_agree(source, restored)
        assert restored.compact_floor == source.compact_floor


# -- streaming engine: compacted ≡ uncompacted ≡ batch ------------------------


def _scaled(profile):
    """A fast, small variant of a Table I machine profile."""
    return dataclasses.replace(
        profile,
        days=2,
        noise_keys=min(profile.noise_keys, 25),
        noise_writes_per_day=min(profile.noise_writes_per_day, 60),
        reads_per_day=min(profile.reads_per_day, 100),
    )


def _disable_compaction(pipeline: ShardedPipeline) -> None:
    """Pin the engines' matrices to the uncompacted v1 behaviour."""
    for engine in pipeline._engines.values():
        engine._matrix.compact = lambda keep_from: 0


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
def test_compacted_equals_uncompacted_equals_batch(profile):
    trace = generate_trace(_scaled(profile))
    events = sorted(trace.ttkv.write_events())
    assert events, f"profile {profile.name} generated no modifications"
    rng = random.Random(profile.seed)
    positions = sorted(rng.sample(range(len(events) + 1), 6)) + [len(events)]

    compacting_store, plain_store = TTKV(), TTKV()
    compacting = ShardedPipeline(compacting_store, shard_prefixes=("app/",))
    plain = ShardedPipeline(plain_store, shard_prefixes=("app/",))
    _disable_compaction(plain)
    consumed = 0
    for position in positions:
        for store in (compacting_store, plain_store):
            store.record_events(events[consumed:position])
        consumed = position
        got = _key_sets(compacting.update())
        assert got == _key_sets(plain.update())
        assert got == _key_sets(cluster_settings(compacting_store))
        # the compacted checkpoint resumes into the identical session
        blob = json.dumps(compacting.to_state())
        resumed = ShardedPipeline.from_state(compacting_store, json.loads(blob))
        assert _key_sets(resumed.update()) == got
        resumed.close()
    # compaction actually happened: retained registrations stay at most
    # the provisional group while the baseline absorbed the rest
    state = compacting.to_state()
    for shard_state in state["shards"].values():
        assert len(shard_state["groups"]) <= 1
    compacting.close()
    plain.close()


def test_long_deployment_checkpoint_size_plateaus():
    rng = random.Random(7)
    keys = [f"app/k{i:02d}" for i in range(12)]
    store = TTKV()
    pipeline = ShardedPipeline(store, shard_prefixes=("app/",), catch_all=False)
    plain_store = TTKV()
    plain = ShardedPipeline(plain_store, shard_prefixes=("app/",), catch_all=False)
    _disable_compaction(plain)
    t = 0.0
    sizes: list[int] = []
    plain_sizes: list[int] = []
    for week in range(6):
        for _ in range(250):
            t += rng.choice((0.2, 0.3, 120.0))
            event = (t, rng.choice(keys), week)
            store.record_events([event])
            plain_store.record_events([event])
        assert _key_sets(pipeline.update()) == _key_sets(plain.update())
        sizes.append(len(json.dumps(pipeline.to_state())))
        plain_sizes.append(len(json.dumps(plain.to_state())))
    # compacted: flat once the 12-key population saturated
    assert sizes[-1] <= sizes[1]
    # uncompacted: grows every week, forever
    assert all(a < b for a, b in zip(plain_sizes, plain_sizes[1:]))
    assert plain_sizes[-1] > 2 * sizes[-1]
    pipeline.close()
    plain.close()

"""Spliced dendrogram repair ≡ wholesale re-agglomeration ≡ batch.

The contracts under test:

- a pipeline running ``repair_mode="splice"`` produces *bit-identical*
  clusters to one running ``repair_mode="rebuild"`` and to the batch
  :func:`~repro.core.pipeline.cluster_settings` reference, for any prefix
  of any event stream (hypothesis + a sweep over every workload profile);
- :func:`~repro.core.dendro_repair.splice_dendrogram` reproduces the
  wholesale dendrogram merge-for-merge, including at distance ties (where
  merges at the splice line must be conservatively re-derived);
- unusable caches (components that shrank after a retraction, average
  linkage, malformed inputs) fall back to the wholesale rebuild rather
  than guessing;
- the per-component dendrogram cache survives JSON checkpoints and the
  process-executor hand-off, so resumed sessions and pool workers keep
  splicing.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correlation import CorrelationMatrix
from repro.core.clustering import agglomerate_clusters
from repro.core.dendro_repair import (
    REPAIR_MODES,
    REPAIR_REBUILD,
    REPAIR_SPLICE,
    build_dendrogram,
    check_repair_mode,
    dendrogram_from_state,
    dendrogram_to_state,
    first_affected_distance,
    splice_dendrogram,
    surviving_clusters,
)
from repro.core.incremental import IncrementalPipeline
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.sharding import CATCH_ALL
from repro.ttkv.store import DELETED, TTKV
from repro.workload.machines import PROFILES
from repro.workload.tracegen import generate_trace


def _sorted_stream(events):
    """Events ordered the way a live deployment would append them."""
    return [e for _, e in sorted(enumerate(events), key=lambda p: (p[1][0], p[0]))]


def _key_sets(cluster_set):
    return [tuple(c.sorted_keys()) for c in cluster_set]


def assert_splice_equivalence(events, rng, cuts=4, **params):
    """Feed the same chunks to a spliced and a wholesale pipeline.

    At every cut both pipelines must agree with each other and with the
    batch reference — bit-identical key sets in identical order.
    """
    stream = _sorted_stream(events)
    live = TTKV()
    spliced = IncrementalPipeline(live, repair_mode=REPAIR_SPLICE, **params)
    wholesale = IncrementalPipeline(live, repair_mode=REPAIR_REBUILD, **params)
    positions = sorted(rng.sample(range(len(stream) + 1), min(cuts, len(stream) + 1)))
    if len(stream) not in positions:
        positions.append(len(stream))
    consumed = 0
    for position in positions:
        live.record_events(stream[consumed:position])
        consumed = position
        spliced_sets = _key_sets(spliced.update())
        wholesale_sets = _key_sets(wholesale.update())
        assert spliced_sets == wholesale_sets, (
            f"splice diverged from wholesale at prefix "
            f"{position}/{len(stream)} with {params}"
        )
        assert wholesale.last_stats.merges_reused == 0
        batch = cluster_settings(live, **params)
        assert spliced_sets == _key_sets(batch), (
            f"splice diverged from batch at prefix {position}/{len(stream)}"
        )


# -- hypothesis suites -------------------------------------------------------

_timestamps = st.floats(min_value=0, max_value=2000, allow_nan=False)

_mixed_events = st.lists(
    st.tuples(
        _timestamps,
        st.sampled_from(["k0", "k1", "k2", "k3", "k4", "k5"]),
        st.one_of(st.integers(min_value=0, max_value=9), st.just(DELETED)),
    ),
    min_size=1,
    max_size=50,
)

# Coarse integer timestamps force equal-distance ties and same-tick
# straddles — the regime where splicing must conservatively re-derive.
_tie_heavy_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30).map(float),
        st.sampled_from(["k0", "k1", "k2", "k3"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=40,
)


@given(_mixed_events, st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_splice_equals_wholesale_equals_batch(events, rng):
    assert_splice_equivalence(events, rng)


@given(_tie_heavy_events, st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_splice_equivalence_under_distance_ties(events, rng):
    assert_splice_equivalence(events, rng)


@given(
    _mixed_events,
    st.randoms(use_true_random=False),
    st.sampled_from(["complete", "single", "average"]),
    st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=30, deadline=None)
def test_splice_equivalence_across_linkages_and_thresholds(
    events, rng, linkage, threshold
):
    assert_splice_equivalence(
        events, rng, linkage=linkage, correlation_threshold=threshold
    )


# -- generated traces across every workload profile --------------------------

def _scaled(profile):
    """A fast, small variant of a Table I machine profile."""
    return dataclasses.replace(
        profile,
        days=2,
        noise_keys=min(profile.noise_keys, 25),
        noise_writes_per_day=min(profile.noise_writes_per_day, 60),
        reads_per_day=min(profile.reads_per_day, 100),
    )


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
def test_splice_equivalence_on_generated_profile_traces(profile):
    trace = generate_trace(_scaled(profile))
    events = trace.ttkv.write_events()
    assert events, f"profile {profile.name} generated no modifications"
    rng = random.Random(profile.seed)
    assert_splice_equivalence(events, rng, cuts=8)


# -- splice_dendrogram directly ----------------------------------------------

def _chain_matrix(n: int) -> CorrelationMatrix:
    """One n-key component with distinct pairwise distances (no ties)."""
    return CorrelationMatrix(
        {f"k{i:03d}": set(range(max(i, 1), n)) for i in range(n)}
    )


class TestSpliceDendrogram:
    def test_reuses_the_clean_prefix(self):
        matrix = _chain_matrix(40)
        component = frozenset(matrix.keys)
        cached = build_dendrogram(matrix, component, "complete")
        matrix.observe_group(100, ["k039"])
        outcome = splice_dendrogram(matrix, component, {"k039"}, [cached], "complete")
        assert outcome.spliced
        assert outcome.merges_reused > 0
        reference = build_dendrogram(matrix, component, "complete")
        assert outcome.dendrogram.merges == reference.merges
        assert (
            outcome.merges_reused + outcome.merges_recomputed
            == len(reference.merges)
        )

    def test_suffix_invalidated_at_distance_ties(self):
        # All pairs in the cached component tie at distance 0.5; a dirty
        # key's new pair lands exactly on that line, so *no* cached merge
        # may be trusted — ties at the splice line re-derive.
        matrix = CorrelationMatrix({"a": {0, 1}, "b": {0, 1}, "c": {0, 1}})
        component = frozenset("abc")
        cached = build_dendrogram(matrix, component, "complete")
        assert {m.distance for m in cached.merges} == {0.5}
        matrix.observe_group(7, ["a", "b", "c", "d"])
        grown = frozenset("abcd")
        outcome = splice_dendrogram(
            matrix, grown, {"a", "b", "c", "d"}, [cached], "complete"
        )
        assert outcome.merges_reused == 0
        reference = build_dendrogram(matrix, grown, "complete")
        assert outcome.dendrogram.merges == reference.merges

    def test_merges_strictly_below_the_splice_line_survive(self):
        matrix = _chain_matrix(40)
        component = frozenset(matrix.keys)
        cached = build_dendrogram(matrix, component, "complete")
        matrix.observe_group(100, ["k039"])
        # the documented splice line: the smallest new affected-pair
        # distance, lowered to the first cached merge touching the dirty key
        line = first_affected_distance(matrix, component, {"k039"})
        line = min(
            [line]
            + [m.distance for m in cached.merges if "k039" in m.members]
        )
        expected = [
            m
            for m in cached.merges
            if m.distance < line
            and not math.isclose(m.distance, line)
            and "k039" not in m.members
        ]
        outcome = splice_dendrogram(matrix, component, {"k039"}, [cached], "complete")
        assert outcome.merges_reused == len(expected)
        assert outcome.dendrogram.merges[: len(expected)] == expected

    def test_bridged_components_splice_both_caches(self):
        matrix = CorrelationMatrix(
            {
                "a0": {0, 1}, "a1": {0, 1}, "a2": {1, 2}, "a3": {2},
                "b0": {10, 11}, "b1": {10, 11}, "b2": {11, 12}, "b3": {12},
            }
        )
        caches = [
            build_dendrogram(matrix, frozenset(c), "complete")
            for c in matrix.connected_components()
        ]
        assert len(caches) == 2
        matrix.observe_group(50, ["a3", "b3"])  # bridges the components
        component = frozenset(matrix.keys)
        outcome = splice_dendrogram(
            matrix, component, {"a3", "b3"}, caches, "complete"
        )
        assert outcome.spliced
        assert outcome.merges_reused > 0
        reference = build_dendrogram(matrix, component, "complete")
        assert outcome.dendrogram.merges == reference.merges

    def test_cross_cache_tie_keeps_the_merge_set_and_every_cut(self):
        # Two bridged caches each holding a merge at the same distance:
        # the spliced list keeps tied merges grouped per source cache
        # (deterministically — caches are consumed in sorted order) while
        # a from-scratch run may interleave them; the merge *set* and the
        # cut at every threshold must still be identical.
        matrix = CorrelationMatrix({
            "a": {0, 1}, "y": {0, 1, 2}, "z": {0, 1, 2},   # (y, z) at 0.5
            "w": {10, 11}, "b": {11, 12}, "c": {11, 12},   # (b, c) at 0.5
        })
        caches = sorted(
            (
                build_dendrogram(matrix, frozenset(c), "complete")
                for c in matrix.connected_components()
            ),
            key=lambda d: min(d.items),
        )
        matrix.observe_group(50, ["a", "w"])   # bridge outside both ties
        component = frozenset(matrix.keys)
        outcome = splice_dendrogram(
            matrix, component, {"a", "w"}, caches, "complete"
        )
        reference = build_dendrogram(matrix, component, "complete")
        assert outcome.spliced and outcome.merges_reused == 2
        assert set(outcome.dendrogram.merges) == set(reference.merges)
        for threshold in (0.3, 0.5, 0.75, 1.0, 1.2, 5.0):
            assert outcome.dendrogram.cut(threshold) == reference.cut(threshold)

    def test_cache_straddling_the_component_falls_back(self):
        # a cached dendrogram covering keys outside the component means
        # the component shrank (retraction) — never splice from it
        matrix = CorrelationMatrix({"a": {0, 1}, "b": {0, 1}})
        stale = build_dendrogram(
            CorrelationMatrix({"a": {0}, "b": {0}, "c": {0}}),
            frozenset("abc"),
            "complete",
        )
        outcome = splice_dendrogram(
            matrix, frozenset("ab"), {"a"}, [stale], "complete"
        )
        assert not outcome.spliced
        assert outcome.merges_reused == 0
        reference = build_dendrogram(matrix, frozenset("ab"), "complete")
        assert outcome.dendrogram.merges == reference.merges

    def test_average_linkage_always_rebuilds(self):
        # Lance–Williams average accumulates float rounding along the
        # merge path; a seeded continuation is only ulp-close, so the
        # splice path refuses it to keep the bit-identical guarantee.
        matrix = _chain_matrix(10)
        component = frozenset(matrix.keys)
        cached = build_dendrogram(matrix, component, "average")
        matrix.observe_group(100, ["k009"])
        outcome = splice_dendrogram(matrix, component, {"k009"}, [cached], "average")
        assert not outcome.spliced
        reference = build_dendrogram(matrix, component, "average")
        assert outcome.dendrogram.merges == reference.merges

    def test_randomised_splice_matches_wholesale(self):
        rng = random.Random(20260729)
        for _ in range(150):
            nkeys = rng.randint(2, 12)
            keys = [f"k{i}" for i in range(nkeys)]
            matrix = CorrelationMatrix()
            gid = 0
            for _ in range(rng.randint(1, 8)):
                matrix.observe_group(
                    gid, rng.sample(keys, rng.randint(1, min(4, nkeys)))
                )
                gid += 1
            linkage = rng.choice(["complete", "single"])
            cached = {
                frozenset(c): build_dendrogram(matrix, frozenset(c), linkage)
                for c in matrix.connected_components()
            }
            dirty = set(
                matrix.update_groups(
                    added=[(gid, rng.sample(keys, rng.randint(1, min(4, nkeys))))]
                )
            )
            for root in {matrix.find(k) for k in dirty if k in matrix}:
                component = matrix.component_members(root)
                old = [d for c, d in cached.items() if c <= component]
                outcome = splice_dendrogram(matrix, component, dirty, old, linkage)
                reference = build_dendrogram(matrix, component, linkage)
                assert outcome.dendrogram.merges == reference.merges


class TestSeededAgglomeration:
    def test_seed_order_is_validated(self):
        matrix = CorrelationMatrix({"a": {0}, "b": {0}})
        with pytest.raises(ValueError, match="sorted by their smallest key"):
            agglomerate_clusters(
                matrix, [frozenset("b"), frozenset("a")], "complete"
            )

    def test_surviving_clusters_partition_and_order(self):
        matrix = CorrelationMatrix({"a": {0, 1}, "b": {0, 1}, "c": {1}})
        dendrogram = build_dendrogram(matrix, frozenset("abc"), "complete")
        clusters = surviving_clusters(frozenset("abc"), dendrogram.merges[:1])
        assert clusters == [frozenset("ab"), frozenset("c")]

    def test_repair_mode_validation(self):
        assert check_repair_mode("splice") == "splice"
        assert set(REPAIR_MODES) == {"splice", "rebuild"}
        with pytest.raises(ValueError, match="unknown repair mode"):
            check_repair_mode("magic")


# -- engine integration ------------------------------------------------------

def _hot_component_store(groups: int = 50, keys: int = 30) -> TTKV:
    """A store whose writes build one large, tie-poor component."""
    store = TTKV()
    events = []
    for g in range(groups):
        t = g * 100.0
        for k in range(g % keys, min(g % keys + 4, keys)):
            events.append((t, f"app/k{k:02d}", g))
    store.record_events(events)
    return store


class TestEngineRepair:
    def test_splice_reuses_merges_on_hot_component(self):
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        store.record_write("app/k00", "new", 50 * 100.0 + 1500)
        store.record_write("app/k01", "new", 50 * 100.0 + 1500)
        pipeline.update()
        stats = pipeline.last_stats
        assert stats.merges_reused > 0
        assert stats.merges_recomputed > 0

    def test_rebuild_mode_never_reuses(self):
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store, repair_mode=REPAIR_REBUILD)
        pipeline.update()
        store.record_write("app/k00", "new", 50 * 100.0 + 1500)
        pipeline.update()
        assert pipeline.last_stats.merges_reused == 0
        assert pipeline.last_stats.merges_recomputed > 0

    def test_repair_mode_is_validated(self):
        store = TTKV()
        with pytest.raises(ValueError, match="unknown repair mode"):
            IncrementalPipeline(store, repair_mode="magic")

    def test_retuned_repair_mode_applies_in_place(self):
        # unlike the clustering parameters, the repair mode never changes
        # results, so flipping it must NOT restart the session
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store)
        before = _key_sets(pipeline.update())
        pipeline.repair_mode = REPAIR_REBUILD
        store.record_write("app/k00", "new", 50 * 100.0 + 1500)
        after = pipeline.update()
        assert not pipeline.last_stats.rebuilt
        assert pipeline.last_stats.merges_reused == 0
        assert _key_sets(after) == _key_sets(cluster_settings(store))
        # and back: the dendrogram cache refills as components go dirty
        pipeline.repair_mode = REPAIR_SPLICE
        engine = pipeline._engines[CATCH_ALL]
        assert not engine._dendro_cache  # rebuild mode dropped it
        store.record_write("app/k01", "new", 50 * 100.0 + 1600)
        pipeline.update()  # rebuild-and-cache round
        assert not pipeline.last_stats.rebuilt
        assert engine._dendro_cache  # refilled in place
        assert _key_sets(pipeline.cluster_set) == _key_sets(
            cluster_settings(store)
        )
        assert before  # session survived every switch

    def test_reorder_into_closed_group_rebuild_resets_cache(self):
        store = TTKV()
        store.record_write("a", 1, 100.0)
        store.record_write("b", 1, 100.0)
        store.record_write("c", 1, 900.0)
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        store.record_write("early", 1, 5.0)  # beyond the reorder buffer
        result = pipeline.update()
        assert pipeline.last_stats.rebuilt
        assert pipeline.last_stats.merges_reused == 0
        assert _key_sets(result) == _key_sets(cluster_settings(store))

    def test_lossy_rescan_keeps_clean_component_dendrograms(self):
        # a structural loss (retraction) voids splicing for the dirty
        # region, but components disjoint from it were untouched — their
        # dendrograms must survive the rescan like their flat clusters
        from repro.core.sharded import ShardEngine
        from repro.ttkv.journal import EventJournal

        journal = EventJournal()
        for t, key in (
            (10.0, "a"), (10.0, "b"),
            (500.0, "x"), (500.0, "y"),
            (900.0, "z"),
        ):
            journal.append_event((t, key, 1))
        engine = ShardEngine(journal)
        engine.update()
        hot = frozenset({"a", "b"})
        clean = frozenset({"x", "y"})
        assert hot in engine._dendro_cache and clean in engine._dendro_cache
        kept = engine._dendro_cache[clean]
        reclustered, reused, recomputed, kernel_components = (
            engine._rescan_components({"a"}, splice_ok=False)
        )
        assert engine._dendro_cache[clean] is kept
        assert hot in engine._dendro_cache  # rebuilt, not spliced
        assert reused == 0

    def test_checkpoint_round_trip_preserves_the_dendrogram_cache(self):
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        blob = json.dumps(pipeline.to_state())
        resumed = ShardedPipeline.from_state(store, json.loads(blob))
        store.record_write("app/k00", "new", 50 * 100.0 + 1500)
        store.record_write("app/k01", "new", 50 * 100.0 + 1500)
        clusters = resumed.update()
        assert resumed.last_stats.merges_reused > 0
        assert _key_sets(clusters) == _key_sets(cluster_settings(store))

    def test_checkpoint_without_dendrograms_still_restores(self):
        # checkpoints written before the dendrogram cache existed load
        # fine; the first update just re-agglomerates
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        state = pipeline.to_state()
        for shard_state in state["shards"].values():
            assert shard_state.pop("dendrograms")
        resumed = ShardedPipeline.from_state(store, state)
        assert _key_sets(resumed.update()) == _key_sets(cluster_settings(store))
        assert resumed.last_stats.merges_reused == 0

    def test_checkpoint_rejects_foreign_dendrogram_keys(self):
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        state = pipeline.to_state()
        for shard_state in state["shards"].values():
            shard_state["dendrograms"] = [
                {"items": ["not", "recorded"], "merges": [[0, 1, 1.0]]}
            ]
        with pytest.raises(ValueError, match="dendrogram covers keys absent"):
            ShardedPipeline.from_state(store, state)

    def test_repair_mode_survives_the_checkpoint(self):
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store, repair_mode=REPAIR_REBUILD)
        pipeline.update()
        resumed = ShardedPipeline.from_state(store, pipeline.to_state())
        assert resumed.repair_mode == REPAIR_REBUILD

    def test_from_state_repair_mode_override(self):
        # repair_mode is runtime configuration like executor: a resume
        # may override the checkpointed mode without changing results
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store)  # splice-mode checkpoint
        pipeline.update()
        resumed = ShardedPipeline.from_state(
            store, pipeline.to_state(), repair_mode=REPAIR_REBUILD
        )
        assert resumed.repair_mode == REPAIR_REBUILD
        store.record_write("app/k00", "new", 50 * 100.0 + 1500)
        clusters = resumed.update()
        assert resumed.last_stats.merges_reused == 0
        assert _key_sets(clusters) == _key_sets(cluster_settings(store))

    def test_rebuild_mode_carries_no_dendrogram_cache(self):
        # rebuild-mode checkpoints stay exactly as small as pre-splice
        # ones, and merges_reused stays 0 even across a restore
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store, repair_mode=REPAIR_REBUILD)
        pipeline.update()
        state = pipeline.to_state()
        for shard_state in state["shards"].values():
            assert shard_state["dendrograms"] == []
        resumed = ShardedPipeline.from_state(store, state)
        store.record_write("app/k00", "new", 50 * 100.0 + 1500)
        resumed.update()
        assert resumed.last_stats.merges_reused == 0
        assert resumed.last_stats.merges_recomputed > 0


# -- state encoding ----------------------------------------------------------

class TestDendrogramState:
    def test_round_trip_is_exact(self):
        matrix = _chain_matrix(25)
        dendrogram = build_dendrogram(matrix, frozenset(matrix.keys), "complete")
        restored = dendrogram_from_state(
            json.loads(json.dumps(dendrogram_to_state(dendrogram)))
        )
        assert restored.items == dendrogram.items
        assert restored.merges == dendrogram.merges

    def test_encoding_is_compact(self):
        matrix = _chain_matrix(25)
        dendrogram = build_dendrogram(matrix, frozenset(matrix.keys), "complete")
        state = dendrogram_to_state(dendrogram)
        assert len(state["items"]) == 25
        for left, right, distance in state["merges"]:
            assert isinstance(left, int) and isinstance(right, int)
            assert 0 <= left < 25 + len(state["merges"])
            assert 0 <= right < 25 + len(state["merges"])
            assert distance > 0

    def test_singleton_dendrogram(self):
        dendrogram = build_dendrogram(CorrelationMatrix({"a": {0}}), {"a"}, "complete")
        state = dendrogram_to_state(dendrogram)
        assert state == {"items": ["a"], "merges": []}
        assert dendrogram_from_state(state).cut(1.0) == [frozenset("a")]

"""Tests for cluster search prioritisation."""

import pytest

from repro.core.cluster_model import ClusterSet
from repro.core.sorting import (
    SORT_MODCOUNT,
    SORT_NONE,
    SORT_RECENCY,
    sort_clusters_for_search,
)
from repro.ttkv.store import TTKV


@pytest.fixture
def store() -> TTKV:
    store = TTKV()
    # "hot" modified 5 times, recently; "cold" once, long ago;
    # "mid" twice, most recently of all.
    for t in (10.0, 20.0, 30.0, 40.0, 50.0):
        store.record_write("hot", t, t)
    store.record_write("cold", 1, 5.0)
    store.record_write("mid", 1, 15.0)
    store.record_write("mid", 2, 60.0)
    return store


@pytest.fixture
def clusters() -> ClusterSet:
    return ClusterSet.from_key_sets(
        [frozenset({"hot"}), frozenset({"cold"}), frozenset({"mid"})],
        window=1.0,
        correlation_threshold=2.0,
    )


class TestSortPolicies:
    def test_modcount_ascending(self, clusters, store):
        ordered = sort_clusters_for_search(clusters, store, SORT_MODCOUNT)
        names = [next(iter(c.keys)) for c in ordered]
        assert names == ["cold", "mid", "hot"]

    def test_modcount_tie_break_recent_first(self, store, clusters):
        store.record_write("cold", 2, 100.0)  # now cold has 2 mods like mid
        ordered = sort_clusters_for_search(clusters, store, SORT_MODCOUNT)
        names = [next(iter(c.keys)) for c in ordered]
        assert names == ["cold", "mid", "hot"]  # cold @100 beats mid @60

    def test_recency_policy(self, clusters, store):
        ordered = sort_clusters_for_search(clusters, store, SORT_RECENCY)
        names = [next(iter(c.keys)) for c in ordered]
        assert names == ["mid", "hot", "cold"]

    def test_none_policy_keeps_input_order(self, clusters, store):
        ordered = sort_clusters_for_search(clusters, store, SORT_NONE)
        assert ordered == clusters.clusters

    def test_unknown_policy_rejected(self, clusters, store):
        with pytest.raises(ValueError):
            sort_clusters_for_search(clusters, store, "alphabetical")

    def test_deterministic(self, clusters, store):
        a = sort_clusters_for_search(clusters, store)
        b = sort_clusters_for_search(clusters, store)
        assert [c.cluster_id for c in a] == [c.cluster_id for c in b]

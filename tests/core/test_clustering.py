"""Tests for the from-scratch HAC, including validation against SciPy."""

import itertools
import math

import pytest

np = pytest.importorskip(
    "numpy", reason="SciPy cross-checks need the numeric stack",
    exc_type=ImportError,
)
scipy = pytest.importorskip(
    "scipy", reason="SciPy cross-checks need the numeric stack",
    exc_type=ImportError,
)
from hypothesis import given, settings, strategies as st
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.core.clustering import (
    LINKAGE_AVERAGE,
    LINKAGE_COMPLETE,
    LINKAGE_SINGLE,
    flat_clusters,
    hac,
    hac_complete_linkage,
)
from repro.core.correlation import CorrelationMatrix


def matrix_from_groups(key_groups):
    return CorrelationMatrix({k: set(v) for k, v in key_groups.items()})


class TestCompleteLinkage:
    def test_always_together_pair_merges(self):
        matrix = matrix_from_groups({"a": {0, 1}, "b": {0, 1}})
        dendrogram = hac_complete_linkage(matrix)
        assert len(dendrogram) == 1
        assert dendrogram.merges[0].distance == 0.5

    def test_unconnected_keys_never_merge(self):
        matrix = matrix_from_groups({"a": {0}, "b": {1}})
        dendrogram = hac_complete_linkage(matrix)
        assert len(dendrogram) == 0

    def test_chain_merges_at_max_distance(self):
        # a-b strongly related; c related to b only weakly; complete
        # linkage must use the *max* pairwise distance when joining c.
        matrix = matrix_from_groups(
            {"a": {0, 1, 2, 3}, "b": {0, 1, 2, 3}, "c": {3, 4, 5, 6}}
        )
        dendrogram = hac_complete_linkage(matrix)
        assert len(dendrogram) == 2
        first, second = dendrogram.merges
        assert first.members == {"a", "b"}
        # corr(a,c) = 1/4 + 1/4 = 0.5 -> distance 2; corr(b,c) same.
        assert second.distance == pytest.approx(2.0)

    def test_merge_distances_nondecreasing(self):
        matrix = matrix_from_groups(
            {
                "a": {0, 1},
                "b": {0, 1, 2},
                "c": {2, 3},
                "d": {3},
            }
        )
        distances = hac_complete_linkage(matrix).merge_distances()
        assert distances == sorted(distances)

    def test_empty_matrix(self):
        dendrogram = hac_complete_linkage(matrix_from_groups({}))
        assert len(dendrogram) == 0
        assert dendrogram.cut(0.5) == []

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ValueError):
            hac(matrix_from_groups({"a": {0}}), linkage="ward")


class TestFlatClusters:
    def test_default_threshold_only_always_together(self):
        matrix = matrix_from_groups(
            {"a": {0, 1}, "b": {0, 1}, "c": {1, 2}}
        )
        clusters = flat_clusters(matrix, correlation_threshold=2.0)
        assert frozenset({"a", "b"}) in clusters
        assert frozenset({"c"}) in clusters

    def test_lower_threshold_merges_more(self):
        matrix = matrix_from_groups(
            {"a": {0, 1}, "b": {0, 1}, "c": {1, 2}}
        )
        clusters = flat_clusters(matrix, correlation_threshold=1.0)
        assert clusters[0] == frozenset({"a", "b", "c"})

    def test_threshold_out_of_range(self):
        matrix = matrix_from_groups({"a": {0}})
        with pytest.raises(ValueError):
            flat_clusters(matrix, correlation_threshold=0.0)
        with pytest.raises(ValueError):
            flat_clusters(matrix, correlation_threshold=2.5)

    def test_clusters_partition_keys(self):
        matrix = matrix_from_groups(
            {"a": {0, 1}, "b": {0, 1}, "c": {1}, "d": {5}}
        )
        clusters = flat_clusters(matrix)
        seen = sorted(k for c in clusters for k in c)
        assert seen == ["a", "b", "c", "d"]


class TestSingleAndAverage:
    def test_single_linkage_chains(self):
        # single linkage joins via the closest pair, so the a-b-c chain
        # fuses at threshold 1 even though corr(a,c)=0.
        matrix = matrix_from_groups(
            {"a": {0, 1}, "b": {0, 1, 2, 3}, "c": {2, 3}}
        )
        clusters = flat_clusters(
            matrix, correlation_threshold=1.0, linkage=LINKAGE_SINGLE
        )
        assert clusters[0] == frozenset({"a", "b", "c"})

    def test_complete_linkage_does_not_chain(self):
        matrix = matrix_from_groups(
            {"a": {0, 1}, "b": {0, 1, 2, 3}, "c": {2, 3}}
        )
        clusters = flat_clusters(
            matrix, correlation_threshold=1.0, linkage=LINKAGE_COMPLETE
        )
        assert frozenset({"a", "b", "c"}) not in clusters

    def test_average_between_the_two(self):
        matrix = matrix_from_groups(
            {"a": {0, 1}, "b": {0, 1, 2, 3}, "c": {2, 3}}
        )
        single = flat_clusters(matrix, 1.0, linkage=LINKAGE_SINGLE)
        average = flat_clusters(matrix, 1.0, linkage=LINKAGE_AVERAGE)
        complete = flat_clusters(matrix, 1.0, linkage=LINKAGE_COMPLETE)
        assert len(single) <= len(average) <= len(complete)


# -- validation against SciPy -------------------------------------------------


def _scipy_flat_clusters(names, dist, threshold, method):
    condensed = squareform(dist, checks=False)
    tree = linkage(condensed, method=method)
    labels = fcluster(tree, t=threshold, criterion="distance")
    clusters: dict[int, set] = {}
    for name, label in zip(names, labels):
        clusters.setdefault(label, set()).add(name)
    return sorted(
        (frozenset(c) for c in clusters.values()),
        key=lambda c: (-len(c), tuple(sorted(c))),
    )


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from("abcdefgh"),
        st.sets(st.integers(min_value=0, max_value=6), min_size=1, max_size=4),
        min_size=3,
        max_size=8,
    ),
    st.sampled_from([0.5, 0.75, 1.0, 1.5, 2.0]),
)
def test_property_complete_linkage_invariants(key_groups, corr_threshold):
    """Threshold-cut complete linkage obeys its two defining invariants.

    (Exact partitions are tie-dependent — equal merge distances admit
    several valid complete-linkage results, and SciPy's tie-break differs
    from ours — so the invariants, which every valid result satisfies,
    are what we check property-style.)

    1. within a cluster, every pairwise distance <= threshold;
    2. no two clusters could still merge: across any two clusters the
       *maximum* pairwise distance exceeds the threshold.
    """
    matrix = matrix_from_groups(key_groups)
    if len(matrix.keys) < 2:
        return
    max_distance = 1.0 / corr_threshold
    clusters = flat_clusters(matrix, correlation_threshold=corr_threshold)

    for cluster in clusters:
        for a, b in itertools.combinations(sorted(cluster), 2):
            assert matrix.distance_of(a, b) <= max_distance

    for c1, c2 in itertools.combinations(clusters, 2):
        cross = max(
            matrix.distance_of(a, b)
            for a in c1
            for b in c2
        )
        assert cross > max_distance


def test_matches_scipy_complete_linkage_tie_free():
    """Deterministic SciPy comparison on a matrix with no tied distances."""
    key_groups = {
        "a": {0, 1, 2, 3, 4},
        "b": {0, 1, 2, 3},
        "c": {2, 3, 4, 5, 6, 7},
        "d": {7, 8},
        "e": {9},
    }
    matrix = matrix_from_groups(key_groups)
    names = sorted(matrix.keys)
    big = 1e9
    n = len(names)
    dist = np.zeros((n, n))
    finite = []
    for i, a in enumerate(names):
        for j in range(i + 1, n):
            d = matrix.distance_of(a, names[j])
            if not math.isinf(d):
                finite.append(round(d, 9))
            dist[i, j] = dist[j, i] = min(d, big)
    assert len(finite) == len(set(finite)), "fixture must be tie-free"

    for corr_threshold in (0.5, 1.0, 1.5, 2.0):
        ours = sorted(
            flat_clusters(matrix, correlation_threshold=corr_threshold),
            key=lambda c: (-len(c), tuple(sorted(c))),
        )
        theirs = _scipy_flat_clusters(
            names, dist, 1.0 / corr_threshold, "complete"
        )
        assert ours == theirs, f"threshold {corr_threshold}"


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from("abcdef"),
        st.sets(st.integers(min_value=0, max_value=5), min_size=1, max_size=3),
        min_size=3,
        max_size=6,
    )
)
def test_property_matches_scipy_single_linkage(key_groups):
    matrix = matrix_from_groups(key_groups)
    names = sorted(matrix.keys)
    if len(names) < 2:
        return
    big = 1e9
    n = len(names)
    dist = np.zeros((n, n))
    for i, a in enumerate(names):
        for j in range(i + 1, n):
            dist[i, j] = dist[j, i] = min(matrix.distance_of(a, names[j]), big)
    ours = sorted(
        flat_clusters(matrix, 1.0, linkage=LINKAGE_SINGLE),
        key=lambda c: (-len(c), tuple(sorted(c))),
    )
    theirs = _scipy_flat_clusters(names, dist, 1.0, "single")
    assert ours == theirs

"""Tests for sliding-window write-group extraction."""

import pytest
from hypothesis import given, strategies as st

from repro.core.windowing import (
    extract_fixed_buckets,
    extract_write_groups,
    key_group_sets,
)


def _events(*specs):
    return [(t, k, f"v@{t}") for t, k in specs]


class TestSlidingWindow:
    def test_empty(self):
        assert extract_write_groups([], 1.0) == []

    def test_single_event(self):
        groups = extract_write_groups(_events((5.0, "a")), 1.0)
        assert len(groups) == 1
        assert groups[0].keys == {"a"}

    def test_events_within_window_grouped(self):
        groups = extract_write_groups(
            _events((1.0, "a"), (1.5, "b"), (2.2, "c")), 1.0
        )
        assert len(groups) == 1
        assert groups[0].keys == {"a", "b", "c"}

    def test_gap_larger_than_window_splits(self):
        groups = extract_write_groups(_events((1.0, "a"), (3.0, "b")), 1.0)
        assert len(groups) == 2

    def test_window_slides_with_latest_event(self):
        """A chain of events each within the window of its predecessor is
        one group even when it spans much more than one window overall."""
        chain = _events(*((float(i) * 0.9, "k") for i in range(10)))
        groups = extract_write_groups(chain, 1.0)
        assert len(groups) == 1
        assert groups[0].end - groups[0].start > 1.0

    def test_gap_exactly_window_is_grouped(self):
        groups = extract_write_groups(_events((1.0, "a"), (2.0, "b")), 1.0)
        assert len(groups) == 1

    def test_zero_window_groups_identical_timestamps_only(self):
        groups = extract_write_groups(
            _events((1.0, "a"), (1.0, "b"), (1.5, "c")), 0.0
        )
        assert [g.keys for g in groups] == [{"a", "b"}, {"c"}]

    def test_duplicate_key_in_group_counted_once(self):
        groups = extract_write_groups(_events((1.0, "a"), (1.2, "a")), 1.0)
        assert len(groups) == 1
        assert len(groups[0]) == 1
        assert len(groups[0].events) == 2

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            extract_write_groups([], -1.0)

    def test_unsorted_events_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            extract_write_groups(_events((2.0, "a"), (1.0, "b")), 1.0)

    def test_group_contains_membership(self):
        group = extract_write_groups(_events((1.0, "a")), 1.0)[0]
        assert "a" in group
        assert "b" not in group


class TestFixedBuckets:
    def test_buckets_are_aligned(self):
        # 0.9 and 1.1 are in different width-1 buckets even though only
        # 0.2 s apart — the difference from the sliding variant.
        groups = extract_fixed_buckets(_events((0.9, "a"), (1.1, "b")), 1.0)
        assert len(groups) == 2

    def test_same_bucket_grouped(self):
        groups = extract_fixed_buckets(_events((1.0, "a"), (1.9, "b")), 1.0)
        assert len(groups) == 1

    def test_zero_window_falls_back(self):
        groups = extract_fixed_buckets(_events((1.0, "a"), (1.0, "b")), 0.0)
        assert len(groups) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            extract_fixed_buckets([], -0.5)


class TestKeyGroupSets:
    def test_maps_keys_to_group_indices(self):
        groups = extract_write_groups(
            _events((1.0, "a"), (1.5, "b"), (10.0, "a")), 1.0
        )
        sets = key_group_sets(groups)
        assert sets == {"a": {0, 1}, "b": {0}}

    def test_empty(self):
        assert key_group_sets([]) == {}


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.sampled_from("abc"),
        ),
        max_size=40,
    ),
    st.floats(min_value=0, max_value=5, allow_nan=False),
)
def test_property_groups_partition_events(specs, window):
    """Write groups partition the event list: no loss, no duplication."""
    events = sorted(((t, k, None) for t, k in specs), key=lambda e: e[0])
    groups = extract_write_groups(events, window)
    flattened = [e for g in groups for e in g.events]
    assert flattened == events


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.sampled_from("abc"),
        ),
        max_size=40,
    )
)
def test_property_wider_window_never_more_groups(specs):
    events = sorted(((t, k, None) for t, k in specs), key=lambda e: e[0])
    narrow = extract_write_groups(events, 0.5)
    wide = extract_write_groups(events, 5.0)
    assert len(wide) <= len(narrow)

"""Incremental ≡ batch: property tests for the streaming clustering pipeline.

The contract under test: for **any** prefix of a modification stream, an
:class:`IncrementalPipeline` that consumed the prefix through journal
cursors produces exactly the clusters the batch
:func:`~repro.core.pipeline.cluster_settings` computes from scratch over the
same store — same key sets, same order, same parameters.  The acceptance
bar for this PR is ≥ 200 random prefixes checked; the hypothesis suites and
the per-profile trace sweep below together run well past that.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.incremental import IncrementalPipeline
from repro.core.pipeline import cluster_settings
from repro.ttkv.store import DELETED, TTKV
from repro.workload.machines import PROFILES
from repro.workload.tracegen import generate_trace


def _sorted_stream(events):
    """Events ordered the way a live deployment would append them."""
    return [e for _, e in sorted(enumerate(events), key=lambda p: (p[1][0], p[0]))]


def _key_sets(cluster_set):
    return [tuple(c.sorted_keys()) for c in cluster_set]


def assert_stream_equivalence(events, rng, cuts=4, **params):
    """Feed ``events`` in random chunks; compare to batch at every cut."""
    stream = _sorted_stream(events)
    live = TTKV()
    pipeline = IncrementalPipeline(live, **params)
    positions = sorted(rng.sample(range(len(stream) + 1), min(cuts, len(stream) + 1)))
    if len(stream) not in positions:
        positions.append(len(stream))
    consumed = 0
    checked = 0
    for position in positions:
        live.record_events(stream[consumed:position])
        consumed = position
        incremental = pipeline.update()
        batch = cluster_settings(live, **params)
        assert _key_sets(incremental) == _key_sets(batch), (
            f"divergence at prefix {position}/{len(stream)} with {params}"
        )
        checked += 1
    return checked


# -- hypothesis suites -------------------------------------------------------

_timestamps = st.floats(min_value=0, max_value=2000, allow_nan=False)

_mixed_events = st.lists(
    st.tuples(
        _timestamps,
        st.sampled_from(["k0", "k1", "k2", "k3", "k4"]),
        st.one_of(st.integers(min_value=0, max_value=9), st.just(DELETED)),
    ),
    min_size=1,
    max_size=50,
)

# DELETED-heavy: ~75% of modifications are deletions.
_deleted_heavy_events = st.lists(
    st.tuples(
        _timestamps,
        st.sampled_from(["k0", "k1", "k2"]),
        st.one_of(
            st.just(DELETED), st.just(DELETED), st.just(DELETED),
            st.integers(min_value=0, max_value=3),
        ),
    ),
    min_size=1,
    max_size=40,
)

# Single-key traces: the degenerate one-component, no-pairs case.
_single_key_events = st.lists(
    st.tuples(_timestamps, st.just("only"), st.integers(min_value=0, max_value=5)),
    min_size=1,
    max_size=25,
)


@given(_mixed_events, st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_equivalence_mixed_streams(events, rng):
    assert_stream_equivalence(events, rng)


@given(
    _mixed_events,
    st.randoms(use_true_random=False),
    st.sampled_from([0.0, 1.0, 30.0]),
    st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=30, deadline=None)
def test_equivalence_across_windows_and_thresholds(events, rng, window, threshold):
    assert_stream_equivalence(
        events, rng, window=window, correlation_threshold=threshold
    )


@given(_mixed_events, st.randoms(use_true_random=False))
@settings(max_examples=20, deadline=None)
def test_equivalence_bucket_grouping(events, rng):
    assert_stream_equivalence(events, rng, window=10.0, grouping="buckets")


@given(_deleted_heavy_events, st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_equivalence_deleted_heavy(events, rng):
    assert_stream_equivalence(events, rng)


@given(_single_key_events, st.randoms(use_true_random=False))
@settings(max_examples=20, deadline=None)
def test_equivalence_single_key(events, rng):
    assert_stream_equivalence(events, rng)


# -- generated traces across every workload profile --------------------------

def _scaled(profile):
    """A fast, small variant of a Table I machine profile."""
    return dataclasses.replace(
        profile,
        days=2,
        noise_keys=min(profile.noise_keys, 25),
        noise_writes_per_day=min(profile.noise_writes_per_day, 60),
        reads_per_day=min(profile.reads_per_day, 100),
    )


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
def test_equivalence_on_generated_profile_traces(profile):
    trace = generate_trace(_scaled(profile))
    events = trace.ttkv.write_events()
    assert events, f"profile {profile.name} generated no modifications"
    rng = random.Random(profile.seed)
    checked = assert_stream_equivalence(events, rng, cuts=8)
    assert checked >= 2


# -- incremental-specific behaviours -----------------------------------------

class TestIncrementalBehaviour:
    def test_component_reuse_reported(self):
        store = TTKV()
        pipeline = IncrementalPipeline(store)
        for t in (10.0, 200.0):
            store.record_write("a", t, t)
            store.record_write("b", t, t)
        pipeline.update()
        # a distant, unrelated pair must not re-agglomerate {a, b}
        store.record_write("x", 1, 900.0)
        store.record_write("y", 1, 900.0)
        pipeline.update()
        stats = pipeline.last_stats
        assert stats.components_reused >= 1
        assert stats.components_reclustered >= 1

    def test_no_new_events_is_a_no_op(self):
        store = TTKV()
        store.record_write("a", 1, 1.0)
        pipeline = IncrementalPipeline(store)
        first = pipeline.update()
        second = pipeline.update()
        assert second is first
        assert pipeline.last_stats.events_consumed == 0
        assert pipeline.last_stats.components_reclustered == 0

    def test_same_tick_writes_do_not_rebuild(self):
        # with 1-second timestamp quantisation, two keys writing within the
        # same tick in "wrong" key order is routine and must stay on the
        # incremental path (regression: this used to force a full rebuild)
        store = TTKV()
        store.record_write("a", 1, 10.0)
        store.record_write("b", 1, 10.0)
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        store.record_write("b", 2, 20.0)
        pipeline.update()
        store.record_write("a", 2, 20.0)  # same tick, non-first-seen order
        result = pipeline.update()
        assert not pipeline.last_stats.rebuilt
        assert _key_sets(result) == _key_sets(cluster_settings(store))

    def test_reorder_within_trailing_group_is_absorbed(self):
        store = TTKV()
        store.record_write("a", 1, 100.0)
        store.record_write("b", 1, 100.0)
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        # the reordered suffix is still inside the provisional trailing
        # write group: the engine rewinds and re-feeds instead of
        # rebuilding (the bounded reorder buffer)
        store.record_write("early", 1, 5.0)
        incremental = pipeline.update()
        assert not pipeline.last_stats.rebuilt
        assert pipeline.last_stats.reorders_absorbed == 2
        assert _key_sets(incremental) == _key_sets(cluster_settings(store))

    def test_reorder_into_closed_group_triggers_rebuild(self):
        store = TTKV()
        store.record_write("a", 1, 100.0)
        store.record_write("b", 1, 100.0)
        store.record_write("c", 1, 900.0)  # closes the {a, b} group
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        # the insertion lands before the already-closed {a, b} group —
        # beyond the reorder buffer, so the session must rebuild
        store.record_write("early", 1, 5.0)
        incremental = pipeline.update()
        assert pipeline.last_stats.rebuilt
        assert pipeline.last_stats.reorders_absorbed == 0
        assert _key_sets(incremental) == _key_sets(cluster_settings(store))

    def test_reorder_at_the_pending_group_boundary_rebuilds(self):
        # the insertion re-delivers the *entire* pending group: its first
        # event is what closed the previous group, a decision the
        # extractor cannot retract.  Absorbing here used to split the
        # closed group and silently diverge from batch.
        store = TTKV()
        store.record_write("a", 1, 10.0)
        store.record_write("b", 1, 100.0)
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        store.record_write("race", 1, 10.0)  # joins the closed {a} group
        incremental = pipeline.update()
        assert pipeline.last_stats.rebuilt
        assert pipeline.last_stats.reorders_absorbed == 0
        assert _key_sets(incremental) == _key_sets(cluster_settings(store))

    def test_reorder_absorption_matches_batch_when_group_merges(self):
        # the inserted event falls within the trailing group's window, so
        # re-feeding extends the provisional group to include it
        store = TTKV()
        store.record_write("a", 1, 100.0)
        store.record_write("b", 1, 100.0)
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        store.record_write("mid", 1, 99.0)  # same window as the tail
        incremental = pipeline.update()
        assert not pipeline.last_stats.rebuilt
        assert pipeline.last_stats.reorders_absorbed == 2
        assert _key_sets(incremental) == _key_sets(cluster_settings(store))

    def test_key_filter_equivalence(self):
        store = TTKV()
        pipeline = IncrementalPipeline(store, key_filter="app/")
        for t in (10.0, 20.0, 400.0):
            store.record_write("app/a", t, t)
            store.record_write("app/b", t, t)
            store.record_write("sys/noise", t, t + 0.5)
        incremental = pipeline.update()
        batch = cluster_settings(store, key_filter="app/")
        assert _key_sets(incremental) == _key_sets(batch)
        assert all(key.startswith("app/") for keys in _key_sets(incremental) for key in keys)

    def test_matrix_property_is_a_read_only_snapshot(self):
        # regression: .matrix used to leak the live mutable matrix, so a
        # caller could silently corrupt the incremental state
        store = TTKV()
        store.record_write("a", 1, 1.0)
        store.record_write("b", 1, 1.0)
        pipeline = IncrementalPipeline(store)
        pipeline.update()
        view = pipeline.matrix
        assert view.correlation_of("a", "b") == 2.0
        assert sorted(view.keys) == ["a", "b"]
        with pytest.raises(TypeError):
            view.observe_group(99, {"mallory"})
        with pytest.raises(TypeError):
            view.update_groups(added=[(99, {"mallory"})])
        # the failed mutation must not have touched the session
        assert _key_sets(pipeline.update()) == _key_sets(cluster_settings(store))

    def test_cluster_set_property_tracks_latest(self):
        store = TTKV()
        pipeline = IncrementalPipeline(store)
        assert pipeline.cluster_set is None
        store.record_write("a", 1, 1.0)
        result = pipeline.update()
        assert pipeline.cluster_set is result

    def test_retuned_parameters_restart_the_session(self):
        store = TTKV()
        # two components with 50% correlation each
        store.record_events([
            (0.0, "a", 1), (0.0, "b", 1), (100.0, "a", 2),
            (200.0, "c", 1), (200.0, "d", 1), (300.0, "c", 2),
        ])
        pipeline = IncrementalPipeline(store)  # threshold 2.0
        pipeline.update()
        pipeline.correlation_threshold = 0.5
        # dirty only one component; the cached other must still be re-cut
        store.record_write("a", 3, 400.0)
        result = pipeline.update()
        assert pipeline.last_stats.rebuilt
        batch = cluster_settings(store, correlation_threshold=0.5)
        assert _key_sets(result) == _key_sets(batch)
        assert result.correlation_threshold == 0.5

    def test_invalid_parameters_rejected(self):
        store = TTKV()
        with pytest.raises(ValueError):
            IncrementalPipeline(store, correlation_threshold=0.0)
        with pytest.raises(ValueError):
            IncrementalPipeline(store, linkage="ward")
        with pytest.raises(ValueError):
            IncrementalPipeline(store, window=-1.0)
        with pytest.raises(ValueError):
            IncrementalPipeline(store, grouping="hourly")

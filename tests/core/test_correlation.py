"""Tests for the paper's correlation metric and the sparse matrix."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correlation import (
    CorrelationMatrix,
    CorrelationMatrixView,
    correlation,
    correlation_to_distance,
    distance_to_correlation,
)


class TestCorrelationMetric:
    def test_always_together_is_two(self):
        assert correlation({1, 2, 3}, {1, 2, 3}) == 2.0

    def test_never_together_is_zero(self):
        assert correlation({1, 2}, {3, 4}) == 0.0

    def test_partial_overlap(self):
        # |A∩B|=1, |A|=2, |B|=4 -> 0.5 + 0.25
        assert correlation({1, 2}, {1, 3, 4, 5}) == pytest.approx(0.75)

    def test_asymmetric_sizes_symmetric_result(self):
        a, b = {1, 2, 3, 4}, {1}
        assert correlation(a, b) == correlation(b, a)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            correlation(set(), {1})

    def test_subset_relationship(self):
        # B always co-occurs with A but A often occurs alone.
        assert correlation({1, 2, 3, 4}, {1, 2}) == pytest.approx(0.5 + 1.0)


class TestDistanceTransform:
    def test_perfect_correlation_distance(self):
        assert correlation_to_distance(2.0) == 0.5

    def test_zero_correlation_infinite(self):
        assert math.isinf(correlation_to_distance(0.0))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            correlation_to_distance(2.1)
        with pytest.raises(ValueError):
            correlation_to_distance(-0.1)

    def test_inverse(self):
        assert distance_to_correlation(correlation_to_distance(1.25)) == pytest.approx(1.25)

    def test_infinite_distance_maps_to_zero(self):
        assert distance_to_correlation(math.inf) == 0.0

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(ValueError):
            distance_to_correlation(0.0)


@pytest.fixture
def matrix() -> CorrelationMatrix:
    # a and b always together; c sometimes with a; d alone.
    return CorrelationMatrix(
        {
            "a": {0, 1, 2},
            "b": {0, 1, 2},
            "c": {2, 3},
            "d": {4},
        }
    )


class TestCorrelationMatrix:
    def test_pairwise_value(self, matrix):
        assert matrix.correlation_of("a", "b") == 2.0

    def test_uncorrelated_pair_is_zero(self, matrix):
        assert matrix.correlation_of("a", "d") == 0.0

    def test_self_correlation_rejected(self, matrix):
        with pytest.raises(ValueError):
            matrix.correlation_of("a", "a")

    def test_unknown_key_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.correlation_of("a", "ghost")

    def test_distance_of(self, matrix):
        assert matrix.distance_of("a", "b") == 0.5
        assert math.isinf(matrix.distance_of("a", "d"))

    def test_neighbors(self, matrix):
        assert matrix.neighbors("a") == {"b", "c"}
        assert matrix.neighbors("d") == set()

    def test_empty_group_set_rejected(self):
        with pytest.raises(ValueError):
            CorrelationMatrix({"a": set()})

    def test_connected_components(self, matrix):
        components = sorted(
            matrix.connected_components(), key=lambda c: sorted(c)[0]
        )
        assert components == [{"a", "b", "c"}, {"d"}]

    def test_finite_pairs_listing(self, matrix):
        pairs = {(a, b) for a, b, _ in matrix.finite_pairs()}
        assert pairs == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_len(self, matrix):
        assert len(matrix) == 4


@given(
    st.dictionaries(
        st.sampled_from("abcdef"),
        st.sets(st.integers(min_value=0, max_value=10), min_size=1),
        min_size=2,
    )
)
def test_property_correlation_bounds_and_symmetry(key_groups):
    matrix = CorrelationMatrix(key_groups)
    keys = matrix.keys
    for i, key_a in enumerate(keys):
        for key_b in keys[i + 1:]:
            value = matrix.correlation_of(key_a, key_b)
            assert 0.0 <= value <= 2.0
            assert value == matrix.correlation_of(key_b, key_a)
            # matrix agrees with the direct metric
            expected = correlation(key_groups[key_a], key_groups[key_b])
            assert value == pytest.approx(expected)


class TestInPlaceUpdates:
    def test_observe_group_matches_batch_construction(self):
        batch = CorrelationMatrix({"a": {0, 1}, "b": {0, 1}, "c": {1}})
        streamed = CorrelationMatrix()
        streamed.observe_group(0, {"a", "b"})
        streamed.observe_group(1, {"a", "b", "c"})
        for key_a, key_b in (("a", "b"), ("a", "c"), ("b", "c")):
            assert streamed.correlation_of(key_a, key_b) == batch.correlation_of(
                key_a, key_b
            )
        assert sorted(streamed.keys) == sorted(batch.keys)

    def test_retract_group_restores_previous_state(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a", "b"})
        matrix.observe_group(1, {"b", "c"})
        matrix.retract_group(1, {"b", "c"})
        assert sorted(matrix.keys) == ["a", "b"]
        assert matrix.correlation_of("a", "b") == 2.0
        assert matrix.neighbors("b") == {"a"}

    def test_update_groups_replaces_provisional_group(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a"})
        dirty = matrix.update_groups(
            added=[(0, {"a", "b"})], removed=[(0, {"a"})]
        )
        assert dirty == {"a", "b"}
        assert matrix.correlation_of("a", "b") == 2.0

    def test_failed_retract_leaves_matrix_untouched(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a", "b"})
        with pytest.raises(ValueError):
            # group 5 was never observed for either key; validation must
            # reject the batch before mutating anything
            matrix.retract_group(5, {"a", "b"})
        assert matrix.correlation_of("a", "b") == 2.0
        assert matrix.neighbors("a") == {"b"}

    def test_partially_invalid_retract_is_atomic(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a"})
        matrix.observe_group(1, {"a", "b"})
        with pytest.raises(ValueError):
            # group 0 was observed as {"a"}, not {"a", "b"}
            matrix.retract_group(0, {"a", "b"})
        assert matrix.correlation_of("a", "b") == pytest.approx(0.5 + 1.0)
        assert matrix.group_count("a") == 2

    def test_subset_retract_rejected(self):
        # retracting part of a group's membership would leave dangling
        # pair counts; the matrix must insist on the exact observed set
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"x", "y", "z"})
        with pytest.raises(ValueError):
            matrix.retract_group(0, {"x"})
        assert matrix.neighbors("x") == {"y", "z"}
        assert len(list(matrix.finite_pairs())) == 3
        assert matrix.connected_components() == [{"x", "y", "z"}]

    def test_empty_group_rejected(self):
        matrix = CorrelationMatrix()
        with pytest.raises(ValueError):
            matrix.observe_group(0, set())
        matrix.observe_group(0, {"a"})  # the index was never occupied
        assert matrix.group_count("a") == 1

    def test_index_reuse_with_disjoint_keys_rejected(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(5, {"a", "b"})
        with pytest.raises(ValueError):
            matrix.observe_group(5, {"c", "d"})
        assert sorted(matrix.keys) == ["a", "b"]

    def test_duplicate_observation_rejected(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a"})
        with pytest.raises(ValueError):
            matrix.observe_group(0, {"a", "b"})
        assert sorted(matrix.keys) == ["a"]

    def test_duplicate_index_within_added_batch_rejected(self):
        matrix = CorrelationMatrix()
        with pytest.raises(ValueError):
            matrix.update_groups(added=[(0, {"a", "b"}), (0, {"a", "c"})])
        assert len(matrix) == 0

    def test_duplicate_index_within_removed_batch_rejected(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a", "b"})
        with pytest.raises(ValueError):
            matrix.update_groups(removed=[(0, {"a", "b"}), (0, {"a", "b"})])
        assert matrix.correlation_of("a", "b") == 2.0


def _assert_components_agree(matrix):
    unionfind = sorted(map(sorted, matrix.connected_components()))
    scan = sorted(map(sorted, matrix.connected_components(method="scan")))
    assert unionfind == scan


class TestUnionFindComponents:
    """The incrementally maintained components vs the traversal reference."""

    def test_find_and_component_members(self):
        matrix = CorrelationMatrix({"a": {0}, "b": {0}, "c": {1}})
        assert matrix.find("a") == matrix.find("b")
        assert matrix.find("a") != matrix.find("c")
        assert matrix.component_members("a") == {"a", "b"}
        assert matrix.component_members("c") == {"c"}
        with pytest.raises(KeyError):
            matrix.find("ghost")

    def test_components_merge_incrementally(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a", "b"})
        matrix.observe_group(1, {"c", "d"})
        version = matrix.structure_version
        _assert_components_agree(matrix)
        matrix.observe_group(2, {"b", "c"})  # bridges the two components
        assert matrix.component_members("a") == {"a", "b", "c", "d"}
        # pure growth must not signal a structural loss
        assert matrix.structure_version == version
        _assert_components_agree(matrix)

    def test_provisional_replacement_is_not_a_structural_loss(self):
        # the streaming pipeline's routine retract-and-extend of the
        # trailing group must stay on the incremental path
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a", "b"})
        version = matrix.structure_version
        matrix.update_groups(
            added=[(0, {"a", "b", "c"})], removed=[(0, {"a", "b"})]
        )
        assert matrix.structure_version == version
        assert matrix.component_members("c") == {"a", "b", "c"}
        _assert_components_agree(matrix)

    def test_true_retraction_bumps_version_and_rebuilds(self):
        matrix = CorrelationMatrix()
        matrix.observe_group(0, {"a", "b"})
        matrix.observe_group(1, {"b", "c"})
        version = matrix.structure_version
        matrix.retract_group(1, {"b", "c"})  # severs b-c and drops key c
        assert matrix.structure_version > version
        assert matrix.component_members("a") == {"a", "b"}
        assert sorted(map(sorted, matrix.connected_components())) == [["a", "b"]]
        _assert_components_agree(matrix)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]),
                st.sets(st.sampled_from("abcdefgh"), min_size=1, max_size=4),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_components_always_match_scan(self, operations):
        matrix = CorrelationMatrix()
        live: dict[int, set] = {}
        next_index = 0
        for action, keys in operations:
            if action == "add" or not live:
                matrix.observe_group(next_index, keys)
                live[next_index] = keys
                next_index += 1
            else:
                index = sorted(live)[len(live) // 2]
                matrix.retract_group(index, live.pop(index))
            _assert_components_agree(matrix)
            for key in matrix.keys:
                assert key in matrix.component_members(key)
                assert matrix.find(key) in matrix.component_members(key)


class TestReadOnlyView:
    def test_queries_delegate(self):
        matrix = CorrelationMatrix({"a": {0, 1}, "b": {0, 1}, "c": {2}})
        view = CorrelationMatrixView(matrix)
        assert view.correlation_of("a", "b") == 2.0
        assert view.distance_of("a", "b") == 0.5
        assert view.neighbors("a") == {"b"}
        assert sorted(view.keys) == ["a", "b", "c"]
        assert len(view) == 3
        assert "a" in view and "ghost" not in view
        assert view.group_count("a") == 2
        assert view.component_members("a") == {"a", "b"}
        assert view.find("a") == matrix.find("a")
        assert sorted(map(sorted, view.connected_components())) == sorted(
            map(sorted, matrix.connected_components())
        )
        assert view.observed_groups() == matrix.observed_groups()
        assert set(dict(view.observed_groups())) == {0, 1, 2}

    def test_mutators_raise(self):
        view = CorrelationMatrixView(CorrelationMatrix({"a": {0}}))
        with pytest.raises(TypeError):
            view.observe_group(1, {"x"})
        with pytest.raises(TypeError):
            view.retract_group(0, {"a"})
        with pytest.raises(TypeError):
            view.update_groups(added=[(1, {"x"})])

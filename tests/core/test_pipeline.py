"""Tests for the end-to-end clustering pipeline options."""

import pytest

from repro.core.pipeline import (
    cluster_settings,
    rebuild_cluster,
    singleton_clusters,
)
from repro.ttkv.store import TTKV


@pytest.fixture
def mixed_store() -> TTKV:
    store = TTKV()
    # app A: a pair always co-written
    for t in (10.0, 500.0, 900.0):
        store.record_write("appA/x", t, t)
        store.record_write("appA/y", t, t)
    # app B: a lone key
    store.record_write("appB/z", 1, 200.0)
    # a read-only key that must never appear in clusters
    store.record_read("appA/readonly", 50.0)
    return store


class TestClusterSettings:
    def test_defaults(self, mixed_store):
        clusters = cluster_settings(mixed_store)
        assert clusters.window == 1.0
        assert clusters.correlation_threshold == 2.0
        assert clusters.cluster_of("appA/x") is clusters.cluster_of("appA/y")

    def test_read_only_keys_excluded(self, mixed_store):
        clusters = cluster_settings(mixed_store)
        assert "appA/readonly" not in clusters

    def test_key_filter(self, mixed_store):
        clusters = cluster_settings(mixed_store, key_filter="appA/")
        assert "appB/z" not in clusters
        assert "appA/x" in clusters

    def test_bucket_grouping(self, mixed_store):
        clusters = cluster_settings(mixed_store, grouping="buckets")
        assert clusters.cluster_of("appA/x") is clusters.cluster_of("appA/y")

    def test_unknown_grouping_rejected(self, mixed_store):
        with pytest.raises(ValueError):
            cluster_settings(mixed_store, grouping="magic")

    def test_unknown_linkage_rejected(self, mixed_store):
        with pytest.raises(ValueError):
            cluster_settings(mixed_store, linkage="ward")

    def test_empty_store(self):
        clusters = cluster_settings(TTKV())
        assert len(clusters) == 0

    def test_threshold_forwarded(self, mixed_store):
        # co-modify x with z exactly once: below threshold 2, above ~0.6
        mixed_store.record_write("appA/x", 99, 2000.0)
        mixed_store.record_write("appB/z", 99, 2000.0)
        strict = cluster_settings(mixed_store, correlation_threshold=2.0)
        assert strict.cluster_of("appA/x") is not strict.cluster_of("appB/z")


class TestSingletonClusters:
    def test_every_modified_key_alone(self, mixed_store):
        clusters = singleton_clusters(mixed_store)
        assert all(c.is_singleton() for c in clusters)
        assert sorted(clusters.keys()) == ["appA/x", "appA/y", "appB/z"]

    def test_key_filter(self, mixed_store):
        clusters = singleton_clusters(mixed_store, key_filter="appB/")
        assert clusters.keys() == ["appB/z"]


class TestRebuildCluster:
    def test_finds_exact_cluster(self, mixed_store):
        clusters = cluster_settings(mixed_store)
        cluster = rebuild_cluster(clusters, frozenset({"appA/x", "appA/y"}))
        assert cluster.keys == {"appA/x", "appA/y"}

    def test_missing_cluster_raises(self, mixed_store):
        clusters = cluster_settings(mixed_store)
        with pytest.raises(LookupError):
            rebuild_cluster(clusters, frozenset({"appA/x", "appB/z"}))

"""Batch group observation ≡ one-at-a-time observation.

:meth:`CorrelationMatrix.observe_groups_batch` vectorises the closed-group
ingest path (bincount key occurrences, unique-coded pair counts) and folds
the batch straight into the compacted baseline.  The contract: it must be
indistinguishable from feeding the same groups through ``update_groups``
and then compacting exactly those groups — same counts, same correlations,
same components, same structure version, same validation errors.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correlation import BATCH_VECTOR_MIN, CorrelationMatrix

_keys = st.sampled_from(["a", "b", "c", "d", "e"])
_groups = st.lists(
    st.frozensets(_keys, min_size=1, max_size=4), min_size=1, max_size=12
)


def _snapshot(matrix):
    return (
        dict(matrix._base_counts),
        dict(matrix._base_common),
        {k: set(v) for k, v in matrix._key_groups.items()},
        {i: frozenset(m) for i, m in matrix._group_members.items()},
        dict(matrix._common),
        matrix._compacted_count,
        matrix._compact_floor,
        matrix.structure_version,
        sorted(map(sorted, matrix.connected_components())),
    )


def _apply_reference(matrix, start, groups):
    dirty = matrix.update_groups(
        added=list(enumerate(groups, start)), removed=[]
    )
    matrix.compact(start + len(groups))
    return dirty


@given(_groups, _groups)
@settings(max_examples=80, deadline=None)
def test_batch_matches_observe_then_compact(prefix, batch):
    """Fallback-size batches: vector path and loop agree from any prefix."""
    left = CorrelationMatrix()
    right = CorrelationMatrix()
    for matrix in (left, right):
        for index, members in enumerate(prefix):
            matrix.observe_group(index, members)
        matrix.compact(len(prefix))
    start = len(prefix)
    dirty_l = left.observe_groups_batch(start, batch)
    dirty_r = _apply_reference(right, start, batch)
    assert dirty_l == dirty_r
    assert _snapshot(left) == _snapshot(right)
    for key in "bcde":
        if key in left._base_counts and "a" in left._base_counts:
            assert left.correlation_of(key, "a") == right.correlation_of(key, "a")


@given(_groups)
@settings(max_examples=30, deadline=None)
def test_vector_sized_batch_matches(batch):
    """Batches above BATCH_VECTOR_MIN keys take the numpy path; same result."""
    pytest.importorskip("numpy")
    batch = batch * (BATCH_VECTOR_MIN // max(1, sum(len(g) for g in batch)) + 1)
    assert sum(len(g) for g in batch) >= BATCH_VECTOR_MIN
    left = CorrelationMatrix()
    right = CorrelationMatrix()
    dirty_l = left.observe_groups_batch(0, batch)
    dirty_r = _apply_reference(right, 0, batch)
    assert dirty_l == dirty_r
    assert _snapshot(left) == _snapshot(right)


@given(_groups)
@settings(max_examples=30, deadline=None)
def test_provisional_group_after_batch_behaves_identically(batch):
    """A provisional trailing group added after a batch retracts cleanly."""
    left = CorrelationMatrix()
    right = CorrelationMatrix()
    left.observe_groups_batch(0, batch)
    _apply_reference(right, 0, batch)
    pending = len(batch)
    for matrix in (left, right):
        matrix.update_groups(added=[(pending, frozenset(["a", "e"]))])
        matrix.update_groups(
            removed=[(pending, frozenset(["a", "e"]))],
            added=[(pending, frozenset(["a", "b", "e"]))],
        )
    assert _snapshot(left) == _snapshot(right)


def test_batch_without_numpy_uses_fallback(monkeypatch):
    import importlib

    correlation_module = importlib.import_module("repro.core.correlation")
    monkeypatch.setattr(correlation_module, "_np", None)
    left = CorrelationMatrix()
    right = CorrelationMatrix()
    groups = [frozenset(["a", "b"]), frozenset(["b", "c"])] * BATCH_VECTOR_MIN
    assert left.observe_groups_batch(0, groups) == _apply_reference(
        right, 0, groups
    )
    assert _snapshot(left) == _snapshot(right)


class TestBatchValidation:
    def test_empty_batch_is_a_no_op(self):
        matrix = CorrelationMatrix()
        assert matrix.observe_groups_batch(0, []) == set()
        assert matrix.structure_version == 0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            CorrelationMatrix().observe_groups_batch(0, [frozenset()])

    def test_start_below_compact_floor_rejected(self):
        matrix = CorrelationMatrix()
        matrix.observe_groups_batch(0, [frozenset(["a"])])
        matrix.compact(1)
        with pytest.raises(ValueError):
            matrix.observe_groups_batch(0, [frozenset(["b"])])

    def test_already_observed_index_rejected(self):
        matrix = CorrelationMatrix()
        matrix.update_groups(added=[(0, frozenset(["a"]))])
        with pytest.raises(ValueError):
            matrix.observe_groups_batch(0, [frozenset(["b"])])

    def test_view_blocks_batch_mutation(self):
        from repro.core.correlation import CorrelationMatrixView

        view = CorrelationMatrixView(CorrelationMatrix())
        with pytest.raises(TypeError):
            view.observe_groups_batch(0, [frozenset(["a"])])

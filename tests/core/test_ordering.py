"""Incremental cluster-order maintenance ≡ a full re-sort.

The contracts under test:

- :class:`~repro.core.ordering.SortedKeySets` keeps exactly the order a
  wholesale ``sorted(key_sets, key=order_key)`` produces through any
  add/remove sequence;
- after any prefix of any event stream, every engine's incrementally
  maintained cluster order — and the pipeline's merged order — equal the
  rebuilt reference over its component caches;
- the per-update deltas (``last_order_delta``) replay the previous list
  into the current one.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.incremental import IncrementalPipeline
from repro.core.ordering import SortedKeySets, diff_sorted, order_key
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.store import DELETED, TTKV


def _sorted_stream(events):
    return [e for _, e in sorted(enumerate(events), key=lambda p: (p[1][0], p[0]))]


def _reference(key_sets):
    return sorted(key_sets, key=order_key)


def _engine_reference(engine):
    return _reference(
        key_set
        for clusters in engine._component_cache.values()
        for key_set in clusters
    )


class TestSortedKeySets:
    def test_initial_order_matches_a_sort(self):
        sets = [frozenset({"b"}), frozenset({"a", "c"}), frozenset({"a"})]
        container = SortedKeySets(sets)
        assert container.as_key_sets() == _reference(sets)

    def test_add_remove_random_sequences(self):
        rng = random.Random(20260729)
        for _ in range(50):
            live: set[frozenset[str]] = set()
            container = SortedKeySets()
            for _ in range(60):
                if live and rng.random() < 0.4:
                    victim = rng.choice(sorted(live, key=order_key))
                    live.discard(victim)
                    container.remove(victim)
                else:
                    fresh = frozenset(
                        f"k{rng.randint(0, 99):02d}"
                        for _ in range(rng.randint(1, 4))
                    )
                    if fresh in live:
                        continue
                    live.add(fresh)
                    container.add(fresh)
                assert container.as_key_sets() == _reference(live)

    def test_remove_missing_raises(self):
        container = SortedKeySets([frozenset({"a"})])
        with pytest.raises(KeyError):
            container.remove(frozenset({"b"}))

    def test_diff_sorted_replays_old_into_new(self):
        rng = random.Random(5)
        for _ in range(60):
            universe = [
                frozenset(
                    f"k{rng.randint(0, 30):02d}" for _ in range(rng.randint(1, 3))
                )
                for _ in range(20)
            ]
            old = _reference({s for s in universe if rng.random() < 0.5})
            new = _reference({s for s in universe if rng.random() < 0.5})
            removed, added = diff_sorted(old, new)
            replay = set(old) - set(removed) | set(added)
            assert _reference(replay) == new
            assert not set(removed) & set(added)


_events = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=2000, allow_nan=False),
        st.sampled_from(
            ["a/k0", "a/k1", "a/k2", "b/k0", "b/k1", "c/k0", "c/k1"]
        ),
        st.one_of(st.integers(min_value=0, max_value=9), st.just(DELETED)),
    ),
    min_size=1,
    max_size=50,
)


@given(_events, st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_incremental_order_equals_rebuilt_order(events, rng):
    stream = _sorted_stream(events)
    live = TTKV()
    pipeline = ShardedPipeline(live, shard_prefixes=("a/", "b/"))
    positions = sorted(rng.sample(range(len(stream) + 1), min(5, len(stream) + 1)))
    if len(stream) not in positions:
        positions.append(len(stream))
    consumed = 0
    previous_merged: list = []
    for position in positions:
        live.record_events(stream[consumed:position])
        consumed = position
        merged = pipeline.update()
        for shard_id in pipeline.shard_ids:
            engine = pipeline._engines[shard_id]
            assert engine.cluster_key_sets == _engine_reference(engine)
        combined = _reference(
            key_set
            for shard_id in pipeline.shard_ids
            for key_set in pipeline._engines[shard_id].cluster_key_sets
        )
        merged_sets = [cluster.keys for cluster in merged]
        assert merged_sets == combined
        # deltas replay the previous merged list into the current one;
        # only shards that ran this update carry fresh deltas
        deltas_removed: set = set()
        deltas_added: set = set()
        for shard_id in pipeline.last_stats.shard_timings:
            removed, added = pipeline._engines[shard_id].last_order_delta
            deltas_removed.update(removed)
            deltas_added.update(added)
        replayed = (set(previous_merged) - deltas_removed) | deltas_added
        assert _reference(replayed) == merged_sets
        previous_merged = merged_sets


@given(_events, st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_merged_cluster_set_still_equals_batch(events, rng):
    stream = _sorted_stream(events)
    live = TTKV()
    pipeline = IncrementalPipeline(live)
    positions = sorted(rng.sample(range(len(stream) + 1), min(4, len(stream) + 1)))
    if len(stream) not in positions:
        positions.append(len(stream))
    consumed = 0
    for position in positions:
        live.record_events(stream[consumed:position])
        consumed = position
        merged = pipeline.update()
        batch = cluster_settings(live)
        assert [c.sorted_keys() for c in merged] == [
            c.sorted_keys() for c in batch
        ]

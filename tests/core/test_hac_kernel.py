"""Numpy HAC kernel ≡ pure-Python reference ≡ batch, bit for bit.

The contracts under test:

- every agglomeration entry point produces *identical merge lists* under
  ``kernel="numpy"`` and ``kernel="python"`` — same pairs, same order,
  same recorded distances — including under distance ties and from
  seeded (multi-key) partitions;
- pipelines running the numpy kernel produce clusters byte-identical to
  Python-kernel pipelines and to the batch ``cluster_settings``
  reference, for any prefix of any event stream (hypothesis + a sweep
  over every workload profile);
- both kernels agree with SciPy's ``linkage`` on dense tie-free random
  matrices;
- the dense distance-block cache refreshes only dirty rows and survives
  component growth/bridging; a retraction drops it;
- without numpy the guarded import leaves ``kernel="auto"`` on the
  Python path and makes ``kernel="numpy"`` fail with a clear error.
"""

from __future__ import annotations

import dataclasses
import math
import random

import pytest

np = pytest.importorskip(
    "numpy", reason="the kernel suite compares against the numpy kernel",
    exc_type=ImportError,
)
scipy = pytest.importorskip(
    "scipy", reason="the kernel suite cross-checks against SciPy",
    exc_type=ImportError,
)
from hypothesis import given, settings, strategies as st
from scipy.cluster.hierarchy import linkage as scipy_linkage
from scipy.spatial.distance import squareform

import repro.core.hac_kernel as hk
from repro.core.clustering import (
    agglomerate_clusters,
    agglomerate_component,
    hac,
    seed_distances,
)
from repro.core.correlation import CorrelationMatrix
from repro.core.dendro_repair import build_dendrogram, splice_dendrogram, surviving_clusters
from repro.core.hac_kernel import (
    KERNEL_AUTO,
    KERNEL_NAMES,
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    KERNEL_SIZE_THRESHOLD,
    check_kernel,
    numpy_available,
    resolve_kernel,
)
from repro.core.incremental import IncrementalPipeline
from repro.core.pipeline import cluster_settings
from repro.ttkv.store import DELETED, TTKV
from repro.workload.machines import PROFILES
from repro.workload.tracegen import generate_trace


def _sorted_stream(events):
    return [e for _, e in sorted(enumerate(events), key=lambda p: (p[1][0], p[0]))]


def _key_sets(cluster_set):
    return [tuple(c.sorted_keys()) for c in cluster_set]


def _random_matrix(rng, nkeys, groups, width) -> CorrelationMatrix:
    keys = [f"k{i:03d}" for i in range(nkeys)]
    matrix = CorrelationMatrix()
    for gid in range(groups):
        matrix.observe_group(gid, rng.sample(keys, rng.randint(1, min(width, nkeys))))
    return matrix


# -- kernel selection ---------------------------------------------------------


class TestKernelSelection:
    def test_names_and_validation(self):
        assert set(KERNEL_NAMES) == {"auto", "numpy", "python"}
        for name in KERNEL_NAMES:
            assert check_kernel(name) == name
        with pytest.raises(ValueError, match="unknown kernel"):
            check_kernel("fortran")

    def test_auto_respects_the_size_threshold(self):
        small = KERNEL_SIZE_THRESHOLD - 1
        large = KERNEL_SIZE_THRESHOLD
        assert resolve_kernel(KERNEL_AUTO, "complete", small) == KERNEL_PYTHON
        assert resolve_kernel(KERNEL_AUTO, "complete", large) == KERNEL_NUMPY
        assert resolve_kernel(KERNEL_NUMPY, "complete", small) == KERNEL_NUMPY
        assert resolve_kernel(KERNEL_PYTHON, "complete", large) == KERNEL_PYTHON

    def test_average_linkage_always_resolves_to_python(self):
        # Lance–Williams average does float arithmetic along the merge
        # path; the kernel refuses it to keep the bit-identical contract.
        assert resolve_kernel(KERNEL_NUMPY, "average", 10_000) == KERNEL_PYTHON
        assert resolve_kernel(KERNEL_AUTO, "average", 10_000) == KERNEL_PYTHON

    def test_numpy_is_available_in_the_test_environment(self):
        assert numpy_available()


# -- merge-list equality ------------------------------------------------------


class TestMergeEquality:
    @pytest.mark.parametrize("linkage", ["complete", "single"])
    def test_randomised_components_match_bit_for_bit(self, linkage):
        rng = random.Random(20260729)
        for _ in range(120):
            matrix = _random_matrix(
                rng, rng.randint(2, 30), rng.randint(1, 14), 6
            )
            for component in matrix.connected_components():
                if len(component) < 2:
                    continue
                py = agglomerate_component(
                    matrix, set(component), linkage, kernel=KERNEL_PYTHON
                )
                npk = agglomerate_component(
                    matrix, set(component), linkage, kernel=KERNEL_NUMPY
                )
                assert py == npk

    @pytest.mark.parametrize("linkage", ["complete", "single"])
    def test_tie_heavy_components_match(self, linkage):
        # Few groups over few keys: distances collide constantly, so the
        # (distance, id, id) tie-break order is exercised hard.
        rng = random.Random(7)
        for _ in range(150):
            matrix = _random_matrix(rng, rng.randint(2, 8), rng.randint(1, 5), 4)
            assert hac(matrix, linkage, kernel=KERNEL_PYTHON).merges == hac(
                matrix, linkage, kernel=KERNEL_NUMPY
            ).merges

    @pytest.mark.parametrize("linkage", ["complete", "single"])
    def test_seeded_partitions_match(self, linkage):
        rng = random.Random(11)
        for _ in range(120):
            matrix = _random_matrix(
                rng, rng.randint(3, 24), rng.randint(2, 10), 6
            )
            for component in matrix.connected_components():
                if len(component) < 3:
                    continue
                component = frozenset(component)
                dendrogram = build_dendrogram(matrix, component, linkage)
                if not dendrogram.merges:
                    continue
                cut = rng.randint(0, len(dendrogram.merges))
                seeds = surviving_clusters(component, dendrogram.merges[:cut])
                assert agglomerate_clusters(
                    matrix, seeds, linkage, kernel=KERNEL_PYTHON
                ) == agglomerate_clusters(
                    matrix, seeds, linkage, kernel=KERNEL_NUMPY
                )

    def test_seed_matrix_equals_the_python_sweep(self):
        rng = random.Random(3)
        for _ in range(60):
            matrix = _random_matrix(rng, rng.randint(3, 20), rng.randint(2, 9), 5)
            for linkage in ("complete", "single"):
                for component in matrix.connected_components():
                    if len(component) < 3:
                        continue
                    component = frozenset(component)
                    dendrogram = build_dendrogram(matrix, component, linkage)
                    cut = rng.randint(0, len(dendrogram.merges))
                    seeds = surviving_clusters(component, dendrogram.merges[:cut])
                    if len(seeds) < 2:
                        continue
                    reference = seed_distances(matrix, seeds, linkage)
                    block = matrix.component_distance_block(component)
                    square = hk.seed_matrix(block, seeds, linkage)
                    for a in range(len(seeds)):
                        for b in range(a + 1, len(seeds)):
                            expected = reference.get(
                                frozenset((a, b)), math.inf
                            )
                            assert square[a, b] == expected
                            assert square[b, a] == expected


# -- pipelines ≡ batch across both kernels ------------------------------------


def assert_kernel_equivalence(events, rng, cuts=4, **params):
    """Feed identical chunks to a numpy- and a Python-kernel pipeline."""
    stream = _sorted_stream(events)
    live = TTKV()
    fast = IncrementalPipeline(live, kernel=KERNEL_NUMPY, **params)
    reference = IncrementalPipeline(live, kernel=KERNEL_PYTHON, **params)
    positions = sorted(rng.sample(range(len(stream) + 1), min(cuts, len(stream) + 1)))
    if len(stream) not in positions:
        positions.append(len(stream))
    consumed = 0
    for position in positions:
        live.record_events(stream[consumed:position])
        consumed = position
        fast_sets = _key_sets(fast.update())
        reference_sets = _key_sets(reference.update())
        assert fast_sets == reference_sets, (
            f"kernels diverged at prefix {position}/{len(stream)} with {params}"
        )
        batch = cluster_settings(live, **params)
        assert fast_sets == _key_sets(batch), (
            f"numpy kernel diverged from batch at prefix {position}/{len(stream)}"
        )


_timestamps = st.floats(min_value=0, max_value=2000, allow_nan=False)

_mixed_events = st.lists(
    st.tuples(
        _timestamps,
        st.sampled_from(["k0", "k1", "k2", "k3", "k4", "k5"]),
        st.one_of(st.integers(min_value=0, max_value=9), st.just(DELETED)),
    ),
    min_size=1,
    max_size=50,
)

# Coarse integer timestamps force equal-distance ties — the regime where
# the kernel's argmin tie-break must coincide with the reference heap.
_tie_heavy_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30).map(float),
        st.sampled_from(["k0", "k1", "k2", "k3"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=40,
)


@given(_mixed_events, st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_kernel_equals_python_equals_batch(events, rng):
    assert_kernel_equivalence(events, rng)


@given(_tie_heavy_events, st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_kernel_equivalence_under_distance_ties(events, rng):
    assert_kernel_equivalence(events, rng)


@given(
    _mixed_events,
    st.randoms(use_true_random=False),
    st.sampled_from(["complete", "single", "average"]),
    st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=30, deadline=None)
def test_kernel_equivalence_across_linkages_and_thresholds(
    events, rng, linkage, threshold
):
    assert_kernel_equivalence(
        events, rng, linkage=linkage, correlation_threshold=threshold
    )


def _scaled(profile):
    """A fast, small variant of a Table I machine profile."""
    return dataclasses.replace(
        profile,
        days=2,
        noise_keys=min(profile.noise_keys, 25),
        noise_writes_per_day=min(profile.noise_writes_per_day, 60),
        reads_per_day=min(profile.reads_per_day, 100),
    )


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
def test_kernel_equivalence_on_generated_profile_traces(profile):
    trace = generate_trace(_scaled(profile))
    events = trace.ttkv.write_events()
    assert events, f"profile {profile.name} generated no modifications"
    rng = random.Random(profile.seed)
    assert_kernel_equivalence(events, rng, cuts=8)


# -- SciPy cross-check --------------------------------------------------------


@pytest.mark.parametrize("kernel", [KERNEL_PYTHON, KERNEL_NUMPY])
@pytest.mark.parametrize(
    "our_linkage,scipy_method", [("complete", "complete"), ("single", "single")]
)
def test_matches_scipy_on_dense_random_matrices(kernel, our_linkage, scipy_method):
    """Both kernels agree with SciPy's linkage on tie-free dense inputs.

    Distances are made pairwise-distinct by construction so every
    implementation's tie-break is irrelevant and the merge distance
    sequences must coincide exactly.
    """
    rng = random.Random(20260729)
    for _ in range(20):
        nkeys = rng.randint(4, 16)
        keys = [f"k{i:02d}" for i in range(nkeys)]
        # one shared group connects everything; per-key extra groups make
        # the pairwise correlations (hence distances) distinct
        key_groups: dict[str, set[int]] = {key: {0} for key in keys}
        next_group = 1
        for i, key in enumerate(keys):
            for _ in range(i + rng.randint(0, 2)):
                key_groups[key].add(next_group)
                next_group += 1
        matrix = CorrelationMatrix(key_groups)
        dist = np.array(
            [
                [0.0 if a == b else matrix.distance_of(a, b) for b in keys]
                for a in keys
            ]
        )
        finite = squareform(dist, checks=False)
        if len(set(finite)) != len(finite) or not np.isfinite(finite).all():
            continue  # tie or disconnection: SciPy order is not comparable
        ours = hac(matrix, our_linkage, kernel=kernel)
        tree = scipy_linkage(finite, method=scipy_method)
        assert len(ours.merges) == len(tree)
        for merge, row in zip(ours.merges, tree):
            assert merge.distance == pytest.approx(row[2], rel=1e-12)


# -- distance-block cache -----------------------------------------------------


class TestDistanceBlockCache:
    def test_block_layout_and_values(self):
        matrix = CorrelationMatrix({"a": {0, 1}, "b": {0, 1}, "c": {1, 2}})
        block = matrix.component_distance_block(frozenset("abc"))
        assert block.keys == ("a", "b", "c")
        assert block.square.shape == (3, 3)
        assert math.isinf(block.square[0, 0])
        assert block.square[0, 1] == matrix.distance_of("a", "b")
        assert block.square[1, 2] == matrix.distance_of("b", "c")
        assert block.square[2, 0] == matrix.distance_of("a", "c")

    def test_clean_component_returns_the_cached_array(self):
        matrix = CorrelationMatrix({"a": {0}, "b": {0}})
        first = matrix.component_distance_block(frozenset("ab"))
        again = matrix.component_distance_block(frozenset("ab"))
        assert again is first

    def test_dirty_rows_refresh_in_place(self):
        matrix = CorrelationMatrix({"a": {0, 1}, "b": {0, 1}, "c": {1}})
        component = frozenset("abc")
        matrix.component_distance_block(component)
        matrix.observe_group(9, ["c"])  # only c's group count moves
        block = matrix.component_distance_block(component)
        assert block.square[2, 0] == matrix.distance_of("a", "c")
        assert block.square[0, 1] == matrix.distance_of("a", "b")

    def test_bridged_components_merge_their_blocks(self):
        matrix = CorrelationMatrix(
            {"a": {0, 1}, "b": {0, 1}, "x": {5, 6}, "y": {5, 6}}
        )
        matrix.component_distance_block(frozenset("ab"))
        matrix.component_distance_block(frozenset("xy"))
        matrix.observe_group(9, ["b", "x"])  # bridge
        merged = frozenset("abxy")
        block = matrix.component_distance_block(merged)
        assert block.keys == ("a", "b", "x", "y")
        for pair in (("a", "b"), ("b", "x"), ("x", "y"), ("a", "y")):
            expected = matrix.distance_of(*pair)
            at = (block.index[pair[0]], block.index[pair[1]])
            assert block.square[at] == expected

    def test_lossless_retraction_refreshes_in_place(self):
        # retracting group 1 keeps every edge alive (group 0 still covers
        # all pairs): no structural loss, so the cached array is kept and
        # the dirty rows are refreshed in place
        matrix = CorrelationMatrix()
        matrix.observe_group(0, ["a", "b", "c"])
        matrix.observe_group(1, ["a", "b"])
        first = matrix.component_distance_block(frozenset("abc"))
        matrix.retract_group(1, ["a", "b"])
        block = matrix.component_distance_block(frozenset("abc"))
        assert block is first
        assert block.square[0, 1] == matrix.distance_of("a", "b")
        assert block.square[0, 2] == matrix.distance_of("a", "c")

    def test_lossy_retraction_clears_the_cache(self):
        # retracting group 1 removes the (a, c)/(b, c) edges and key c
        # itself: a structural loss drops every cached block
        matrix = CorrelationMatrix()
        matrix.observe_group(0, ["a", "b"])
        matrix.observe_group(1, ["a", "b", "c"])
        first = matrix.component_distance_block(frozenset("abc"))
        matrix.retract_group(1, ["a", "b", "c"])
        assert "c" not in matrix
        block = matrix.component_distance_block(frozenset("ab"))
        assert block is not first
        assert block.keys == ("a", "b")
        assert block.square[0, 1] == matrix.distance_of("a", "b")

    def test_growth_equivalence_randomised(self):
        rng = random.Random(99)
        for _ in range(60):
            matrix = _random_matrix(rng, rng.randint(3, 15), rng.randint(2, 8), 5)
            for component in matrix.connected_components():
                if len(component) > 1:
                    matrix.component_distance_block(frozenset(component))
            gid = 1000
            for _ in range(rng.randint(1, 4)):
                pool = matrix.keys + ["n0", "n1"]
                matrix.observe_group(gid, rng.sample(pool, rng.randint(1, 5)))
                gid += 1
            fresh = CorrelationMatrix()
            for index, members in sorted(matrix.observed_groups().items()):
                fresh.observe_group(index, sorted(members))
            for component in matrix.connected_components():
                if len(component) < 2:
                    continue
                cached = matrix.component_distance_block(frozenset(component))
                rebuilt = fresh.component_distance_block(frozenset(component))
                assert cached.keys == rebuilt.keys
                assert np.array_equal(
                    cached.square, rebuilt.square, equal_nan=False
                )


# -- splice seed-distance reuse ----------------------------------------------


class TestSeedDistanceReuse:
    def _hot_matrix(self, blocks=6, rounds=8):
        matrix = CorrelationMatrix()
        gid = 0
        keys = [[f"b{b}k{i}" for i in range(4)] for b in range(blocks)]
        churn = ["z0", "z1"]
        for _ in range(rounds):
            for b in range(blocks):
                matrix.observe_group(gid, keys[b])
                gid += 1
            matrix.observe_group(gid, [churn[0], keys[0][0]])
            gid += 1
            matrix.observe_group(gid, [churn[1], keys[1][0]])
            gid += 1
            for name in churn:
                matrix.observe_group(gid, [name])
                gid += 1
        return matrix, churn, gid

    def test_repeat_repairs_reuse_cached_rows_and_stay_exact(self):
        matrix, churn, gid = self._hot_matrix()
        component = frozenset(matrix.keys)
        cached = build_dendrogram(matrix, component, "complete")
        seed_caches = []
        for step in range(4):
            matrix.observe_group(gid, churn)
            gid += 1
            outcome = splice_dendrogram(
                matrix,
                component,
                set(churn),
                [cached],
                "complete",
                kernel=KERNEL_NUMPY,
                seed_caches=seed_caches,
            )
            assert outcome.spliced
            assert outcome.kernel == KERNEL_NUMPY
            assert outcome.seed_cache is not None
            reference = build_dendrogram(matrix, component, "complete")
            assert outcome.dendrogram.merges == reference.merges
            cached = outcome.dendrogram
            seed_caches = [outcome.seed_cache]

    def test_cached_rows_match_a_fresh_reduction(self):
        matrix, churn, gid = self._hot_matrix()
        component = frozenset(matrix.keys)
        cached = build_dendrogram(matrix, component, "complete")
        matrix.observe_group(gid, churn)
        first = splice_dendrogram(
            matrix, component, set(churn), [cached], "complete",
            kernel=KERNEL_NUMPY,
        )
        matrix.observe_group(gid + 1, churn)
        with_cache = splice_dendrogram(
            matrix, component, set(churn), [first.dendrogram], "complete",
            kernel=KERNEL_NUMPY, seed_caches=[first.seed_cache],
        )
        without_cache = splice_dendrogram(
            matrix, component, set(churn), [first.dendrogram], "complete",
            kernel=KERNEL_NUMPY,
        )
        assert with_cache.dendrogram.merges == without_cache.dendrogram.merges
        assert np.array_equal(
            with_cache.seed_cache.matrix, without_cache.seed_cache.matrix
        )


# -- engine/pipeline integration ---------------------------------------------


def _hot_component_store(groups: int = 60, keys: int = 60) -> TTKV:
    store = TTKV()
    events = []
    for g in range(groups):
        t = g * 100.0
        for k in range(g % keys, min(g % keys + 6, keys)):
            events.append((t, f"app/k{k:02d}", g))
    store.record_events(events)
    return store


class TestEngineKernelDispatch:
    def test_kernel_counters_surface_in_update_stats(self):
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store, kernel=KERNEL_NUMPY)
        pipeline.update()
        stats = pipeline.last_stats
        assert stats.kernel_used
        assert stats.kernel_components > 0

    def test_python_kernel_reports_no_kernel_components(self):
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store, kernel=KERNEL_PYTHON)
        pipeline.update()
        assert not pipeline.last_stats.kernel_used
        assert pipeline.last_stats.kernel_components == 0

    def test_auto_leaves_small_components_on_python(self):
        store = TTKV()
        store.record_write("a", 1, 10.0)
        store.record_write("b", 1, 10.0)
        pipeline = IncrementalPipeline(store)  # kernel="auto"
        pipeline.update()
        assert not pipeline.last_stats.kernel_used

    def test_retuned_kernel_applies_in_place(self):
        store = _hot_component_store()
        pipeline = IncrementalPipeline(store, kernel=KERNEL_PYTHON)
        before = _key_sets(pipeline.update())
        pipeline.kernel = KERNEL_NUMPY
        store.record_write("app/k00", "new", 60 * 100.0 + 1500)
        after = pipeline.update()
        assert not pipeline.last_stats.rebuilt  # no session restart
        assert pipeline.last_stats.kernel_used
        assert _key_sets(after) == _key_sets(cluster_settings(store))
        assert before

    def test_kernel_survives_the_checkpoint_and_can_be_overridden(self):
        from repro.core.sharded import ShardedPipeline

        store = _hot_component_store()
        pipeline = IncrementalPipeline(store, kernel=KERNEL_NUMPY)
        pipeline.update()
        state = pipeline.to_state()
        assert state["params"]["kernel"] == KERNEL_NUMPY
        resumed = ShardedPipeline.from_state(store, state)
        assert resumed.kernel == KERNEL_NUMPY
        overridden = ShardedPipeline.from_state(store, state, kernel=KERNEL_PYTHON)
        assert overridden.kernel == KERNEL_PYTHON
        # pre-kernel checkpoints default to auto
        del state["params"]["kernel"]
        legacy = ShardedPipeline.from_state(store, state)
        assert legacy.kernel == KERNEL_AUTO

    def test_invalid_kernel_is_rejected(self):
        store = TTKV()
        with pytest.raises(ValueError, match="unknown kernel"):
            IncrementalPipeline(store, kernel="magic")


# -- the no-numpy fallback ----------------------------------------------------


class TestNumpyAbsent:
    """Behaviour with the soft dependency missing (simulated)."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(hk, "_np", None)

    def test_auto_falls_back_to_python(self, no_numpy):
        assert not numpy_available()
        assert resolve_kernel(KERNEL_AUTO, "complete", 10_000) == KERNEL_PYTHON

    def test_explicit_numpy_raises_a_clear_error(self, no_numpy):
        with pytest.raises(RuntimeError, match="numpy is not installed"):
            check_kernel(KERNEL_NUMPY)
        store = TTKV()
        with pytest.raises(RuntimeError, match="numpy is not installed"):
            IncrementalPipeline(store, kernel=KERNEL_NUMPY)

    def test_auto_pipeline_still_clusters(self, no_numpy):
        store = _hot_component_store(groups=20, keys=20)
        pipeline = IncrementalPipeline(store)  # kernel="auto"
        clusters = pipeline.update()
        assert _key_sets(clusters) == _key_sets(cluster_settings(store))
        assert not pipeline.last_stats.kernel_used

    def test_require_numpy_raises(self, no_numpy):
        with pytest.raises(RuntimeError, match="numpy, which is not installed"):
            hk.require_numpy()

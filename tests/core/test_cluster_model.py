"""Tests for clusters, cluster versions and the ClusterSet."""

import pytest

from repro.core.cluster_model import (
    Cluster,
    ClusterSet,
    cluster_last_modified,
    cluster_modification_count,
    cluster_versions,
)
from repro.exceptions import OcastaError
from repro.ttkv.store import DELETED, MISSING, TTKV


def make_cluster(*keys, cluster_id=0):
    return Cluster(cluster_id=cluster_id, keys=frozenset(keys))


class TestCluster:
    def test_empty_rejected(self):
        with pytest.raises(OcastaError):
            make_cluster()

    def test_len_contains(self):
        cluster = make_cluster("a", "b")
        assert len(cluster) == 2
        assert "a" in cluster
        assert "z" not in cluster

    def test_singleton(self):
        assert make_cluster("a").is_singleton()
        assert not make_cluster("a", "b").is_singleton()

    def test_sorted_keys(self):
        assert make_cluster("b", "a").sorted_keys() == ["a", "b"]


@pytest.fixture
def versioned_store() -> TTKV:
    store = TTKV()
    store.record_write("x", 1, 10.0)
    store.record_write("y", "a", 10.0)
    store.record_write("x", 2, 50.0)
    store.record_delete("y", 90.0)
    return store


class TestClusterVersions:
    def test_versions_chronological(self, versioned_store):
        versions = cluster_versions(versioned_store, make_cluster("x", "y"))
        assert [v.timestamp for v in versions] == [10.0, 50.0, 90.0]

    def test_versions_capture_joint_state(self, versioned_store):
        versions = cluster_versions(versioned_store, make_cluster("x", "y"))
        assert versions[0].values == {"x": 1, "y": "a"}
        assert versions[1].values == {"x": 2, "y": "a"}
        assert versions[2].values == {"x": 2, "y": DELETED}

    def test_single_key_cluster(self, versioned_store):
        versions = cluster_versions(versioned_store, make_cluster("x"))
        assert [v.values["x"] for v in versions] == [1, 2]

    def test_time_bounds(self, versioned_store):
        versions = cluster_versions(
            versioned_store, make_cluster("x", "y"), start=40.0, end=60.0
        )
        assert [v.timestamp for v in versions] == [10.0, 50.0]
        # 10.0 is the pre-start snapshot (state as of the start bound)

    def test_pre_start_snapshot_included(self, versioned_store):
        versions = cluster_versions(
            versioned_store, make_cluster("x", "y"), start=80.0
        )
        # one snapshot of the pre-bound state (t=50) plus the delete at 90
        assert [v.timestamp for v in versions] == [50.0, 90.0]
        assert versions[0].values == {"x": 2, "y": "a"}

    def test_consecutive_identical_states_coalesced(self):
        store = TTKV()
        store.record_write("x", 1, 10.0)
        store.record_write("x", 1, 20.0)  # same value rewritten
        versions = cluster_versions(store, make_cluster("x"))
        assert len(versions) == 1

    def test_untracked_key_skipped(self, versioned_store):
        versions = cluster_versions(versioned_store, make_cluster("x", "ghost"))
        assert all("ghost" not in v.values for v in versions)

    def test_all_untracked_returns_empty(self, versioned_store):
        assert cluster_versions(versioned_store, make_cluster("ghost")) == []

    def test_missing_sentinel_before_birth(self):
        store = TTKV()
        store.record_write("x", 1, 10.0)
        store.record_write("y", 2, 50.0)
        versions = cluster_versions(store, make_cluster("x", "y"))
        assert versions[0].values == {"x": 1, "y": MISSING}

    def test_rollback_plan_from_version(self, versioned_store):
        versions = cluster_versions(versioned_store, make_cluster("x", "y"))
        plan = versions[0].rollback_plan()
        assert plan.assignments == {"x": 1, "y": "a"}


class TestModificationCounts:
    def test_counts_distinct_timestamps(self, versioned_store):
        cluster = make_cluster("x", "y")
        # t=10 (both), t=50 (x), t=90 (y delete) -> 3 cluster modifications
        assert cluster_modification_count(versioned_store, cluster) == 3

    def test_co_write_counts_once(self):
        store = TTKV()
        store.record_write("a", 1, 5.0)
        store.record_write("b", 2, 5.0)
        assert cluster_modification_count(store, make_cluster("a", "b")) == 1

    def test_last_modified(self, versioned_store):
        assert cluster_last_modified(versioned_store, make_cluster("x", "y")) == 90.0

    def test_untracked_cluster_count_zero(self, versioned_store):
        assert cluster_modification_count(versioned_store, make_cluster("ghost")) == 0


class TestClusterSet:
    def _set(self):
        return ClusterSet.from_key_sets(
            [frozenset({"a", "b"}), frozenset({"c"})],
            window=1.0,
            correlation_threshold=2.0,
        )

    def test_cluster_of(self):
        cluster_set = self._set()
        assert cluster_set.cluster_of("a") is cluster_set.cluster_of("b")
        assert cluster_set.cluster_of("c").is_singleton()

    def test_cluster_of_unknown_raises(self):
        with pytest.raises(OcastaError):
            self._set().cluster_of("ghost")

    def test_duplicate_key_rejected(self):
        with pytest.raises(OcastaError):
            ClusterSet.from_key_sets(
                [frozenset({"a"}), frozenset({"a", "b"})],
                window=1.0,
                correlation_threshold=2.0,
            )

    def test_multi_and_singletons(self):
        cluster_set = self._set()
        assert len(cluster_set.multi_clusters()) == 1
        assert len(cluster_set.singletons()) == 1

    def test_average_size_excludes_singletons_by_default(self):
        cluster_set = self._set()
        assert cluster_set.average_size() == 2.0
        assert cluster_set.average_size(include_singletons=True) == 1.5

    def test_average_size_no_multi(self):
        cluster_set = ClusterSet.from_key_sets(
            [frozenset({"a"})], window=1.0, correlation_threshold=2.0
        )
        assert cluster_set.average_size() == 0.0

    def test_iteration_and_len(self):
        cluster_set = self._set()
        assert len(cluster_set) == 2
        assert len(list(cluster_set)) == 2

    def test_membership(self):
        cluster_set = self._set()
        assert "a" in cluster_set
        assert "ghost" not in cluster_set

"""Columnar pipeline ≡ list pipeline ≡ batch, end to end.

The journal backend is an acceleration choice, never a semantic one: for
any prefix of any modification stream — including out-of-order arrivals
that force reorder absorption or rebuilds — a pipeline running on columnar
journal segments produces exactly the clusters of the list-journal pipeline
and of the batch :func:`~repro.core.pipeline.cluster_settings`.  Checkpoints
migrate forward (v2 states carry no backend and resume under ``auto``), and
the interned batch payloads survive the process-executor hand-off.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.executors import make_executor
from repro.core.pipeline import cluster_settings
from repro.core.sharded import STATE_VERSION, ShardedPipeline
from repro.core.windowing import (
    FEED_VECTOR_MIN,
    GROUPING_BUCKETS,
    GROUPING_SLIDING,
    StreamingGroupExtractor,
)
from repro.ttkv.columnar import columnar_available
from repro.ttkv.store import DELETED, TTKV
from repro.workload.machines import PROFILES
from repro.workload.tracegen import generate_trace

needs_numpy = pytest.mark.skipif(
    not columnar_available(), reason="columnar backend needs numpy"
)

BACKENDS = ("list", "columnar") if columnar_available() else ("list",)


def _key_sets(cluster_set):
    return [tuple(c.sorted_keys()) for c in cluster_set]


def _assert_backend_equivalence(events, rng, cuts=4, shard_prefixes=(), **params):
    """Feed the same chunks to one pipeline per backend; compare at each cut."""
    stores = {b: TTKV(journal_backend=b) for b in BACKENDS}
    pipelines = {
        b: ShardedPipeline(
            stores[b],
            shard_prefixes=shard_prefixes,
            catch_all=True,
            journal_backend=b,
            **params,
        )
        for b in BACKENDS
    }
    positions = sorted(rng.sample(range(len(events) + 1), min(cuts, len(events) + 1)))
    if len(events) not in positions:
        positions.append(len(events))
    consumed = 0
    for position in positions:
        chunk = events[consumed:position]
        consumed = position
        results = {}
        for backend, store in stores.items():
            store.record_events(chunk)
            results[backend] = _key_sets(pipelines[backend].update())
        for backend, result in results.items():
            assert result == results["list"], (
                f"{backend} diverged from the list backend at prefix {position}"
            )
        if not shard_prefixes:
            # sharded sessions cluster per shard; only the unsharded
            # (catch-all) session is comparable to the global batch
            batch = _key_sets(cluster_settings(stores["list"], **params))
            assert results["list"] == batch, f"divergence at prefix {position}"
    for pipeline in pipelines.values():
        pipeline.close()


# -- hypothesis suites --------------------------------------------------------

_timestamps = st.floats(min_value=0, max_value=2000, allow_nan=False)

_mixed_events = st.lists(
    st.tuples(
        _timestamps,
        st.sampled_from(["app/k0", "app/k1", "sys/k2", "sys/k3"]),
        st.one_of(st.integers(min_value=0, max_value=9), st.just(DELETED)),
    ),
    min_size=1,
    max_size=50,
)


def _per_key_interleave(events, rng):
    """Per-key time order (as loggers guarantee), global order shuffled.

    This produces streams where later-key events arrive before earlier
    ones — the out-of-order appends that trigger reorder absorption or
    full rebuilds in the journal consumers.
    """
    streams = {}
    for index, (t, key, value) in enumerate(
        sorted(events, key=lambda e: e[0])
    ):
        streams.setdefault(key, []).append((t, key, value))
    out = []
    keys = list(streams)
    while keys:
        key = rng.choice(keys)
        out.append(streams[key].pop(0))
        if not streams[key]:
            keys.remove(key)
    return out


@needs_numpy
@given(_mixed_events, st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_backend_equivalence_ordered_streams(events, rng):
    stream = sorted(events, key=lambda e: e[0])
    _assert_backend_equivalence(stream, rng)


@needs_numpy
@given(_mixed_events, st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_backend_equivalence_out_of_order_streams(events, rng):
    """Reordered arrivals: absorption and rebuilds agree across backends."""
    stream = _per_key_interleave(events, rng)
    _assert_backend_equivalence(stream, rng)


@needs_numpy
@given(
    _mixed_events,
    st.randoms(use_true_random=False),
    st.sampled_from([0.0, 1.0, 30.0]),
)
@settings(max_examples=20, deadline=None)
def test_backend_equivalence_across_windows(events, rng, window):
    stream = sorted(events, key=lambda e: e[0])
    _assert_backend_equivalence(stream, rng, window=window)


@needs_numpy
@given(_mixed_events, st.randoms(use_true_random=False))
@settings(max_examples=15, deadline=None)
def test_backend_equivalence_sharded(events, rng):
    stream = sorted(events, key=lambda e: e[0])
    _assert_backend_equivalence(stream, rng, shard_prefixes=("app/", "sys/"))


# -- generated traces across every workload profile ---------------------------

def _scaled(profile):
    return dataclasses.replace(
        profile,
        days=2,
        noise_keys=min(profile.noise_keys, 25),
        noise_writes_per_day=min(profile.noise_writes_per_day, 60),
        reads_per_day=min(profile.reads_per_day, 100),
    )


@needs_numpy
@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
def test_backend_equivalence_on_generated_profile_traces(profile):
    trace = generate_trace(_scaled(profile))
    events = trace.ttkv.write_events()
    assert events, f"profile {profile.name} generated no modifications"
    _assert_backend_equivalence(events, random.Random(profile.seed), cuts=6)


# -- checkpoint migration -----------------------------------------------------

def _session_state(backend, events):
    store = TTKV(journal_backend=backend)
    pipeline = ShardedPipeline(store, shard_prefixes=(), journal_backend=backend)
    store.record_events(events)
    clusters = _key_sets(pipeline.update())
    state = json.loads(json.dumps(pipeline.to_state()))
    pipeline.close()
    return store, clusters, state


_EVENTS = [
    (10.0, "a/x", 1), (10.2, "a/y", 1),
    (400.0, "a/x", 2), (400.3, "a/y", 2),
    (900.0, "b/z", DELETED),
]


class TestCheckpointMigration:
    def test_v3_round_trip_preserves_backend(self):
        store, clusters, state = _session_state("list", _EVENTS)
        assert state["version"] == STATE_VERSION == 3
        assert state["params"]["journal_backend"] == "list"
        resumed = ShardedPipeline.from_state(store, state)
        assert resumed.journal_backend == "list"
        assert _key_sets(resumed.update()) == clusters
        resumed.close()

    def test_v2_checkpoint_resumes_under_auto(self):
        store, clusters, state = _session_state("list", _EVENTS)
        del state["params"]["journal_backend"]
        state["version"] = 2
        resumed = ShardedPipeline.from_state(store, state)
        assert resumed.journal_backend == "auto"
        assert resumed.to_state()["version"] == 3
        assert _key_sets(resumed.update()) == clusters
        store.record_events([(1200.0, "a/x", 3), (1200.4, "a/y", 3)])
        assert _key_sets(resumed.update()) == _key_sets(cluster_settings(store))
        resumed.close()

    @needs_numpy
    def test_backend_override_on_resume(self):
        store, clusters, state = _session_state("columnar", _EVENTS)
        assert state["params"]["journal_backend"] == "columnar"
        resumed = ShardedPipeline.from_state(
            store, state, journal_backend="list"
        )
        assert resumed.journal_backend == "list"
        assert _key_sets(resumed.update()) == clusters
        resumed.close()

    @needs_numpy
    def test_cross_backend_resume_equivalence(self):
        """A checkpoint from one backend resumes correctly under the other."""
        for write_backend, resume_backend in (
            ("list", "columnar"), ("columnar", "list")
        ):
            _, clusters, state = _session_state(write_backend, _EVENTS)
            # the deployment re-opens its store under the other backend
            store = TTKV(journal_backend=resume_backend)
            store.record_events(_EVENTS)
            resumed = ShardedPipeline.from_state(
                store, state, journal_backend=resume_backend
            )
            assert _key_sets(resumed.update()) == clusters
            resumed.close()


# -- process-executor hand-off ------------------------------------------------

@needs_numpy
def test_columnar_slices_survive_process_handoff():
    """Interned batch payloads cross the process boundary intact."""
    rng = random.Random(11)
    events = sorted(
        (
            (float(rng.randrange(0, 3000)), f"app_{rng.randrange(2)}/k{rng.randrange(5)}",
             rng.choice([0, 1, "on", DELETED]))
            for _ in range(160)
        ),
        key=lambda e: e[0],
    )
    executor = make_executor("process", 2)
    store = TTKV(journal_backend="columnar")
    pipeline = ShardedPipeline(
        store,
        shard_prefixes=("app_0/", "app_1/"),
        executor=executor,
        journal_backend="columnar",
    )
    try:
        for start in range(0, len(events), 40):
            store.record_events(events[start:start + 40])
            result = _key_sets(pipeline.update())
            assert result == _key_sets(cluster_settings(store))
    finally:
        pipeline.close()
        executor.close()


# -- windowing fast path ------------------------------------------------------

@needs_numpy
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=300, allow_nan=False).map(
                lambda t: round(t * 2) / 2
            ),
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=4),
        ),
        min_size=FEED_VECTOR_MIN,
        max_size=FEED_VECTOR_MIN + 60,
    ),
    st.sampled_from([GROUPING_SLIDING, GROUPING_BUCKETS]),
    st.sampled_from([0.0, 0.5, 2.0, 10.0]),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_feed_many_columnar_fast_path_matches_loop(events, grouping, window, pre):
    """Vectorised boundary detection ≡ event-by-event feeding."""
    from repro.ttkv.columnar import ColumnarJournal

    events = sorted(events, key=lambda e: e[0])
    journal = ColumnarJournal(segment_size=16)
    for event in events:
        journal.append(*event)
    fast = StreamingGroupExtractor(window, grouping=grouping)
    slow = StreamingGroupExtractor(window, grouping=grouping)
    for event in events[:pre]:
        fast.feed(event)
        slow.feed(event)
    view = journal.events_from(pre)
    assert len(view) >= FEED_VECTOR_MIN - pre
    closed_fast = fast.feed_many(view)
    closed_slow = [g for g in map(slow.feed, events[pre:]) if g is not None]
    assert closed_fast == closed_slow
    assert fast.pending_events == slow.pending_events
    assert fast.flush() == slow.flush()


@needs_numpy
def test_feed_many_rejects_unsorted_columnar_chunk():
    from repro.ttkv.columnar import ColumnarJournal

    journal = ColumnarJournal()
    for t in range(FEED_VECTOR_MIN + 1):
        journal.append(float(t), "k", 1)
    extractor = StreamingGroupExtractor(1.0)
    extractor.feed((1e6, "z", 1))  # pending group far in the future
    with pytest.raises(ValueError):
        extractor.feed_many(journal.events_from(0))

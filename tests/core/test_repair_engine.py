"""Tests for the substrate-agnostic repair engine."""

import pytest

from repro.common.clock import SimClock
from repro.core.cluster_model import Cluster, ClusterVersion
from repro.core.repair import RepairEngine, RepairOutcome, apply_permanent_fix
from repro.core.search import Candidate


def _candidate(cid, t, values):
    return Candidate(
        cluster=Cluster(cluster_id=cid, keys=frozenset(values)),
        version=ClusterVersion(timestamp=t, values=values),
        cluster_rank=cid,
        version_rank=0,
    )


class _World:
    """A two-setting world whose trial 'renders' the sandboxed config."""

    def __init__(self):
        self.live = {"mode": "broken", "level": 0}

    def execute_trial(self, plan):
        # Sandbox semantics: the rollback applies to a copy of the live
        # state; the live store itself is never touched by a trial.
        state = dict(self.live)
        if plan is not None:
            state.update(plan.assignments)
        return tuple(sorted(state.items()))

    def set(self, key, value):
        self.live[key] = value

    def delete(self, key):
        self.live.pop(key, None)


@pytest.fixture
def world():
    return _World()


def is_fixed(screenshot):
    return dict(screenshot).get("mode") == "good"


class TestRepairEngine:
    def test_finds_fix_and_stops(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed, trial_cost=10.0)
        candidates = [
            _candidate(1, 30.0, {"mode": "broken", "level": 5}),
            _candidate(2, 20.0, {"mode": "good", "level": 3}),
            _candidate(3, 10.0, {"mode": "good", "level": 1}),
        ]
        outcome = engine.run(iter(candidates))
        assert outcome.fixed
        assert outcome.trials_to_fix == 2
        assert outcome.total_trials == 2
        assert outcome.fix_candidate.cluster.cluster_id == 2

    def test_exhaustive_continues_after_fix(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed)
        candidates = [
            _candidate(1, 30.0, {"mode": "good", "level": 3}),
            _candidate(2, 20.0, {"mode": "broken", "level": 9}),
        ]
        outcome = engine.run(iter(candidates), exhaustive=True)
        assert outcome.fixed
        assert outcome.trials_to_fix == 1
        assert outcome.total_trials == 2

    def test_no_fix(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed)
        outcome = engine.run(
            [_candidate(1, 10.0, {"mode": "broken", "level": 2})]
        )
        assert not outcome.fixed
        assert outcome.trials_to_fix is None
        assert outcome.fix_plan is None

    def test_screenshot_dedup_counts_unique(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed)
        same = {"mode": "broken", "level": 5}
        candidates = [
            _candidate(1, 30.0, dict(same)),
            _candidate(2, 20.0, dict(same)),  # identical screenshot
            _candidate(3, 10.0, {"mode": "broken", "level": 6}),
        ]
        outcome = engine.run(iter(candidates), exhaustive=True)
        assert outcome.total_trials == 3
        assert outcome.unique_screenshots == 2

    def test_erroneous_screenshot_discarded(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed)
        # candidate state identical to the erroneous baseline
        candidates = [_candidate(1, 9.0, {"mode": "broken", "level": 0})]
        outcome = engine.run(iter(candidates), exhaustive=True)
        assert outcome.unique_screenshots == 0

    def test_clock_advances_per_trial(self, world):
        clock = SimClock()
        engine = RepairEngine(
            world.execute_trial, is_fixed, clock=clock, trial_cost=7.0
        )
        engine.run(
            [
                _candidate(1, 30.0, {"mode": "broken", "level": 1}),
                _candidate(2, 20.0, {"mode": "broken", "level": 2}),
            ],
            exhaustive=True,
        )
        assert clock.now() == 14.0

    def test_time_to_fix_vs_total_time(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed, trial_cost=10.0)
        candidates = [
            _candidate(1, 30.0, {"mode": "good", "level": 3}),
            _candidate(2, 20.0, {"mode": "broken", "level": 9}),
            _candidate(3, 10.0, {"mode": "broken", "level": 8}),
        ]
        outcome = engine.run(iter(candidates), exhaustive=True)
        assert outcome.time_to_fix == 10.0
        assert outcome.total_time == 30.0

    def test_callable_cost_model(self, world):
        clock = SimClock()
        engine = RepairEngine(
            world.execute_trial,
            is_fixed,
            clock=clock,
            trial_cost=lambda c: float(c.cluster.cluster_id),
        )
        engine.run(
            [
                _candidate(2, 30.0, {"mode": "broken", "level": 1}),
                _candidate(3, 20.0, {"mode": "broken", "level": 2}),
            ],
            exhaustive=True,
        )
        assert clock.now() == 5.0

    def test_negative_cost_rejected(self, world):
        with pytest.raises(ValueError):
            RepairEngine(world.execute_trial, is_fixed, trial_cost=-1.0)


class TestApplyPermanentFix:
    def test_applies_plan_to_store(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed)
        outcome = engine.run(
            [_candidate(1, 30.0, {"mode": "good", "level": 3})]
        )
        apply_permanent_fix(outcome, world)
        assert world.live["mode"] == "good"

    def test_no_fix_raises(self):
        with pytest.raises(ValueError):
            apply_permanent_fix(RepairOutcome(), None)


class TestScreensAtFix:
    def test_exhaustive_gallery_keeps_growing_after_fix(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed)
        candidates = [
            _candidate(1, 30.0, {"mode": "good", "level": 3}),
            _candidate(2, 20.0, {"mode": "broken", "level": 9}),
            _candidate(3, 10.0, {"mode": "broken", "level": 8}),
        ]
        outcome = engine.run(iter(candidates), exhaustive=True)
        # The user examined one screenshot (the fix was the first unique
        # one); the exhaustive walk recorded two more afterwards.
        assert outcome.unique_screenshots == 1
        assert outcome.total_unique_screenshots == 3

    def test_failed_search_reports_everything(self, world):
        engine = RepairEngine(world.execute_trial, is_fixed)
        outcome = engine.run(
            [_candidate(1, 10.0, {"mode": "broken", "level": 2})]
        )
        assert outcome.screens_at_fix is None
        assert outcome.unique_screenshots == outcome.total_unique_screenshots

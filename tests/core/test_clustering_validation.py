"""HAC validation: stale-heap regression and SciPy cross-checks.

The heap-driven agglomeration re-pushes pair entries whenever a merge
updates inter-cluster distances, leaving stale entries (consumed cluster
ids, superseded distances) in the heap.  These tests pin that stale entries
are skipped — a pair must never merge twice — and cross-check the whole
implementation against SciPy's reference linkage on dense random matrices.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.clustering import (
    LINKAGE_AVERAGE,
    LINKAGE_COMPLETE,
    LINKAGE_SINGLE,
    agglomerate_component,
    hac,
)
from repro.core.correlation import correlation_to_distance

_ALL_LINKAGES = (LINKAGE_COMPLETE, LINKAGE_SINGLE, LINKAGE_AVERAGE)


class DenseMatrix:
    """Duck-typed stand-in for CorrelationMatrix with chosen correlations.

    Every pair gets an explicit correlation in (0, 2], so the finite-
    distance graph is complete (one component) and distances can be made
    pairwise-distinct — the regime where HAC output is unique and directly
    comparable to SciPy.
    """

    def __init__(self, correlations: dict[frozenset[str], float]) -> None:
        self._correlations = dict(correlations)
        names: set[str] = set()
        for pair in correlations:
            names |= pair
        self._keys = sorted(names)

    @classmethod
    def random(cls, n: int, seed: int) -> "DenseMatrix":
        rng = random.Random(seed)
        keys = [f"k{i:02d}" for i in range(n)]
        correlations = {}
        for i, key_a in enumerate(keys):
            for key_b in keys[i + 1:]:
                correlations[frozenset((key_a, key_b))] = rng.uniform(0.05, 2.0)
        return cls(correlations)

    @property
    def keys(self) -> list[str]:
        return list(self._keys)

    def correlation_of(self, key_a: str, key_b: str) -> float:
        return self._correlations[frozenset((key_a, key_b))]

    def neighbors(self, key: str) -> set[str]:
        return {k for k in self._keys if k != key}

    def connected_components(self) -> list[set[str]]:
        return [set(self._keys)]

    def distance_array(self) -> list[float]:
        """Condensed distances in SciPy's (i < j, row-major) order."""
        out = []
        for i, key_a in enumerate(self._keys):
            for key_b in self._keys[i + 1:]:
                out.append(correlation_to_distance(self.correlation_of(key_a, key_b)))
        return out


def _assert_valid_forest(component: set[str], merges) -> None:
    """Every merge must consume two *live* clusters exactly once."""
    live = {frozenset((key,)) for key in component}
    for merge in merges:
        assert merge.left in live, f"stale/double merge of {sorted(merge.left)}"
        assert merge.right in live, f"stale/double merge of {sorted(merge.right)}"
        live.discard(merge.left)
        live.discard(merge.right)
        live.add(merge.members)
    covered = sorted(key for cluster in live for key in cluster)
    assert covered == sorted(component)


class TestStaleHeapEntries:
    def test_single_linkage_stale_entry_not_double_merged(self):
        # d(a,b)=0.5, d(a,c)=2.5, d(b,c)=1.25.  Merging {a,b} pushes the
        # updated pair ({a,b}, c) at min(2.5, 1.25) = 1.25, the *same*
        # distance as the stale (b, c) entry still sitting in the heap; the
        # liveness check must skip the stale one.
        matrix = DenseMatrix({
            frozenset(("a", "b")): 2.0,
            frozenset(("a", "c")): 0.4,
            frozenset(("b", "c")): 0.8,
        })
        merges = agglomerate_component(matrix, {"a", "b", "c"}, LINKAGE_SINGLE)
        assert len(merges) == 2
        assert [m.distance for m in merges] == [0.5, 1.25]
        _assert_valid_forest({"a", "b", "c"}, merges)

    def test_complete_linkage_updated_distance_supersedes_stale(self):
        # After {a,b} merge at 0.5, the live ({a,b}, c) distance is
        # max(2.5, 1.25) = 2.5; both stale entries (1.25 and 2.5) for the
        # old ids surface first and must be skipped without merging.
        matrix = DenseMatrix({
            frozenset(("a", "b")): 2.0,
            frozenset(("a", "c")): 0.4,
            frozenset(("b", "c")): 0.8,
        })
        merges = agglomerate_component(matrix, {"a", "b", "c"}, LINKAGE_COMPLETE)
        assert len(merges) == 2
        assert [m.distance for m in merges] == [0.5, 2.5]
        _assert_valid_forest({"a", "b", "c"}, merges)

    @pytest.mark.parametrize("linkage", _ALL_LINKAGES)
    @pytest.mark.parametrize("seed", range(5))
    def test_random_dense_matrices_build_valid_forests(self, linkage, seed):
        matrix = DenseMatrix.random(10, seed=seed)
        component = set(matrix.keys)
        merges = agglomerate_component(matrix, component, linkage)
        assert len(merges) == len(component) - 1
        distances = [m.distance for m in merges]
        assert distances == sorted(distances)
        _assert_valid_forest(component, merges)


class TestScipyCrossCheck:
    """Our from-scratch HAC must match SciPy's on dense inputs."""

    @pytest.mark.parametrize("linkage", _ALL_LINKAGES)
    @pytest.mark.parametrize("n,seed", [(6, 1), (9, 2), (12, 3), (12, 4)])
    def test_flat_clusters_match_fcluster(self, linkage, n, seed):
        scipy_hierarchy = pytest.importorskip("scipy.cluster.hierarchy")

        matrix = DenseMatrix.random(n, seed=seed)
        dendrogram = hac(matrix, linkage=linkage)
        reference = scipy_hierarchy.linkage(matrix.distance_array(), method=linkage)

        heights = dendrogram.merge_distances()
        assert len(heights) == n - 1
        for ours, theirs in zip(heights, sorted(reference[:, 2])):
            assert math.isclose(ours, theirs, rel_tol=1e-9), (
                f"{linkage}: merge height {ours} != scipy {theirs}"
            )

        # Compare flat partitions at thresholds strictly between merge
        # heights (plus below the first and above the last).
        probes = [heights[0] / 2, heights[-1] * 1.01]
        probes += [
            (low + high) / 2
            for low, high in zip(heights, heights[1:])
            if high > low
        ]
        keys = matrix.keys
        for threshold in probes:
            ours = {frozenset(c) for c in dendrogram.cut(threshold)}
            labels = scipy_hierarchy.fcluster(
                reference, t=threshold, criterion="distance"
            )
            theirs: dict[int, set[str]] = {}
            for key, label in zip(keys, labels):
                theirs.setdefault(int(label), set()).add(key)
            assert ours == {frozenset(c) for c in theirs.values()}, (
                f"{linkage}: partition mismatch at threshold {threshold}"
            )

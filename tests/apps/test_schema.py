"""Tests for configuration schemas and the dependency-group archetypes."""

import random

import pytest

from repro.apps.catalog import create_app
from repro.apps.schema import (
    BOOL,
    ConfigSchema,
    EnablerParamsGroup,
    FILENAME,
    GenericGroup,
    LimiterListGroup,
    ModeListGroup,
    SettingSpec,
    ValueDomain,
)
from repro.exceptions import SchemaError


class TestValueDomain:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            ValueDomain("tensor")

    def test_enum_needs_options(self):
        with pytest.raises(SchemaError):
            ValueDomain("enum", options=("only-one",))

    @pytest.mark.parametrize(
        "domain,predicate",
        [
            (BOOL, lambda v: isinstance(v, bool)),
            (ValueDomain("int", lo=1, hi=5), lambda v: 1 <= v <= 5),
            (ValueDomain("float", lo=0, hi=1), lambda v: 0 <= v <= 1),
            (ValueDomain("enum", options=("a", "b")), lambda v: v in ("a", "b")),
            (FILENAME, lambda v: isinstance(v, str)),
            (ValueDomain("strlist"), lambda v: isinstance(v, list)),
        ],
    )
    def test_sample_in_domain(self, domain, predicate):
        rng = random.Random(1)
        for _ in range(20):
            assert predicate(domain.sample(rng))

    def test_perturb_changes_value(self):
        rng = random.Random(2)
        domain = ValueDomain("enum", options=("a", "b", "c"))
        for _ in range(10):
            assert domain.perturb(rng, "a") != "a"

    def test_perturb_bool_always_flips_when_stuck(self):
        rng = random.Random(3)
        assert BOOL.perturb(rng, True) in (True, False)


class TestSettingSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            SettingSpec(name="")

    def test_bad_volatility_rejected(self):
        with pytest.raises(SchemaError):
            SettingSpec(name="x", volatility="sometimes")


class TestConfigSchema:
    def _schema(self):
        specs = [SettingSpec(name=n, domain=BOOL) for n in ("a", "b", "c", "d")]
        groups = [GenericGroup("g", ["a", "b"])]
        return ConfigSchema(specs, groups)

    def test_duplicate_setting_rejected(self):
        with pytest.raises(SchemaError):
            ConfigSchema(
                [SettingSpec(name="a"), SettingSpec(name="a")], []
            )

    def test_group_with_unknown_setting_rejected(self):
        with pytest.raises(SchemaError):
            ConfigSchema([SettingSpec(name="a")], [GenericGroup("g", ["a", "z"])])

    def test_setting_in_two_groups_rejected(self):
        specs = [SettingSpec(name=n) for n in ("a", "b")]
        with pytest.raises(SchemaError):
            ConfigSchema(
                specs,
                [GenericGroup("g1", ["a"]), GenericGroup("g2", ["a", "b"])],
            )

    def test_independent_settings(self):
        assert self._schema().independent_settings() == ["c", "d"]

    def test_ground_truth_groups(self):
        assert self._schema().ground_truth_groups() == [frozenset({"a", "b"})]

    def test_group_lookup(self):
        schema = self._schema()
        assert schema.group("g").keys() == {"a", "b"}
        with pytest.raises(SchemaError):
            schema.group("ghost")

    def test_duplicate_group_member_rejected(self):
        with pytest.raises(SchemaError):
            GenericGroup("g", ["a", "a"])


class TestLimiterListGroup:
    @pytest.fixture
    def app(self):
        return create_app("MS Word")

    @pytest.fixture
    def group(self, app):
        return app.schema.group("RecentDocuments")

    def test_push_respects_limit(self, app, group):
        group.set_limit(app, 3)
        for doc in ("a", "b", "c", "d"):
            group.push_item(app, doc)
        assert group.current_items(app) == ["d", "c", "b"]

    def test_push_moves_duplicate_to_front(self, app, group):
        for doc in ("a", "b", "a"):
            group.push_item(app, doc)
        assert group.current_items(app)[:2] == ["a", "b"]

    def test_set_limit_trims_items(self, app, group):
        for doc in ("a", "b", "c", "d", "e"):
            group.push_item(app, doc)
        group.set_limit(app, 2)
        assert len(group.current_items(app)) == 2

    def test_set_limit_zero_removes_all(self, app, group):
        group.push_item(app, "a")
        group.set_limit(app, 0)
        assert group.current_items(app) == []

    def test_render_shows_items_up_to_limit(self, app, group):
        for doc in ("a", "b", "c"):
            group.push_item(app, doc)
        group.set_limit(app, 2)
        ((_, shown),) = group.render(app)
        assert shown == ("c", "b")

    def test_invalid_construction(self):
        with pytest.raises(SchemaError):
            LimiterListGroup("g", limiter="l", item_prefix="i", max_items=0)


class TestEnablerParamsGroup:
    def test_needs_params(self):
        with pytest.raises(SchemaError):
            EnablerParamsGroup("g", enabler="e", params=[])

    def test_render_disabled(self, word_app):
        group = word_app.schema.group("AutoSave")
        word_app.user_set("Options/AutoSave", False)
        ((_, behaviour),) = group.render(word_app)
        assert behaviour == "disabled"

    def test_render_enabled_shows_params(self, word_app):
        group = word_app.schema.group("AutoSave")
        word_app.user_set("Options/AutoSave", True)
        word_app.user_set("Options/AutoSaveInterval", 25)
        ((_, behaviour),) = group.render(word_app)
        assert behaviour == (25,)

    def test_invisible_group_renders_nothing(self, word_app):
        group = EnablerParamsGroup(
            "hidden", enabler="Options/AutoSave",
            params=["Options/AutoSaveInterval"], visible=False,
        )
        assert group.render(word_app) == []

    def test_coherent_update_writes_whole_family(self, word_app, rng):
        group = word_app.schema.group("AutoSave")
        events = []
        word_app.store.subscribe(events.append)
        group.coherent_update(word_app, rng)
        written = {e.key for e in events}
        assert len(written) == 2


class TestModeListGroup:
    @pytest.fixture
    def app(self):
        return create_app("Explorer")

    @pytest.fixture
    def group(self, app):
        return app.schema.group("OpenWithFlv")

    def test_needs_entries(self):
        with pytest.raises(SchemaError):
            ModeListGroup("g", list_key="l", entry_keys=[])

    def test_render_follows_list_order(self, app, group):
        app.user_set("FileExts/.flv/OpenWithList/a", "one.exe")
        app.user_set("FileExts/.flv/OpenWithList/b", "two.exe")
        app.user_set("FileExts/.flv/OpenWithList/MRUList", ["b", "a"])
        ((_, menu),) = group.render(app)
        assert menu == ("two.exe", "one.exe")

    def test_render_skips_empty_entries(self, app, group):
        app.user_set("FileExts/.flv/OpenWithList/a", "")
        app.user_set("FileExts/.flv/OpenWithList/MRUList", ["a"])
        ((_, menu),) = group.render(app)
        assert menu == ()

    def test_partial_update_touches_list_only(self, app, group, rng):
        events = []
        app.store.subscribe(events.append)
        group.partial_update(app, rng)
        keys = {e.key for e in events}
        assert keys == {app.canonical_key("FileExts/.flv/OpenWithList/MRUList")}

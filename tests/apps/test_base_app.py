"""Tests for the SimulatedApplication base behaviour."""

import pytest

from repro.apps.base import STORE_FILE, STORE_GCONF, STORE_REGISTRY
from repro.apps.catalog import create_app
from repro.exceptions import SchemaError, UnknownActionError
from repro.ttkv.store import TTKV


class TestKeyNaming:
    def test_registry_canonical(self, word_app):
        key = word_app.canonical_key("Options/MaxDisplay")
        assert key == "HKCU\\Software\\Microsoft\\Office\\Word\\Options\\MaxDisplay"

    def test_gconf_canonical(self, evolution_app):
        assert (
            evolution_app.canonical_key("mail/mark_seen")
            == "/apps/evolution/mail/mark_seen"
        )

    def test_file_canonical(self, chrome_app):
        key = chrome_app.canonical_key("bookmark_bar/show_on_all_tabs")
        assert key.endswith("Preferences:bookmark_bar/show_on_all_tabs")

    @pytest.mark.parametrize(
        "app_name", ["MS Word", "Evolution Mail", "Chrome Browser"]
    )
    def test_roundtrip(self, app_name):
        app = create_app(app_name)
        for setting in list(app.schema.names())[:10]:
            assert app.setting_name(app.canonical_key(setting)) == setting

    def test_foreign_key_rejected(self, word_app):
        with pytest.raises(SchemaError):
            word_app.setting_name("/apps/evolution/mail/mark_seen")

    def test_key_prefix_selects_own_keys(self, word_app, evolution_app):
        word_key = word_app.canonical_key("Options/MaxDisplay")
        assert word_key.startswith(word_app.key_prefix)
        assert not word_key.startswith(evolution_app.key_prefix)


class TestConfigAccess:
    def test_defaults_installed_silently(self, word_app):
        assert word_app.value("Options/MaxDisplay") == 9

    def test_value_is_observer_silent(self, word_app):
        seen = []
        word_app.store.subscribe(seen.append)
        word_app.value("Options/MaxDisplay")
        assert seen == []

    def test_read_setting_is_logged(self, word_app):
        seen = []
        word_app.store.subscribe(seen.append)
        word_app.read_setting("Options/MaxDisplay")
        assert len(seen) == 1

    def test_writes_advance_clock(self, word_app):
        before = word_app.clock.now()
        word_app.user_set("Options/MaxDisplay", 5)
        assert word_app.clock.now() > before

    def test_ground_truth_groups_canonical(self, word_app):
        groups = word_app.canonical_ground_truth_groups()
        flattened = {k for g in groups for k in g}
        assert all(k.startswith(word_app.key_prefix) for k in flattened)


class TestActions:
    def test_unknown_action_raises(self, word_app):
        with pytest.raises(UnknownActionError):
            word_app.perform("teleport")

    def test_launch_resets_session_and_reads_all(self, word_app):
        ttkv = TTKV()
        word_app.attach_logger(ttkv)
        word_app.open_document("x.doc")
        word_app.perform("launch")
        assert ttkv.total_reads() == len(word_app.schema)
        assert not word_app.render().has_element("document")

    def test_open_document_feeds_mru(self, word_app):
        word_app.open_document("report.doc")
        group = word_app.schema.group("RecentDocuments")
        assert group.current_items(word_app)[0] == "report.doc"

    def test_action_names_sorted(self, word_app):
        names = word_app.action_names()
        assert "launch" in names
        assert names == sorted(names)


class TestLoggerAttachment:
    @pytest.mark.parametrize(
        "app_name,kind",
        [
            ("MS Word", STORE_REGISTRY),
            ("Evolution Mail", STORE_GCONF),
            ("Chrome Browser", STORE_FILE),
        ],
    )
    def test_attach_right_flavour(self, app_name, kind):
        app = create_app(app_name)
        assert app.store_kind == kind
        ttkv = TTKV()
        app.attach_logger(ttkv)
        first = app.schema.names()[0]
        app.user_set(first, app.spec(first).domain.sample(__import__("random").Random(0)))
        assert ttkv.total_writes() >= 1
        recorded = ttkv.keys()[0]
        assert recorded.startswith(app.key_prefix)


class TestRendering:
    def test_screenshot_is_hashable_and_stable(self, chrome_app):
        a = chrome_app.render()
        b = chrome_app.render()
        assert a == b
        assert hash(a) == hash(b)

    def test_screenshot_changes_with_visible_setting(self, chrome_app):
        before = chrome_app.render()
        chrome_app.user_set("bookmark_bar/show_on_all_tabs", False)
        assert chrome_app.render() != before

    def test_element_lookup(self, chrome_app):
        shot = chrome_app.render()
        assert shot.element("bookmark_bar") == "shown"
        with pytest.raises(KeyError):
            shot.element("nonexistent")


class TestSandboxClone:
    def test_clone_store_isolated(self, chrome_app):
        twin = chrome_app.clone_sandboxed()
        twin.user_set("bookmark_bar/show_on_all_tabs", False)
        assert chrome_app.value("bookmark_bar/show_on_all_tabs") is True

    def test_clone_session_isolated(self, chrome_app):
        chrome_app.open_document("a.pdf")
        twin = chrome_app.clone_sandboxed()
        twin.close_document()
        assert chrome_app.render().has_element("document")

    def test_clone_actions_rebound(self, chrome_app):
        twin = chrome_app.clone_sandboxed()
        twin.perform("browse", url="wiki.site")
        assert not chrome_app.render().has_element("page")
        assert twin.render().element("page") == "wiki.site"

    def test_clone_has_no_logger(self, chrome_app):
        ttkv = TTKV()
        chrome_app.attach_logger(ttkv)
        twin = chrome_app.clone_sandboxed()
        twin.user_set("bookmark_bar/show_on_all_tabs", False)
        assert ttkv.total_writes() == 0


class TestWorkloadVerbs:
    def test_change_preference_writes_config(self, word_app, rng):
        events = []
        word_app.store.subscribe(events.append)
        word_app.change_preference(rng)
        assert events

    def test_software_update_writes_settings(self, word_app, rng):
        events = []
        word_app.store.subscribe(events.append)
        word_app.software_update(rng, breadth=5)
        assert len(events) >= 5

    def test_activity_touches_state(self, word_app, rng):
        events = []
        word_app.store.subscribe(events.append)
        for _ in range(10):
            word_app.activity(rng)
        assert events

    def test_pref_pages_cover_all_config_settings(self, word_app):
        from repro.apps.schema import VOLATILITY_STATE

        covered = set()
        for page in word_app._pref_pages:
            covered.update(word_app._page_settings(page))
        expected = set()
        for group in word_app.schema.groups:
            expected |= group.keys()
        for name in word_app.schema.independent_settings():
            if word_app.schema.spec(name).volatility != VOLATILITY_STATE:
                expected.add(name)
        assert covered == expected

    def test_page_apply_rewrites_whole_page(self, rng):
        app = create_app("GNOME Edit")  # page_apply_prob = 1.0
        events = []
        app.store.subscribe(events.append)
        app.change_preference(rng)
        touched = {e.key for e in events}
        # With page-apply certain, the write set is exactly one whole page.
        page_key_sets = [
            {app.canonical_key(n) for n in app._page_settings(page)}
            for page in app._pref_pages
        ]
        assert touched in page_key_sets

    def test_hand_authored_groups_get_dedicated_pages(self, word_app):
        for page in word_app._pref_pages:
            from repro.apps.schema import DependencyGroup

            hand_authored = [
                entry
                for entry in page
                if isinstance(entry, DependencyGroup) and not entry.is_filler
            ]
            if hand_authored:
                assert page == hand_authored and len(page) == 1

"""Catalogue-wide checks: every application satisfies the Table II shape."""

import pytest

from repro.apps.catalog import APP_FACTORIES, app_names, create_app


@pytest.fixture(scope="module")
def all_apps():
    return {name: create_app(name) for name in app_names()}


class TestCatalog:
    def test_eleven_applications(self):
        assert len(app_names()) == 11

    def test_table2_order(self):
        assert app_names()[0] == "MS Outlook"
        assert app_names()[-1] == "Windows Media Player"

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            create_app("Emacs")

    def test_key_counts_match_table2(self, all_apps):
        for name, app in all_apps.items():
            assert len(app.schema) == APP_FACTORIES[name].table2_keys, name

    def test_total_keys_1871(self, all_apps):
        assert sum(len(a.schema) for a in all_apps.values()) == 1871


class TestEveryApp:
    @pytest.fixture(params=app_names())
    def app(self, request, all_apps):
        return all_apps[request.param]

    def test_renders_a_screenshot(self, app):
        shot = app.render()
        assert shot.app_name == app.name
        hash(shot)

    def test_launch_runs(self, app):
        app.perform("launch")

    def test_groups_disjoint_and_within_schema(self, app):
        seen = set()
        for group in app.schema.groups:
            for key in group.keys():
                assert key in app.schema
                assert key not in seen
                seen.add(key)

    def test_canonical_keys_unique(self, app):
        canon = [app.canonical_key(n) for n in app.schema.names()]
        assert len(canon) == len(set(canon))

    def test_trial_cost_positive(self, app):
        assert app.trial_cost_seconds > 0

    def test_page_apply_prob_valid(self, app):
        assert 0.0 <= app.page_apply_prob <= 1.0

    def test_defaults_dont_crash_derived_elements(self, app):
        assert isinstance(app.derived_elements(), list)

    def test_fresh_instances_identical_schema(self, app):
        twin = create_app(app.name)
        assert twin.schema.names() == app.schema.names()
        assert [g.name for g in twin.schema.groups] == [
            g.name for g in app.schema.groups
        ]


class TestErrorRelevantBehaviour:
    """Per-app symptom logic driven directly through the store."""

    def test_outlook_nav_pane(self):
        app = create_app("MS Outlook")
        assert app.render().element("navigation_pane") != "unusable"
        app.user_set("Preferences/ShowNavPane", False)
        assert app.render().element("navigation_pane") == "unusable"

    def test_word_recent_menu_empty_when_limit_zero(self):
        app = create_app("MS Word")
        app.open_document("a.doc")
        assert app.render().element("recent_documents_menu") != ()
        app.perform("set_max_display", limit=0)
        assert app.render().element("recent_documents_menu") == ()

    def test_ie_addon_dialog(self):
        app = create_app("Internet Explorer")
        assert app.render().element("addon_dialog") == "hidden"
        app.user_set("Main/ShowAddonDialog", True)
        assert app.render().element("addon_dialog") == "pops-up"

    def test_explorer_open_with_menu(self):
        app = create_app("Explorer")
        app.perform("open_context_menu", doc="video.flv")
        assert app.render().element("open_with_flv") != "no applications"
        app.user_set("FileExts/.flv/OpenWithList/MRUList", [])
        assert app.render().element("open_with_flv") == "no applications"

    def test_explorer_image_window(self):
        app = create_app("Explorer")
        app.perform("open_image", doc="p.png")
        assert app.render().element("image_window") == "normal"
        app.user_set("Streams/ImageWindowPos", "")
        assert app.render().element("image_window") == "maximized"

    def test_wmp_captions(self):
        app = create_app("Windows Media Player")
        app.perform("play_video", doc="clip.avi")
        assert app.render().element("captions") != "no captions"
        app.user_set("Player/ShowCaptions", False)
        assert app.render().element("captions") == "no captions"

    def test_paint_text_toolbar_needs_both_settings(self):
        app = create_app("MS Paint")
        app.perform("enter_text")
        assert app.render().element("text_toolbar") == "pops-up"
        app.user_set("View/TextToolbarMode", "manual")
        assert app.render().element("text_toolbar") == "stays-hidden"
        app.user_set("View/TextToolbarMode", "auto")
        app.user_set("View/ShowTextToolbar", False)
        assert app.render().element("text_toolbar") == "stays-hidden"

    def test_evolution_offline_mode(self):
        app = create_app("Evolution Mail")
        assert app.render().element("connection_mode") == "online"
        app.user_set("shell/start_offline", True)
        assert app.render().element("connection_mode") == "offline"

    def test_evolution_mark_seen_needs_both(self):
        app = create_app("Evolution Mail")
        app.perform("read_email")
        assert app.render().element("mark_read") == "automatic"
        app.user_set("mail/mark_seen_timeout", 0)
        assert app.render().element("mark_read") == "manual-only"
        app.user_set("mail/mark_seen_timeout", 1500)
        app.user_set("mail/mark_seen", False)
        assert app.render().element("mark_read") == "manual-only"

    def test_evolution_reply_style(self):
        app = create_app("Evolution Mail")
        app.perform("compose_reply")
        assert app.render().element("reply_cursor") == "top"
        app.user_set("mail/reply_style", "bottom")
        assert app.render().element("reply_cursor") == "bottom"

    def test_eog_print(self):
        app = create_app("Eye of GNOME")
        app.perform("print_image")
        assert app.render().element("print_result") == "printed"
        app.user_set("print/backend", "gnomeprint")
        assert "error" in app.render().element("print_result")

    def test_gedit_save(self):
        app = create_app("GNOME Edit")
        app.perform("save_document")
        assert app.render().element("save_result") == "saved"
        app.user_set("save/backup_scheme", "gvfs-obsolete")
        assert "error" in app.render().element("save_result")

    def test_chrome_bookmark_bar_and_home_button(self):
        app = create_app("Chrome Browser")
        shot = app.render()
        assert shot.element("bookmark_bar") == "shown"
        assert shot.element("home_button") == "shown"
        app.user_set("bookmark_bar/show_on_all_tabs", False)
        app.user_set("browser/show_home_button", False)
        shot = app.render()
        assert shot.element("bookmark_bar") == "missing"
        assert shot.element("home_button") == "missing"

    def test_acrobat_menu_bar_per_document(self):
        app = create_app("Acrobat Reader")
        app.perform("open_document", doc="thesis.pdf")
        assert app.render().element("menu_bar") == "shown"
        app.user_set("AVGeneral/MenuBarHiddenDocs", ["thesis.pdf"])
        assert app.render().element("menu_bar") == "missing"
        app.perform("open_document", doc="other.pdf")
        assert app.render().element("menu_bar") == "shown"

    def test_acrobat_find_box(self):
        app = create_app("Acrobat Reader")
        assert app.render().element("find_box") == "shown"
        app.user_set("Toolbars/Find/Visible", False)
        assert app.render().element("find_box") == "missing"

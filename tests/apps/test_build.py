"""Tests for the schema-padding builder."""

import random

import pytest

from repro.apps.build import filler_name, mru_group, pad_schema
from repro.apps.schema import BOOL, GenericGroup, SettingSpec
from repro.exceptions import SchemaError


class TestFillerName:
    def test_unique_names(self):
        rng = random.Random(1)
        used: set[str] = set()
        names = [filler_name(rng, used) for _ in range(300)]
        assert len(names) == len(set(names))

    def test_hierarchical_shape(self):
        rng = random.Random(2)
        name = filler_name(rng, set())
        assert "/" in name


class TestPadSchema:
    def test_reaches_exact_target(self):
        schema = pad_schema([SettingSpec("a", BOOL)], [], target_keys=40, seed=3)
        assert len(schema) == 40

    def test_hand_authored_preserved(self):
        spec = SettingSpec("core/flag", BOOL, default=True)
        group = GenericGroup("g", ["core/flag"])
        schema = pad_schema([spec], [group], target_keys=10, seed=3)
        assert "core/flag" in schema
        assert schema.group("g").keys() == {"core/flag"}

    def test_overfull_rejected(self):
        specs = [SettingSpec(f"s{i}", BOOL) for i in range(5)]
        with pytest.raises(SchemaError):
            pad_schema(specs, [], target_keys=3, seed=1)

    def test_deterministic_in_seed(self):
        a = pad_schema([], [], target_keys=30, seed=9)
        b = pad_schema([], [], target_keys=30, seed=9)
        assert a.names() == b.names()
        assert [g.name for g in a.groups] == [g.name for g in b.groups]

    def test_different_seeds_differ(self):
        a = pad_schema([], [], target_keys=30, seed=9)
        b = pad_schema([], [], target_keys=30, seed=10)
        assert a.names() != b.names()

    def test_filler_groups_marked(self):
        schema = pad_schema([], [], target_keys=50, seed=4, grouped_fraction=0.9)
        assert schema.groups
        assert all(g.is_filler for g in schema.groups)

    def test_grouped_fraction_zero_gives_no_groups(self):
        schema = pad_schema([], [], target_keys=20, seed=4, grouped_fraction=0.0)
        assert schema.groups == []

    def test_target_one(self):
        schema = pad_schema([], [], target_keys=1, seed=4)
        assert len(schema) == 1


class TestMruGroupBuilder:
    def test_specs_and_group_consistent(self):
        specs, group = mru_group(
            name="Recent", limiter="Max", item_prefix="Item",
            max_items=4, default_limit=3,
        )
        assert len(specs) == 5  # limiter + 4 items
        assert group.keys() == {"Max", "Item1", "Item2", "Item3", "Item4"}

    def test_limiter_default(self):
        specs, _ = mru_group("R", "Max", "Item", max_items=4, default_limit=3)
        limiter_spec = next(s for s in specs if s.name == "Max")
        assert limiter_spec.default == 3

    def test_items_are_state_volatile(self):
        from repro.apps.schema import VOLATILITY_STATE

        specs, _ = mru_group("R", "Max", "Item", max_items=2, default_limit=2)
        for spec in specs:
            if spec.name.startswith("Item"):
                assert spec.volatility == VOLATILITY_STATE

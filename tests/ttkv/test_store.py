"""Tests for the time-travel key-value store."""


import pytest
from hypothesis import given, strategies as st

from repro.exceptions import KeyNotTrackedError, NoValueError
from repro.ttkv.store import DELETED, MISSING, KeyRecord, TTKV, VersionedValue


class TestKeyRecord:
    def test_counts_writes(self):
        record = KeyRecord("k")
        record.record_write(1, 1.0)
        record.record_write(2, 2.0)
        assert record.writes == 2
        assert record.deletes == 0

    def test_counts_deletes_separately(self):
        record = KeyRecord("k")
        record.record_write(1, 1.0)
        record.record_delete(2.0)
        assert record.writes == 1
        assert record.deletes == 1
        assert record.modifications == 2

    def test_reads_not_in_history(self):
        record = KeyRecord("k")
        record.record_read(1.0)
        assert record.reads == 1
        assert record.history == ()

    def test_bulk_reads(self):
        record = KeyRecord("k")
        record.record_reads(1000)
        assert record.reads == 1000

    def test_bulk_reads_rejects_negative(self):
        with pytest.raises(ValueError):
            KeyRecord("k").record_reads(-1)

    def test_history_in_order(self):
        record = KeyRecord("k")
        record.record_write("x", 1.0)
        record.record_delete(2.0)
        record.record_write("y", 3.0)
        values = [entry.value for entry in record.history]
        assert values == ["x", DELETED, "y"]

    def test_rejects_out_of_order_appends(self):
        record = KeyRecord("k")
        record.record_write(1, 5.0)
        with pytest.raises(ValueError):
            record.record_write(2, 4.0)

    def test_equal_timestamps_allowed(self):
        record = KeyRecord("k")
        record.record_write(1, 5.0)
        record.record_write(2, 5.0)
        assert record.writes == 2

    def test_value_at_before_first_write_is_missing(self):
        record = KeyRecord("k")
        record.record_write(1, 5.0)
        assert record.value_at(4.9) is MISSING

    def test_value_at_exact_timestamp_inclusive(self):
        record = KeyRecord("k")
        record.record_write(1, 5.0)
        assert record.value_at(5.0) == 1

    def test_value_at_after_delete_is_deleted(self):
        record = KeyRecord("k")
        record.record_write(1, 5.0)
        record.record_delete(6.0)
        assert record.value_at(7.0) is DELETED

    def test_value_at_between_writes(self):
        record = KeyRecord("k")
        record.record_write("old", 5.0)
        record.record_write("new", 10.0)
        assert record.value_at(7.0) == "old"

    def test_versions_between_bounds_inclusive(self):
        record = KeyRecord("k")
        for t in (1.0, 2.0, 3.0, 4.0):
            record.record_write(t, t)
        entries = record.versions_between(2.0, 3.0)
        assert [e.timestamp for e in entries] == [2.0, 3.0]

    def test_versions_between_open_bounds(self):
        record = KeyRecord("k")
        for t in (1.0, 2.0):
            record.record_write(t, t)
        assert len(record.versions_between()) == 2

    def test_last_modified(self):
        record = KeyRecord("k")
        record.record_write(1, 5.0)
        record.record_delete(9.0)
        assert record.last_modified() == 9.0

    def test_last_modified_empty_raises(self):
        with pytest.raises(NoValueError):
            KeyRecord("k").last_modified()

    def test_estimated_size_grows_with_history(self):
        record = KeyRecord("k")
        before = record.estimated_size_bytes()
        record.record_write("some value", 1.0)
        assert record.estimated_size_bytes() > before


class TestTTKV:
    def test_empty_store(self, ttkv):
        assert len(ttkv) == 0
        assert ttkv.keys() == []

    def test_contains(self, ttkv):
        ttkv.record_write("a", 1, 1.0)
        assert "a" in ttkv
        assert "b" not in ttkv

    def test_record_for_unknown_key_raises(self, ttkv):
        with pytest.raises(KeyNotTrackedError):
            ttkv.record_for("ghost")

    def test_value_at_unknown_key_raises(self, ttkv):
        with pytest.raises(KeyNotTrackedError):
            ttkv.value_at("ghost", 1.0)

    def test_current_value(self, ttkv):
        ttkv.record_write("a", "v1", 1.0)
        ttkv.record_write("a", "v2", 2.0)
        assert ttkv.current_value("a") == "v2"

    def test_modified_keys_excludes_read_only(self, ttkv):
        ttkv.record_write("w", 1, 1.0)
        ttkv.record_read("r", 1.0)
        assert ttkv.modified_keys() == ["w"]
        assert set(ttkv.keys()) == {"w", "r"}

    def test_write_events_sorted_by_time(self, ttkv):
        ttkv.record_write("a", 1, 5.0)
        ttkv.record_write("b", 2, 1.0)
        ttkv.record_write("a", 3, 9.0)
        events = ttkv.write_events()
        assert [t for t, _, _ in events] == [1.0, 5.0, 9.0]

    def test_write_events_include_deletes(self, ttkv):
        ttkv.record_write("a", 1, 1.0)
        ttkv.record_delete("a", 2.0)
        events = ttkv.write_events()
        assert events[1][2] is DELETED

    def test_write_events_tie_break_by_first_seen(self, ttkv):
        ttkv.record_write("z_first", 1, 5.0)
        ttkv.record_write("a_second", 2, 5.0)
        events = ttkv.write_events()
        assert [k for _, k, _ in events] == ["z_first", "a_second"]

    def test_totals(self, ttkv):
        ttkv.record_write("a", 1, 1.0)
        ttkv.record_delete("a", 2.0)
        ttkv.record_read("a", 3.0)
        ttkv.record_reads("a", 9)
        assert ttkv.total_writes() == 1
        assert ttkv.total_deletes() == 1
        assert ttkv.total_reads() == 10

    def test_span(self, ttkv):
        ttkv.record_write("a", 1, 3.0)
        ttkv.record_write("b", 1, 8.0)
        assert ttkv.span() == (3.0, 8.0)

    def test_span_empty_raises(self, ttkv):
        with pytest.raises(NoValueError):
            ttkv.span()

    def test_from_events_sorts(self):
        store = TTKV.from_events([(5.0, "a", 2), (1.0, "a", 1)])
        assert store.current_value("a") == 2
        assert store.value_at("a", 1.0) == 1

    def test_from_events_handles_deletions(self):
        store = TTKV.from_events([(1.0, "a", 1), (2.0, "a", DELETED)])
        assert store.current_value("a") is DELETED

    def test_estimated_size_counts_all_records(self, ttkv):
        ttkv.record_write("a", "x" * 100, 1.0)
        small = ttkv.estimated_size_bytes()
        ttkv.record_write("b", "y" * 1000, 2.0)
        assert ttkv.estimated_size_bytes() > small + 900


class TestVersionedValue:
    def test_orderable_by_timestamp(self):
        early = VersionedValue(1.0, "x")
        late = VersionedValue(2.0, "y")
        assert early < late

    def test_is_deletion(self):
        assert VersionedValue(1.0, DELETED).is_deletion
        assert not VersionedValue(1.0, None).is_deletion


class TestSentinels:
    def test_deleted_and_missing_distinct(self):
        assert DELETED is not MISSING

    def test_repr(self):
        assert repr(DELETED) == "<DELETED>"
        assert repr(MISSING) == "<MISSING>"

    def test_deepcopy_preserves_identity(self):
        import copy

        assert copy.deepcopy(DELETED) is DELETED


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=100),
        ),
        max_size=50,
    )
)
def test_property_value_at_matches_linear_scan(events):
    """value_at (bisect) must agree with a brute-force scan."""
    store = TTKV.from_events(events)
    ordered = sorted(events, key=lambda e: e[0])
    for probe in (0.0, 1.0, 500.0, 1e6):
        for key in store.keys():
            expected = MISSING
            for t, k, v in ordered:
                if k == key and t <= probe:
                    expected = v
            assert store.value_at(key, probe) == expected


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            st.sampled_from(["x", "y"]),
            st.integers(),
        ),
        max_size=30,
    )
)
def test_property_write_events_roundtrip(events):
    """from_events(write_events()) reproduces the same modification log."""
    store = TTKV.from_events(events)
    twin = TTKV.from_events(store.write_events())
    assert twin.write_events() == store.write_events()


class TestFromEventsStableOrder:
    def test_equal_timestamps_keep_input_order(self):
        events = [(5.0, "b", "first"), (5.0, "a", "second"), (5.0, "b", "third")]
        store = TTKV.from_events(events)
        assert store.keys() == ["b", "a"]
        assert [v.value for v in store.history("b")] == ["first", "third"]
        assert store.write_events() == events

    def test_tie_break_never_compares_values(self):
        # dicts and the DELETED sentinel are unorderable; a sort that fell
        # back to comparing whole events would raise TypeError here.
        events = [(1.0, "b", {"x": 1}), (1.0, "a", DELETED), (1.0, "c", {"y": 2})]
        store = TTKV.from_events(events)
        assert store.write_events() == events

    def test_later_input_sorted_before_earlier_timestamps(self):
        events = [(2.0, "x", 1), (1.0, "y", 2), (1.0, "z", 3)]
        store = TTKV.from_events(events)
        assert [(t, k) for t, k, _ in store.write_events()] == [
            (1.0, "y"), (1.0, "z"), (2.0, "x"),
        ]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([0.0, 1.0, 2.0]),  # heavy timestamp ties
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=30,
        )
    )
    def test_property_equal_timestamp_runs_preserve_input_order(self, events):
        store = TTKV.from_events(events)
        by_time = {}
        for event in events:
            by_time.setdefault(event[0], []).append(event)
        recorded = store.write_events()
        for timestamp, expected in by_time.items():
            # each equal-timestamp run comes out exactly in input order
            run = [e for e in recorded if e[0] == timestamp]
            assert run == expected
        # running from_events twice is a fixed point: the ordering is fully
        # deterministic, not an accident of the surrounding sort
        twin = TTKV.from_events(store.write_events())
        assert twin.write_events() == store.write_events()


class TestEstimatedSizeBytes:
    """Pin the Table I size-accounting formula on its edge cases."""

    @staticmethod
    def _base(key: str) -> int:
        return 64 + len(key.encode("utf-8"))

    def test_empty_record(self):
        assert KeyRecord("k").estimated_size_bytes() == self._base("k")

    def test_deleted_entry_costs_eight_bytes(self):
        record = KeyRecord("k")
        record.record_delete(1.0)
        assert record.estimated_size_bytes() == self._base("k") + 16 + 8

    def test_bool_value_counted_via_str(self):
        record = KeyRecord("k")
        record.record_write(True, 1.0)
        # bool is not str/list/tuple: falls through to len(str(True)) == 4
        assert record.estimated_size_bytes() == self._base("k") + 16 + 4

    def test_none_value_counted_via_str(self):
        record = KeyRecord("k")
        record.record_write(None, 1.0)
        assert record.estimated_size_bytes() == self._base("k") + 16 + 4

    def test_nested_tuple_value(self):
        value = ("a", ("b", "c"))
        record = KeyRecord("k")
        record.record_write(value, 1.0)
        expected = 8 * 2 + len(str("a")) + len(str(("b", "c")))
        assert record.estimated_size_bytes() == self._base("k") + 16 + expected

    def test_empty_list_value(self):
        record = KeyRecord("k")
        record.record_write([], 1.0)
        assert record.estimated_size_bytes() == self._base("k") + 16

    def test_unicode_key_measured_in_utf8_bytes(self):
        key = "café/♞"
        record = KeyRecord(key)
        assert record.estimated_size_bytes() == 64 + len(key.encode("utf-8"))

    def test_store_total_sums_records_with_deletions(self):
        store = TTKV()
        store.record_write("a", "xyz", 1.0)
        store.record_delete("a", 2.0)
        store.record_write("b", None, 1.0)
        expected = (
            (64 + 1 + 16 + 3 + 16 + 8)  # "a": write "xyz" + deletion
            + (64 + 1 + 16 + 4)          # "b": write None
        )
        assert store.estimated_size_bytes() == expected

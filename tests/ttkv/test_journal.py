"""Tests for the append-ordered event journal and its TTKV integration."""

import pytest

from repro.exceptions import StaleCursorError
from repro.ttkv.journal import EventJournal, JournalCursor
from repro.ttkv.store import DELETED, TTKV


class TestEventJournal:
    def test_in_order_appends_preserve_order(self):
        journal = EventJournal()
        journal.append(1.0, "a", 1)
        journal.append(1.0, "b", 2)
        journal.append(2.0, "a", 3)
        assert journal.events() == [(1.0, "a", 1), (1.0, "b", 2), (2.0, "a", 3)]
        assert journal.epoch == 0
        assert len(journal) == 3

    def test_same_timestamp_appends_are_not_reorders(self):
        # with 1-second quantisation same-tick writes are routine; they
        # must stay O(1) appends in arrival order, not insertions
        journal = EventJournal()
        journal.append(5.0, "b", 1)
        journal.append(5.0, "a", 2)
        journal.append(5.0, "c", 3)
        assert journal.epoch == 0
        assert [k for _, k, _ in journal.events()] == ["b", "a", "c"]

    def test_out_of_order_append_inserts_and_bumps_epoch(self):
        journal = EventJournal()
        journal.append(5.0, "a", 1)
        journal.append(1.0, "b", 2)
        assert journal.epoch == 1
        assert journal.events() == [(1.0, "b", 2), (5.0, "a", 1)]

    def test_insertion_lands_after_equal_timestamps(self):
        journal = EventJournal()
        journal.append(1.0, "a", "first")
        journal.append(1.0, "a", "second")
        journal.append(2.0, "b", "later")
        journal.append(1.0, "a", "third")  # insertion path, after the equals
        values = [value for _, _, value in journal.events()]
        assert values == ["first", "second", "third", "later"]
        assert journal.epoch == 1

    def test_cursor_reads_only_the_new_suffix(self):
        journal = EventJournal()
        journal.append(1.0, "a", 1)
        events, cursor = journal.read()
        assert events == [(1.0, "a", 1)]
        events, cursor = journal.read(cursor)
        assert events == []
        journal.append(2.0, "b", 2)
        events, cursor = journal.read(cursor)
        assert events == [(2.0, "b", 2)]
        assert cursor == JournalCursor(position=2, epoch=0)

    def test_stale_cursor_raises(self):
        journal = EventJournal()
        journal.append(5.0, "a", 1)
        _, cursor = journal.read()
        journal.append(1.0, "b", 2)  # reorders inside the consumed prefix
        with pytest.raises(StaleCursorError):
            journal.read(cursor)
        events, fresh = journal.read(None)
        assert [key for _, key, _ in events] == ["b", "a"]
        assert fresh.epoch == journal.epoch

    def test_insertion_in_unread_suffix_keeps_cursor_valid(self):
        journal = EventJournal()
        journal.append(10.0, "a", 1)
        journal.append(20.0, "b", 2)
        _, cursor = journal.read()
        journal.append(30.0, "a", 3)
        journal.append(25.0, "b", 4)  # out of order, but past the cursor
        assert journal.epoch == 1
        events, cursor = journal.read(cursor)  # must NOT raise
        assert events == [(25.0, "b", 4), (30.0, "a", 3)]
        events, _ = journal.read(cursor)
        assert events == []

    def test_read_flexible_matches_read_on_ordered_streams(self):
        journal = EventJournal()
        journal.append(1.0, "a", 1)
        rewound, events, cursor = journal.read_flexible()
        assert (rewound, events) == (0, [(1.0, "a", 1)])
        journal.append(2.0, "b", 2)
        rewound, events, cursor = journal.read_flexible(cursor)
        assert (rewound, events) == (0, [(2.0, "b", 2)])
        assert cursor == JournalCursor(position=2, epoch=0)

    def test_read_flexible_redelivers_reordered_suffix(self):
        journal = EventJournal()
        journal.append(10.0, "a", 1)
        journal.append(20.0, "b", 2)
        _, _, cursor = journal.read_flexible()
        journal.append(15.0, "c", 3)  # lands inside the consumed prefix
        rewound, events, cursor = journal.read_flexible(cursor)
        assert rewound == 1  # (20.0, b) was consumed and comes again
        assert events == [(15.0, "c", 3), (20.0, "b", 2)]
        rewound, events, _ = journal.read_flexible(cursor)
        assert (rewound, events) == (0, [])

    def test_read_flexible_rewinds_to_earliest_insertion(self):
        journal = EventJournal()
        for t, key in ((10.0, "a"), (20.0, "b"), (30.0, "c")):
            journal.append(t, key, 0)
        _, _, cursor = journal.read_flexible()
        journal.append(25.0, "x", 0)
        journal.append(15.0, "y", 0)
        rewound, events, _ = journal.read_flexible(cursor)
        assert rewound == 2  # b and c re-delivered, re-sorted with x and y
        assert [k for _, k, _ in events] == ["y", "b", "x", "c"]

    def test_read_flexible_ignores_insertions_in_unread_suffix(self):
        journal = EventJournal()
        journal.append(10.0, "a", 1)
        _, _, cursor = journal.read_flexible()
        journal.append(30.0, "b", 2)
        journal.append(20.0, "c", 3)  # out of order, but past the cursor
        rewound, events, _ = journal.read_flexible(cursor)
        assert rewound == 0
        assert [k for _, k, _ in events] == ["c", "b"]

    def test_subscribe_observes_appends_in_arrival_order(self):
        journal = EventJournal()
        journal.append(5.0, "before", 0)
        seen = []
        journal.subscribe(seen.append)
        journal.append(10.0, "a", 1)
        journal.append(7.0, "b", 2)  # out-of-order: listener still sees arrival
        assert seen == [(10.0, "a", 1), (7.0, "b", 2)]
        journal.unsubscribe(seen.append)
        journal.append(20.0, "c", 3)
        assert len(seen) == 2

    def test_cursor_state_round_trip(self):
        cursor = JournalCursor(position=7, epoch=2)
        assert JournalCursor.from_state(cursor.to_state()) == cursor
        with pytest.raises(ValueError):
            JournalCursor.from_state({"position": -1, "epoch": 0})

    def test_events_returns_a_copy(self):
        journal = EventJournal()
        journal.append(1.0, "a", 1)
        events = journal.events()
        events.clear()
        assert journal.events() == [(1.0, "a", 1)]


class TestTTKVJournalIntegration:
    def test_write_events_served_from_journal(self):
        store = TTKV()
        store.record_write("a", 1, 10.0)
        store.record_write("b", 2, 10.0)
        store.record_delete("a", 20.0)
        assert store.write_events() == [
            (10.0, "a", 1),
            (10.0, "b", 2),
            (20.0, "a", DELETED),
        ]
        assert store.journal.events() == store.write_events()

    def test_ties_keep_recording_order(self):
        store = TTKV()
        store.record_write("b", 1, 1.0)
        store.record_write("a", 2, 2.0)
        store.record_write("a", 3, 5.0)
        store.record_write("b", 4, 5.0)
        assert [(t, k) for t, k, _ in store.write_events()] == [
            (1.0, "b"), (2.0, "a"), (5.0, "a"), (5.0, "b"),
        ]
        assert store.journal.epoch == 0

    def test_cross_key_out_of_order_write_lands_sorted(self):
        store = TTKV()
        store.record_write("a", 1, 100.0)
        store.record_write("late", 2, 7.0)  # older timestamp, new key
        assert [k for _, k, _ in store.write_events()] == ["late", "a"]
        assert store.journal.epoch == 1

    def test_reads_do_not_touch_the_journal(self):
        store = TTKV()
        store.record_write("a", 1, 1.0)
        store.record_read("a", 2.0)
        store.record_reads("a", 10)
        assert len(store.journal) == 1

"""Tests for the prefix-sharded journal view."""

import pytest

from repro.ttkv.journal import EventJournal
from repro.ttkv.sharding import CATCH_ALL, ShardedJournal
from repro.ttkv.store import TTKV


class TestRouting:
    def test_longest_prefix_wins(self):
        view = ShardedJournal(EventJournal(), ["app/", "app/sub/"])
        assert view.route("app/x") == "app/"
        assert view.route("app/sub/x") == "app/sub/"
        assert view.route("other/x") == CATCH_ALL

    def test_without_catch_all_unmatched_keys_are_dropped(self):
        journal = EventJournal()
        view = ShardedJournal(journal, ["app/"], catch_all=False)
        journal.append(1.0, "app/a", 1)
        journal.append(2.0, "sys/noise", 1)
        assert view.route("sys/noise") is None
        assert len(view.shard("app/")) == 1
        assert len(view) == 1

    def test_key_filter_applies_before_routing(self):
        journal = EventJournal()
        view = ShardedJournal(journal, ["app/"], key_filter="app/a")
        journal.append(1.0, "app/a1", 1)
        journal.append(2.0, "app/b1", 1)
        assert [k for _, k, _ in view.shard("app/").events()] == ["app/a1"]
        assert len(view.shard(CATCH_ALL)) == 0

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            ShardedJournal(EventJournal(), [""])

    def test_no_shards_at_all_rejected(self):
        with pytest.raises(ValueError):
            ShardedJournal(EventJournal(), [], catch_all=False)

    def test_unknown_shard_lookup_raises(self):
        view = ShardedJournal(EventJournal(), ["app/"])
        with pytest.raises(KeyError):
            view.shard("ghost/")


class TestLiveRouting:
    def test_preexisting_events_are_ingested_on_attach(self):
        store = TTKV()
        store.record_write("a/x", 1, 1.0)
        store.record_write("b/y", 2, 2.0)
        view = ShardedJournal(store.journal, ["a/", "b/"])
        assert [k for _, k, _ in view.shard("a/").events()] == ["a/x"]
        assert [k for _, k, _ in view.shard("b/").events()] == ["b/y"]

    def test_future_appends_are_routed_live(self):
        store = TTKV()
        view = ShardedJournal(store.journal, ["a/"])
        store.record_write("a/x", 1, 1.0)
        store.record_write("noise", 1, 2.0)
        assert len(view.shard("a/")) == 1
        assert len(view.shard(CATCH_ALL)) == 1
        assert view.positions() == {"a/": 1, CATCH_ALL: 1}

    def test_same_tick_writes_straddling_prefixes(self):
        # with 1-second quantisation, two apps routinely write in the same
        # tick; each shard must keep its own arrival order and neither may
        # see a reorder
        store = TTKV()
        view = ShardedJournal(store.journal, ["a/", "b/"])
        store.record_write("b/1", 1, 10.0)
        store.record_write("a/1", 1, 10.0)
        store.record_write("b/2", 1, 10.0)
        store.record_write("a/2", 1, 10.0)
        assert [k for _, k, _ in view.shard("a/").events()] == ["a/1", "a/2"]
        assert [k for _, k, _ in view.shard("b/").events()] == ["b/1", "b/2"]
        assert view.shard("a/").epoch == 0
        assert view.shard("b/").epoch == 0

    def test_out_of_order_append_disturbs_only_its_shard(self):
        store = TTKV()
        view = ShardedJournal(store.journal, ["a/", "b/"])
        store.record_write("a/x", 1, 100.0)
        store.record_write("b/y", 1, 200.0)
        store.record_write("b/early", 1, 5.0)  # reorders globally and in b/
        assert view.shard("a/").epoch == 0
        assert view.shard("b/").epoch == 1
        assert [k for _, k, _ in view.shard("b/").events()] == ["b/early", "b/y"]

    def test_shard_stream_equals_filtered_global_stream(self):
        # per-shard order must be the global sorted order filtered by
        # prefix, including around an out-of-order insertion
        store = TTKV()
        view = ShardedJournal(store.journal, ["a/", "b/"])
        store.record_write("a/1", 1, 10.0)
        store.record_write("b/1", 1, 10.0)
        store.record_write("a/2", 1, 30.0)
        store.record_write("b/2", 1, 10.0)  # insertion among the 10.0 ties
        for prefix in ("a/", "b/"):
            filtered = [e for e in store.journal.events() if e[1].startswith(prefix)]
            assert view.shard(prefix).events() == filtered

    def test_detach_stops_routing(self):
        store = TTKV()
        view = ShardedJournal(store.journal, ["a/"])
        store.record_write("a/x", 1, 1.0)
        view.detach()
        store.record_write("a/y", 1, 2.0)
        assert len(view.shard("a/")) == 1
        view.detach()  # idempotent

    def test_shard_ids_and_prefixes(self):
        view = ShardedJournal(EventJournal(), ["b/", "a/"])
        assert view.shard_ids == ("a/", "b/", CATCH_ALL)
        assert view.prefixes == ("a/", "b/")
        assert view.has_catch_all

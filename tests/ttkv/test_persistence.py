"""Tests for the TTKV append-only JSONL log."""

import io

import pytest

from repro.exceptions import PersistenceError
from repro.ttkv.persistence import load_entries, load_ttkv, save_ttkv
from repro.ttkv.store import DELETED, TTKV


@pytest.fixture
def sample_store() -> TTKV:
    store = TTKV()
    store.record_write("a", 1, 1.0)
    store.record_write("b", "text", 2.0)
    store.record_delete("a", 3.0)
    store.record_write("c", [1, "two", None], 4.0)
    return store


class TestSaveLoad:
    def test_roundtrip_preserves_modifications(self, sample_store, tmp_path):
        path = tmp_path / "log.jsonl"
        count = save_ttkv(sample_store, path)
        assert count == 4
        loaded = load_ttkv(path)
        assert loaded.write_events() == sample_store.write_events()

    def test_roundtrip_preserves_deletions(self, sample_store, tmp_path):
        path = tmp_path / "log.jsonl"
        save_ttkv(sample_store, path)
        loaded = load_ttkv(path)
        assert loaded.current_value("a") is DELETED

    def test_roundtrip_preserves_counts(self, sample_store, tmp_path):
        path = tmp_path / "log.jsonl"
        save_ttkv(sample_store, path)
        loaded = load_ttkv(path)
        assert loaded.total_writes() == 3
        assert loaded.total_deletes() == 1

    def test_empty_store(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert save_ttkv(TTKV(), path) == 0
        assert len(load_ttkv(path)) == 0

    def test_reads_not_persisted(self, tmp_path):
        store = TTKV()
        store.record_write("a", 1, 1.0)
        store.record_read("a", 2.0)
        path = tmp_path / "log.jsonl"
        save_ttkv(store, path)
        assert load_ttkv(path).total_reads() == 0


class TestValidation:
    def test_invalid_json_line(self):
        with pytest.raises(PersistenceError, match="invalid JSON"):
            list(load_entries(io.StringIO("{not json}\n")))

    def test_non_object_line(self):
        with pytest.raises(PersistenceError, match="expected object"):
            list(load_entries(io.StringIO("[1, 2]\n")))

    def test_missing_field(self):
        with pytest.raises(PersistenceError, match="missing field"):
            list(load_entries(io.StringIO('{"t": 1, "k": "a"}\n')))

    def test_unknown_op(self):
        with pytest.raises(PersistenceError, match="unknown op"):
            list(load_entries(io.StringIO('{"t": 1, "k": "a", "op": "z"}\n')))

    def test_write_without_value(self):
        with pytest.raises(PersistenceError, match="missing value"):
            list(load_entries(io.StringIO('{"t": 1, "k": "a", "op": "w"}\n')))

    def test_blank_lines_skipped(self):
        entries = list(
            load_entries(io.StringIO('\n{"t": 1, "k": "a", "op": "d"}\n\n'))
        )
        assert len(entries) == 1

    def test_read_entries_accepted(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"t": 1, "k": "a", "op": "r"}\n')
        store = load_ttkv(path)
        assert store.total_reads() == 1

"""Columnar journal ≡ list journal: backend parity and persistence.

The contract under test: a :class:`ColumnarJournal` is observably identical
to the pure-Python :class:`EventJournal` — same events, same cursors, same
reorder accounting — for any append sequence, including out-of-order ones,
at any segment size.  Persistence round-trips (mmap and copy modes) and the
interned batch hand-off codec preserve that equality, and journal reads are
zero-copy views over the sealed segments.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import PersistenceError, StaleCursorError
from repro.ttkv.columnar import (
    BACKEND_AUTO,
    BACKEND_COLUMNAR,
    BACKEND_LIST,
    ColumnarJournal,
    ColumnarView,
    columnar_available,
    journal_backend,
    load_columnar,
    make_journal,
    resolve_backend,
    save_columnar,
)
from repro.ttkv.journal import (
    EventJournal,
    EventSliceView,
    JournalCursor,
    decode_event_batch,
    encode_event_batch,
)
from repro.ttkv.store import DELETED

np = pytest.importorskip("numpy")


# -- strategies ---------------------------------------------------------------

_values = st.one_of(
    st.integers(min_value=-5, max_value=9),
    st.sampled_from(["on", "", "Consolas,11"]),
    st.booleans(),
    st.none(),
    st.just(DELETED),
    st.lists(st.integers(min_value=0, max_value=3), max_size=3),
)

# timestamps from a small grid so duplicates and out-of-order pairs are common
_events = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=40, allow_nan=False).map(
            lambda t: round(t * 4) / 4
        ),
        st.sampled_from(["app/a", "app/b", "sys/c", "sys/d"]),
        _values,
    ),
    min_size=0,
    max_size=40,
)

_segment_sizes = st.sampled_from([1, 2, 3, 7, 4096])


def _fill(journal, events):
    for timestamp, key, value in events:
        journal.append(timestamp, key, value)


def _paired(events, segment_size):
    columnar = ColumnarJournal(segment_size=segment_size)
    reference = EventJournal()
    _fill(columnar, events)
    _fill(reference, events)
    return columnar, reference


# -- parity -------------------------------------------------------------------

@given(_events, _segment_sizes)
@settings(max_examples=80, deadline=None)
def test_full_stream_parity(events, segment_size):
    """events()/len/epoch/insertions match the list journal exactly."""
    columnar, reference = _paired(events, segment_size)
    assert columnar.events() == reference.events()
    assert len(columnar) == len(reference)
    assert columnar.epoch == reference.epoch
    assert columnar._insertions == reference._insertions


@given(_events, _segment_sizes, st.integers(min_value=0, max_value=45))
@settings(max_examples=60, deadline=None)
def test_suffix_and_point_reads_parity(events, segment_size, position):
    columnar, reference = _paired(events, segment_size)
    bound = min(position, len(reference))
    assert columnar.events_from(bound) == reference.events_from(bound).materialize()
    if bound < len(reference):
        assert columnar.event_at(bound) == reference.event_at(bound)
    if len(reference):
        assert columnar.event_at(-1) == reference.event_at(-1)


@given(_events, _segment_sizes, st.data())
@settings(max_examples=60, deadline=None)
def test_cursor_reads_parity(events, segment_size, data):
    """read/read_flexible agree with the reference, cut at a random point."""
    cut = data.draw(st.integers(min_value=0, max_value=len(events)))
    columnar, reference = _paired(events[:cut], segment_size)
    view_c, cursor_c = columnar.read(None)
    view_r, cursor_r = reference.read(None)
    assert view_c == view_r.materialize()
    assert cursor_c == cursor_r
    _fill(columnar, events[cut:])
    _fill(reference, events[cut:])
    assert columnar.reorder_depth(cursor_c) == reference.reorder_depth(cursor_r)
    try:
        tail_r, next_r = reference.read(cursor_r)
    except StaleCursorError:
        with pytest.raises(StaleCursorError):
            columnar.read(cursor_c)
    else:
        tail_c, next_c = columnar.read(cursor_c)
        assert tail_c == tail_r.materialize()
        assert next_c == next_r
    rew_c, flex_c, fc = columnar.read_flexible(cursor_c)
    rew_r, flex_r, fr = reference.read_flexible(cursor_r)
    assert (rew_c, fc) == (rew_r, fr)
    assert flex_c == flex_r.materialize()


@given(_events, _segment_sizes)
@settings(max_examples=50, deadline=None)
def test_batch_codec_round_trip(events, segment_size):
    """encode_event_batch(view) decodes to the original events, both backends."""
    columnar, reference = _paired(events, segment_size)
    payload_c = encode_event_batch(columnar.events_from(0))
    payload_r = encode_event_batch(reference.events_from(0))
    assert decode_event_batch(payload_c) == reference.events()
    assert decode_event_batch(payload_r) == reference.events()
    # payloads are JSON-shaped: ship each distinct key/value once
    json.dumps(payload_r)
    assert len(payload_c["keys"]) == len(set(k for _, k, _ in reference.events()))


@given(_events, _segment_sizes, st.integers(min_value=0, max_value=30))
@settings(max_examples=50, deadline=None)
def test_view_slicing_parity(events, segment_size, start):
    columnar, reference = _paired(events, segment_size)
    view = columnar.events_from(0)
    expected = reference.events()
    stop = min(start + 7, len(expected))
    begin = min(start, len(expected))
    assert list(view[begin:stop]) == expected[begin:stop]
    assert view[begin:stop] == expected[begin:stop]


# -- persistence --------------------------------------------------------------

@given(_events, _segment_sizes, st.booleans())
@settings(max_examples=40, deadline=None)
def test_save_load_round_trip(tmp_path_factory, events, segment_size, mmap):
    path = str(tmp_path_factory.mktemp("journal") / "journal.npy")
    columnar, reference = _paired(events, segment_size)
    save_columnar(columnar, path)
    loaded = load_columnar(path, mmap=mmap)
    assert loaded.events() == reference.events()
    assert loaded._insertions == reference._insertions
    # the journal stays appendable after a resume
    loaded.append(1e9, "app/a", 1)
    reference.append(1e9, "app/a", 1)
    assert loaded.events() == reference.events()


def test_save_converts_list_journal(tmp_path):
    reference = EventJournal()
    reference.append(5.0, "k", 1)
    reference.append(1.0, "k", DELETED)  # out of order: insertion recorded
    path = str(tmp_path / "j.npy")
    save_columnar(reference, path)
    loaded = load_columnar(path)
    assert loaded.events() == reference.events()
    assert loaded._insertions == reference._insertions


def test_mmap_load_is_lazy(tmp_path):
    journal = ColumnarJournal()
    for t in range(100):
        journal.append(float(t), f"k{t % 5}", t)
    path = str(tmp_path / "j.npy")
    save_columnar(journal, path)
    loaded = load_columnar(path, mmap=True)
    segment = loaded._segments[0]
    assert isinstance(segment, np.memmap)
    assert loaded.events() == journal.events()


def test_corrupt_meta_rejected(tmp_path):
    journal = ColumnarJournal()
    journal.append(1.0, "k", 1)
    path = str(tmp_path / "j.npy")
    save_columnar(journal, path)
    meta = json.loads((tmp_path / "j.npy.meta").read_text())
    meta["count"] += 1
    (tmp_path / "j.npy.meta").write_text(json.dumps(meta))
    with pytest.raises(PersistenceError):
        load_columnar(path)


def test_unserialisable_value_rejected_only_at_save(tmp_path):
    journal = ColumnarJournal()
    journal.append(1.0, "k", object())  # in-memory: fine
    assert journal.events()[0][2] is journal.events()[0][2]
    with pytest.raises(PersistenceError):
        save_columnar(journal, str(tmp_path / "j.npy"))


# -- zero-copy ----------------------------------------------------------------

def test_events_from_is_zero_copy_over_sealed_segments():
    journal = ColumnarJournal(segment_size=8)
    for t in range(32):
        journal.append(float(t), "k", t)
    view = journal.events_from(0)
    assert isinstance(view, ColumnarView)
    sealed = [c for c in view._chunks if not isinstance(c, tuple)]
    assert sealed, "expected sealed segment chunks in the view"
    assert all(
        any(np.shares_memory(chunk, seg) for seg in journal._segments)
        for chunk in sealed
    )


def test_list_backend_events_from_is_a_lazy_view():
    journal = EventJournal()
    journal.append(1.0, "a", 1)
    view = journal.events_from(0)
    assert isinstance(view, EventSliceView)
    # events appended later are NOT visible: the view pins its window
    journal.append(2.0, "b", 2)
    assert view == [(1.0, "a", 1)]
    assert journal.events_from(0) == [(1.0, "a", 1), (2.0, "b", 2)]


def test_views_are_not_hashable():
    journal = ColumnarJournal()
    journal.append(1.0, "k", 1)
    with pytest.raises(TypeError):
        hash(journal.events_from(0))


# -- backend resolution -------------------------------------------------------

def test_resolution_with_numpy_present():
    assert columnar_available()
    assert resolve_backend(BACKEND_AUTO) == BACKEND_COLUMNAR
    assert isinstance(make_journal(BACKEND_COLUMNAR), ColumnarJournal)
    assert isinstance(make_journal(BACKEND_LIST), EventJournal)
    assert journal_backend(make_journal(BACKEND_AUTO)) == BACKEND_COLUMNAR


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        resolve_backend("redis")


def test_no_numpy_fallback(monkeypatch):
    import repro.ttkv.columnar as columnar_module

    monkeypatch.setattr(columnar_module, "_np", None)
    assert not columnar_available()
    assert resolve_backend(BACKEND_AUTO) == BACKEND_LIST
    assert isinstance(make_journal(BACKEND_AUTO), EventJournal)
    with pytest.raises(RuntimeError):
        resolve_backend(BACKEND_COLUMNAR)


# -- cursor invariants shared by both backends --------------------------------

def test_cursor_round_trips_through_state():
    journal = ColumnarJournal()
    journal.append(1.0, "k", 1)
    _, cursor = journal.read(None)
    assert JournalCursor.from_state(cursor.to_state()) == cursor

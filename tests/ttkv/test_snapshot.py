"""Tests for snapshot views and rollback plans."""

import pytest

from repro.exceptions import KeyNotTrackedError
from repro.ttkv.snapshot import RollbackPlan, SnapshotView, rollback_plan
from repro.ttkv.store import DELETED, MISSING, TTKV


@pytest.fixture
def history_store() -> TTKV:
    store = TTKV()
    store.record_write("alive", "v1", 1.0)
    store.record_write("alive", "v2", 10.0)
    store.record_write("gone", "x", 2.0)
    store.record_delete("gone", 5.0)
    store.record_write("late", "z", 20.0)
    return store


class TestSnapshotView:
    def test_reads_value_at_time(self, history_store):
        view = SnapshotView(history_store, 3.0)
        assert view["alive"] == "v1"

    def test_deleted_key_raises_keyerror(self, history_store):
        view = SnapshotView(history_store, 6.0)
        with pytest.raises(KeyError):
            view["gone"]

    def test_not_yet_written_key_raises(self, history_store):
        view = SnapshotView(history_store, 3.0)
        with pytest.raises(KeyError):
            view["late"]

    def test_iteration_yields_live_keys_only(self, history_store):
        assert set(SnapshotView(history_store, 6.0)) == {"alive"}
        assert set(SnapshotView(history_store, 25.0)) == {"alive", "late"}

    def test_len_counts_live_keys(self, history_store):
        assert len(SnapshotView(history_store, 3.0)) == 2
        assert len(SnapshotView(history_store, 6.0)) == 1

    def test_state_of_exposes_sentinels(self, history_store):
        view = SnapshotView(history_store, 6.0)
        assert view.state_of("gone") is DELETED
        assert view.state_of("late") is MISSING

    def test_mapping_get(self, history_store):
        view = SnapshotView(history_store, 6.0)
        assert view.get("gone", "fallback") == "fallback"


class _FakeStore:
    def __init__(self):
        self.data = {}

    def set(self, key, value):
        self.data[key] = value

    def delete(self, key):
        self.data.pop(key, None)


class TestRollbackPlan:
    def test_build_plan_captures_values(self, history_store):
        plan = rollback_plan(history_store, ["alive", "gone"], 3.0)
        assert plan.assignments == {"alive": "v1", "gone": "x"}

    def test_plan_records_deletions(self, history_store):
        plan = rollback_plan(history_store, ["gone"], 6.0)
        assert plan.assignments["gone"] is DELETED

    def test_plan_records_missing(self, history_store):
        plan = rollback_plan(history_store, ["late"], 3.0)
        assert plan.assignments["late"] is MISSING

    def test_unknown_key_raises(self, history_store):
        with pytest.raises(KeyNotTrackedError):
            rollback_plan(history_store, ["ghost"], 3.0)

    def test_apply_sets_and_deletes(self, history_store):
        target = _FakeStore()
        target.data = {"gone": "stale", "alive": "stale"}
        plan = rollback_plan(history_store, ["alive", "gone"], 6.0)
        plan.apply_to(target)
        assert target.data == {"alive": "v1"}

    def test_apply_missing_deletes(self):
        target = _FakeStore()
        target.data = {"late": "stale"}
        RollbackPlan(0.0, {"late": MISSING}).apply_to(target)
        assert target.data == {}

    def test_len(self, history_store):
        plan = rollback_plan(history_store, ["alive"], 3.0)
        assert len(plan) == 1
        assert plan.keys() == ["alive"]

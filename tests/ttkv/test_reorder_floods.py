"""Reorder buffer under duplicate/late-event floods (property suite).

:func:`repro.scenarios.regimes.flooded_delivery` models the hostile
collection path of the clock-skew scenarios: a bounded window of the
stream arrives shuffled, some events twice — with per-key timestamp
order preserved, exactly what real loggers guarantee.  These properties
pin the whole reorder stack against it:

- the flood itself is sound (a permutation plus duplicates, per-key
  monotone) — so every downstream guarantee is tested against a
  *legal* hostile stream, not one the TTKV would reject;
- list and columnar journal backends land on identical clusters at
  every prefix of the flood, and both equal the batch model over the
  journal so far;
- the engines' ``reorders_absorbed``/``rebuilt`` accounting stays
  *exact*: each update's stats are predicted beforehand from the
  journal's ``reorder_depth`` and the extractor's provisional state —
  the absorb-vs-rebuild decision rule itself — not merely summed.
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.scenarios.regimes import flooded_delivery, skew_timestamps
from repro.ttkv.columnar import columnar_available
from repro.ttkv.store import TTKV

_KEYS = ("mail/a", "mail/b", "mail/c", "edit/x", "edit/y", "sys/z")

BACKENDS = ("list", "columnar") if columnar_available() else ("list",)

_streams = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=400, allow_nan=False),
        st.sampled_from(_KEYS),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=40,
)

_flood_params = st.tuples(
    st.floats(min_value=0.0, max_value=0.5),  # duplicate_fraction
    st.floats(min_value=0.0, max_value=0.6),  # late_fraction
    st.integers(min_value=1, max_value=12),   # max_displacement
    st.integers(min_value=0, max_value=2**32 - 1),  # delivery seed
)


def _journal_order(stream):
    return sorted(stream, key=lambda event: event[0])


def _flood(events, params):
    duplicate_fraction, late_fraction, max_displacement, seed = params
    return flooded_delivery(
        events,
        duplicate_fraction=duplicate_fraction,
        late_fraction=late_fraction,
        max_displacement=max_displacement,
        rng=random.Random(seed),
    )


def _key_sets(cluster_set):
    return sorted(tuple(cluster.sorted_keys()) for cluster in cluster_set)


@given(_streams, _flood_params)
@settings(max_examples=60, deadline=None)
def test_flood_is_a_legal_per_key_monotone_shuffle(stream, params):
    """The flood permutes + duplicates, never bending per-key time order."""
    events = _journal_order(stream)
    delivered = _flood(events, params)

    # every original event is delivered; extras are exact duplicates
    extras = Counter(delivered) - Counter(events)
    assert not Counter(events) - Counter(delivered)
    assert set(extras) <= set(events)

    # per-key timestamps never regress in delivery order
    last_seen: dict[str, float] = {}
    for timestamp, key, _value in delivered:
        assert timestamp >= last_seen.get(key, float("-inf"))
        last_seen[key] = timestamp

    # a TTKV accepts the delivery verbatim (per-key monotonicity holds)
    store = TTKV()
    store.record_events(delivered)
    assert len(store.write_events()) == len(delivered)


@given(_streams, _flood_params, st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_backends_and_batch_agree_at_every_prefix(stream, params, chunks):
    """list ≡ columnar ≡ batch clusters after every delivered chunk."""
    delivered = _flood(_journal_order(stream), params)
    size = max(1, -(-len(delivered) // chunks))
    pipelines = {}
    for backend in BACKENDS:
        store = TTKV(journal_backend=backend)
        pipelines[backend] = (store, ShardedPipeline(store, journal_backend=backend))
    try:
        for start in range(0, len(delivered), size):
            chunk = delivered[start : start + size]
            models = {}
            for backend, (store, pipeline) in pipelines.items():
                store.record_events(chunk)
                models[backend] = _key_sets(pipeline.update())
            reference_store = TTKV()
            reference_store.record_events(delivered[: start + len(chunk)])
            batch = _key_sets(cluster_settings(reference_store))
            for backend, model in models.items():
                assert model == batch, f"{backend} diverged from batch"
    finally:
        for _store, pipeline in pipelines.values():
            pipeline.close()


@given(_streams, _flood_params, st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_reorder_accounting_is_exact(stream, params, chunks):
    """Each update's absorbed/rebuilt stats match the decision-rule oracle.

    Before every update the expected outcome is derived from first
    principles: ``reorder_depth`` says how far re-delivery reaches into
    the consumed prefix, and the absorb rule (rewind fits inside the
    provisional trailing group, or swallows exactly the whole pending
    buffer before any group has closed) picks absorb vs rebuild.
    """
    delivered = _flood(_journal_order(stream), params)
    store = TTKV()
    pipeline = ShardedPipeline(store)
    (engine,) = pipeline._engines.values()
    size = max(1, -(-len(delivered) // chunks))
    try:
        for start in range(0, len(delivered), size):
            store.record_events(delivered[start : start + size])
            cursor = engine._cursor
            rewound = (
                0 if cursor is None else engine.journal.reorder_depth(cursor)
            )
            pending = len(engine._extractor.pending_events)
            closed = engine._closed_count
            if rewound == 0:
                expect_absorbed, expect_rebuilt = 0, False
            elif rewound < pending or (rewound == pending and closed == 0):
                expect_absorbed, expect_rebuilt = rewound, False
            else:
                expect_absorbed, expect_rebuilt = 0, True
            pipeline.update()
            stats = pipeline.last_stats
            assert stats.reorders_absorbed == expect_absorbed
            assert stats.rebuilt == expect_rebuilt
    finally:
        pipeline.close()


@given(
    _streams,
    st.floats(min_value=0, max_value=90, allow_nan=False),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_skew_preserves_order_and_clusters(stream, max_skew, seed):
    """A constant clock offset never changes the cluster model."""
    events = _journal_order(stream)
    skewed = skew_timestamps(
        events, max_skew_seconds=max_skew, rng=random.Random(seed)
    )
    assert [event[0] for event in skewed] == sorted(
        event[0] for event in skewed
    )
    base = TTKV()
    base.record_events(events)
    shifted = TTKV()
    shifted.record_events(skewed)
    # flooring at zero can merge the earliest groups, so the cluster
    # equality only holds when no timestamp was clamped (a uniform shift)
    offset = skewed[0][0] - events[0][0] if events else 0.0
    unclamped = all(
        abs((skewed[i][0] - events[i][0]) - offset) < 1e-9
        for i in range(len(events))
    )
    if unclamped:
        assert _key_sets(cluster_settings(base)) == _key_sets(
            cluster_settings(shifted)
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_worked_flood_example_absorbs_and_rebuilds(backend):
    """A deterministic flood hits both the absorb and the rebuild paths."""
    rng = random.Random(20140623)
    # bursts of five 1s-apart events, 20s between bursts: with window 5
    # each burst is one write group that closes at the next burst, so a
    # displaced event lands either in the open trailing burst (absorb)
    # or across the boundary into a closed one (rebuild) — the example
    # must walk both paths
    events = _journal_order(
        [
            (burst * 20.0 + position, _KEYS[(burst + position) % len(_KEYS)], burst)
            for burst in range(24)
            for position in range(5)
        ]
    )
    delivered = flooded_delivery(
        events,
        duplicate_fraction=0.2,
        late_fraction=0.4,
        max_displacement=10,
        rng=rng,
    )
    store = TTKV(journal_backend=backend)
    pipeline = ShardedPipeline(store, window=5.0, journal_backend=backend)
    absorbed = rebuilds = 0
    try:
        for start in range(0, len(delivered), 7):
            store.record_events(delivered[start : start + 7])
            pipeline.update()
            absorbed += pipeline.last_stats.reorders_absorbed
            rebuilds += int(pipeline.last_stats.rebuilt)
        final = _key_sets(pipeline.update())
    finally:
        pipeline.close()
    assert absorbed > 0, "flood never exercised the absorb path"
    assert rebuilds > 0, "flood never exercised the rebuild path"
    assert final == _key_sets(cluster_settings(store, window=5.0))

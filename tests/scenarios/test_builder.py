"""Scenario builder: populations, regimes and the stream runner's gate."""

import pytest

pytest.importorskip("pydantic", reason="scenario builder needs the scenarios extra")
pytest.importorskip("yaml", reason="scenario builder needs the scenarios extra")

from repro.scenarios.build import build_scenario, derive_seed
from repro.scenarios.config import scenario_from_dict
from repro.scenarios.runner import run_stream_scenario


def _config(**overrides):
    data = {
        "name": "build-unit",
        "seed": 1234,
        "population": [{"profile": "Linux-1", "machines": 2, "days": 1}],
        "regime": {"kind": "clock_skew"},
        "fleet": {"rounds": 3},
    }
    data.update(overrides)
    return scenario_from_dict(data, env={})


def test_population_expands_with_schedule_and_prefixes():
    config = _config(
        population=[
            {"profile": "Linux-1", "machines": 2, "days": 1},
            {"profile": "Linux-2", "machines": 1, "days": 1, "join_round": 2},
            {"profile": "Linux-1", "machines": 1, "days": 1, "leave_round": 2},
        ],
        regime={"kind": "heterogeneous", "min_profiles": 2},
    )
    built = build_scenario(config)
    assert [m.machine_id for m in built.machines] == [
        "m000", "m001", "m002", "m003",
    ]
    assert built.machines[2].profile_name == "Linux-2"
    assert built.machines[2].join_round == 2
    assert built.machines[3].leave_round == 2
    for machine in built.machines:
        assert machine.shard_prefixes, "machines must carry shard prefixes"
        assert machine.events, "every machine generates a trace"
        # heterogeneous regime leaves delivery == canonical order
        assert machine.delivery == machine.events
    assert built.machine("m001") is built.machines[1]
    with pytest.raises(KeyError, match="ghost"):
        built.machine("ghost")


def test_activity_skew_decays_down_the_rank_order():
    config = _config(
        population=[
            {
                "profile": "Linux-1",
                "machines": 3,
                "days": 1,
                "activity_scale": 4.0,
                "activity_skew": 1.0,
            }
        ],
        regime={"kind": "clock_skew", "late_fraction": 0.0,
                "duplicate_fraction": 0.0, "max_skew_seconds": 0.0},
    )
    built = build_scenario(config)
    scales = [machine.notes["scale"] for machine in built.machines]
    assert scales == sorted(scales, reverse=True)
    assert scales[0] == pytest.approx(4.0)
    assert scales[1] == pytest.approx(2.0)


def test_flash_crowd_participants_share_canonical_keys():
    config = _config(
        population=[{"profile": "Linux-2", "machines": 3, "days": 1}],
        regime={
            "kind": "flash_crowd",
            "app": "Chrome Browser",
            "keys": 4,
            "waves": 2,
            "coverage": 1.0,
            "window_seconds": 20.0,
        },
    )
    built = build_scenario(config)
    assert all(m.notes["flash_crowd"] is True for m in built.machines)
    per_machine_keys = []
    for machine in built.machines:
        keys = {key for _t, key, _v in machine.events}
        per_machine_keys.append(keys)
    shared = set.intersection(*per_machine_keys)
    prefix = built.machines[0].shard_prefixes[0]
    crowd = {key for key in shared if key.startswith(prefix)}
    assert len(crowd) >= 4, "the rollout keys must appear on every machine"


def test_flash_crowd_coverage_zero_point_means_bystanders():
    config = _config(
        population=[{"profile": "Linux-2", "machines": 6, "days": 1}],
        regime={
            "kind": "flash_crowd",
            "app": "Chrome Browser",
            "keys": 3,
            "coverage": 0.4,
        },
    )
    built = build_scenario(config)
    flags = [m.notes["flash_crowd"] for m in built.machines]
    assert any(flags) and not all(flags), (
        "partial coverage should split the population (seeded, so stable)"
    )


def test_churn_storm_scatters_bounded_bucket_bursts():
    config = _config(
        population=[{"profile": "Linux-1", "machines": 1, "days": 1}],
        regime={
            "kind": "churn_storm",
            "keys": 200,
            "writes_per_machine": 120,
            "bucket_size": 10,
            "min_gap_seconds": 3.0,
        },
    )
    built = build_scenario(config)
    machine = built.machines[0]
    assert machine.notes["scatter_writes"] >= 120
    scatter_keys = {
        key for _t, key, _v in machine.events if key.startswith("scatter/")
    }
    assert scatter_keys
    # every scattered key comes from the fixed, zero-padded pool
    assert all(key.startswith("scatter/key") for key in scatter_keys)


def test_clock_skew_delivery_reorders_but_never_bends_per_key_time():
    config = _config(
        regime={
            "kind": "clock_skew",
            "max_skew_seconds": 30.0,
            "duplicate_fraction": 0.2,
            "late_fraction": 0.4,
            "max_displacement": 8,
        },
    )
    built = build_scenario(config)
    reordered = 0
    for machine in built.machines:
        assert len(machine.delivery) >= len(machine.events)
        if machine.delivery != machine.events:
            reordered += 1
        assert machine.notes["duplicates"] == (
            len(machine.delivery) - len(machine.events)
        )
        last_seen = {}
        for timestamp, key, _value in machine.delivery:
            assert timestamp >= last_seen.get(key, float("-inf"))
            last_seen[key] = timestamp
    assert reordered, "the flood regime never actually shuffled a stream"


def test_inject_case_lands_on_the_selected_machine():
    config = _config(
        population=[{"profile": "Linux-1", "machines": 2, "days": 1}],
        regime={"kind": "heterogeneous", "min_profiles": 1},
        inject_case={"case_id": 8, "machine_index": 1, "days_before_end": 0.5},
    )
    built = build_scenario(config)
    assert "injected_case" not in built.machines[0].notes
    assert built.machines[1].notes["injected_case"] == 8


def test_derive_seed_is_stable_and_path_sensitive():
    assert derive_seed(7, "trace", "m000") == derive_seed(7, "trace", "m000")
    assert derive_seed(7, "trace", "m000") != derive_seed(7, "trace", "m001")
    assert derive_seed(7, "trace", "m000") != derive_seed(8, "trace", "m000")
    assert derive_seed(7, "a", "bc") != derive_seed(7, "ab", "c")


def test_stream_runner_gates_incremental_against_batch():
    built = build_scenario(_config())
    result = run_stream_scenario(built, chunk_events=40)
    assert result.equal_to_batch is True
    assert result.machine_id == "m000"
    assert result.events == len(built.machines[0].delivery)
    assert result.updates >= 1
    assert len(result.clusters) >= 1


class TestCorrelatedFaults:
    def _config(self, **regime_overrides):
        regime = {
            "kind": "correlated_faults",
            "case_id": 9,
            "coverage": 0.8,
            "days_before_end": 0.5,
            "crash_round": 2,
            "crash_coverage": 0.5,
        }
        regime.update(regime_overrides)
        return _config(
            population=[{"profile": "Linux-1", "machines": 4, "days": 1}],
            regime=regime,
            fleet={"rounds": 4},
        )

    def test_covered_machines_share_the_same_case(self):
        from repro.scenarios.build import correlated_crash_machines

        built = build_scenario(self._config(coverage=1.0))
        injected = [
            machine.notes.get("injected_case") for machine in built.machines
        ]
        assert injected == [9, 9, 9, 9]
        crashed = correlated_crash_machines(built)
        assert crashed
        assert set(crashed) <= {m.machine_id for m in built.machines}
        # the crash pick is a pure function of the seed
        assert crashed == correlated_crash_machines(
            build_scenario(self._config(coverage=1.0))
        )

    def test_crash_coverage_one_crashes_everyone(self):
        from repro.scenarios.build import correlated_crash_machines

        built = build_scenario(self._config(crash_coverage=1.0))
        assert correlated_crash_machines(built) == [
            machine.machine_id for machine in built.machines
        ]

    def test_wrong_regime_is_rejected(self):
        from repro.scenarios.build import correlated_crash_machines
        from repro.scenarios.config import ScenarioConfigError

        built = build_scenario(_config())
        with pytest.raises(ScenarioConfigError, match="correlated_faults"):
            correlated_crash_machines(built)

    def test_fleet_runner_recovers_through_scheduled_crashes(self):
        from repro.scenarios.runner import (
            run_fleet_scenario,
            scenario_resilience,
        )

        built = build_scenario(self._config())
        resilience = scenario_resilience(built)
        assert resilience is not None
        result = run_fleet_scenario(built)
        assert result.equal_to_batch is True
        assert result.machines_restarted >= 1
        assert result.faults_injected >= 1

    def test_non_fault_regimes_imply_no_resilience(self):
        from repro.scenarios.runner import scenario_resilience

        assert scenario_resilience(build_scenario(_config())) is None

"""Seeded determinism: same scenario, same seed ⇒ identical journal bytes.

Every random decision a scenario makes — per-machine traces, regime
participation, clock offsets, delivery shuffles, injected error values —
must derive from ``config.seed`` through ``stable_hash``.  These tests
pin that end to end: two independent builds of the same config produce
byte-identical persisted journals, and changing the seed actually
changes the streams (the determinism is not vacuous).
"""

import filecmp

import pytest

pytest.importorskip("pydantic", reason="scenario builder needs the scenarios extra")
pytest.importorskip("yaml", reason="scenario builder needs the scenarios extra")

from repro.scenarios.build import build_scenario
from repro.scenarios.config import scenario_from_dict
from repro.ttkv.persistence import save_ttkv
from repro.ttkv.store import TTKV

_REGIMES = {
    "flash_crowd": {
        "kind": "flash_crowd",
        "app": "Chrome Browser",
        "keys": 4,
        "waves": 2,
        "coverage": 0.8,
    },
    "churn_storm": {
        "kind": "churn_storm",
        "keys": 100,
        "writes_per_machine": 60,
        "bucket_size": 10,
    },
    "clock_skew": {
        "kind": "clock_skew",
        "duplicate_fraction": 0.15,
        "late_fraction": 0.3,
    },
    "heterogeneous": {"kind": "heterogeneous", "min_profiles": 2},
    "correlated_faults": {
        "kind": "correlated_faults",
        "case_id": 9,
        "coverage": 0.9,
        "crash_round": 2,
        "crash_coverage": 0.6,
    },
}


def _config(kind, seed=4321):
    population = [{"profile": "Linux-2", "machines": 2, "days": 1}]
    if kind in (
        "churn_storm", "clock_skew", "heterogeneous", "correlated_faults"
    ):
        population = [
            {"profile": "Linux-1", "machines": 1, "days": 1},
            {"profile": "Linux-2", "machines": 1, "days": 1},
        ]
    return scenario_from_dict(
        {
            "name": f"determinism-{kind}",
            "seed": seed,
            "population": population,
            "regime": _REGIMES[kind],
            "fleet": {"rounds": 2},
        },
        env={},
    )


@pytest.mark.parametrize("kind", sorted(_REGIMES), ids=str)
def test_same_seed_builds_identical_journal_bytes(kind, tmp_path):
    journals = []
    for attempt in ("first", "second"):
        built = build_scenario(_config(kind))
        paths = []
        for machine in built.machines:
            store = TTKV()
            store.record_events(machine.delivery)
            path = tmp_path / f"{attempt}-{machine.machine_id}.jsonl"
            save_ttkv(store, path)
            paths.append(path)
        journals.append(paths)
    for first, second in zip(*journals):
        assert filecmp.cmp(first, second, shallow=False), (
            f"{kind}: journals diverged between two builds of the same seed"
        )
    # the delivery *order* is part of the contract, not just the journal
    rebuilt_one = build_scenario(_config(kind))
    rebuilt_two = build_scenario(_config(kind))
    for one, two in zip(rebuilt_one.machines, rebuilt_two.machines):
        assert one.delivery == two.delivery
        assert one.events == two.events
        assert one.notes == two.notes


@pytest.mark.parametrize("kind", sorted(_REGIMES), ids=str)
def test_different_seeds_build_different_streams(kind):
    base = build_scenario(_config(kind, seed=4321))
    other = build_scenario(_config(kind, seed=9876))
    assert any(
        one.delivery != two.delivery
        for one, two in zip(base.machines, other.machines)
    ), f"{kind}: the seed had no effect on the built streams"

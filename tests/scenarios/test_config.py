"""Three-layer scenario config: YAML → pydantic → env overrides.

Round-trips every committed ``scenarios/*.yaml`` through the loader,
pins the override precedence (``REPRO__FLEET__MAX_LAG`` beats the YAML
value beats the model default) and checks that invalid configs are
rejected with field-level messages instead of misbehaving mid-run.
"""

from pathlib import Path

import pytest

pytest.importorskip("pydantic", reason="scenario configs need the scenarios extra")
pytest.importorskip("yaml", reason="scenario configs need the scenarios extra")

from repro.scenarios.config import (
    ScenarioConfig,
    ScenarioConfigError,
    apply_env_overrides,
    load_scenario,
    scenario_from_dict,
)

REPO = Path(__file__).resolve().parents[2]
COMMITTED = sorted((REPO / "scenarios").glob("*.yaml"))


def _base_data(**overrides) -> dict:
    data = {
        "name": "unit",
        "seed": 7,
        "population": [{"profile": "Linux-1", "machines": 2, "days": 1}],
        "regime": {"kind": "clock_skew"},
    }
    data.update(overrides)
    return data


# -- the three layers ---------------------------------------------------------


def test_defaults_fill_unspecified_sections():
    config = scenario_from_dict(_base_data(), env={})
    assert config.fleet.rounds == 6
    assert config.fleet.max_lag is None
    assert config.pipeline.window == 1.0
    assert config.regime.max_skew_seconds == 45.0


def test_env_beats_yaml_beats_defaults():
    data = _base_data(fleet={"rounds": 4, "max_lag": 100})
    # layer 2: YAML beats the defaults
    from_yaml = scenario_from_dict(data, env={})
    assert (from_yaml.fleet.rounds, from_yaml.fleet.max_lag) == (4, 100)
    # layer 3: env beats YAML (and untouched fields keep the YAML value)
    env = {"REPRO__FLEET__MAX_LAG": "50"}
    overridden = scenario_from_dict(data, env=env)
    assert overridden.fleet.max_lag == 50
    assert overridden.fleet.rounds == 4
    # env also beats the *default* when YAML omits the section entirely
    sectionless = scenario_from_dict(_base_data(), env=env)
    assert sectionless.fleet.max_lag == 50
    assert sectionless.fleet.rounds == 6


def test_env_values_parse_as_yaml_scalars():
    config = scenario_from_dict(
        _base_data(fleet={"max_lag": 9}),
        env={
            "REPRO__FLEET__MAX_LAG": "null",
            "REPRO__PIPELINE__WINDOW": "2.5",
            "REPRO__REGIME__DUPLICATE_FRACTION": "0.25",
        },
    )
    assert config.fleet.max_lag is None
    assert config.pipeline.window == 2.5
    assert config.regime.duplicate_fraction == 0.25


def test_env_indexes_population_groups():
    data = _base_data(
        population=[
            {"profile": "Linux-1", "machines": 2, "days": 1},
            {"profile": "Linux-2", "machines": 3, "days": 1},
        ]
    )
    config = scenario_from_dict(
        data,
        env={
            "REPRO__POPULATION__0__MACHINES": "5",
            "REPRO__POPULATION__1__ACTIVITY_SCALE": "2.0",
        },
    )
    assert config.population[0].machines == 5
    assert config.population[1].machines == 3  # untouched sibling
    assert config.population[1].activity_scale == 2.0


def test_env_merge_is_copy_on_write():
    data = _base_data(fleet={"rounds": 4})
    merged = apply_env_overrides(data, env={"REPRO__FLEET__ROUNDS": "2"})
    assert merged["fleet"]["rounds"] == 2
    assert data["fleet"]["rounds"] == 4  # the base mapping is untouched


def test_env_list_index_out_of_range_is_rejected():
    with pytest.raises(ScenarioConfigError, match="out of range"):
        scenario_from_dict(
            _base_data(), env={"REPRO__POPULATION__7__MACHINES": "1"}
        )
    with pytest.raises(ScenarioConfigError, match="list index"):
        scenario_from_dict(
            _base_data(), env={"REPRO__POPULATION__FIRST__MACHINES": "1"}
        )


def test_unrelated_env_variables_are_ignored():
    config = scenario_from_dict(
        _base_data(), env={"PATH": "/bin", "REPROX__FLEET__ROUNDS": "99"}
    )
    assert config.fleet.rounds == 6


# -- field-level rejection ----------------------------------------------------


@pytest.mark.parametrize(
    "data, fragment",
    [
        (_base_data(population=[]), "population"),
        (_base_data(name=""), "name"),
        (_base_data(typo_field=1), "typo_field"),
        (_base_data(pipeline={"window": -1.0}), "pipeline.window"),
        (_base_data(pipeline={"linkage": "median"}), "pipeline.linkage"),
        (_base_data(fleet={"rounds": 0}), "fleet.rounds"),
        (
            _base_data(
                population=[{"profile": "BeOS-1", "machines": 1}]
            ),
            "population.0.profile",
        ),
        (
            _base_data(
                population=[
                    {"profile": "Linux-1", "join_round": 3, "leave_round": 2},
                    {"profile": "Linux-1"},
                ]
            ),
            "leave_round",
        ),
        (
            _base_data(regime={"kind": "churn_storm", "keys": 5, "bucket_size": 20}),
            "bucket_size",
        ),
        (_base_data(regime={"kind": "no_such_regime"}), "regime"),
        (
            _base_data(
                regime={"kind": "clock_skew", "duplicate_fraction": 1.5}
            ),
            "duplicate_fraction",
        ),
    ],
)
def test_invalid_configs_fail_with_field_level_messages(data, fragment):
    with pytest.raises(ScenarioConfigError) as excinfo:
        scenario_from_dict(data, env={}, source="unit")
    assert fragment in str(excinfo.value)


def test_cross_field_coherence_is_enforced():
    # nobody joins at round 1
    with pytest.raises(ScenarioConfigError, match="round 1"):
        scenario_from_dict(
            _base_data(
                population=[{"profile": "Linux-1", "join_round": 2}],
                fleet={"rounds": 4},
            ),
            env={},
        )
    # a join scheduled past the drive's end
    with pytest.raises(ScenarioConfigError, match="exceeds fleet.rounds"):
        scenario_from_dict(
            _base_data(
                population=[
                    {"profile": "Linux-1"},
                    {"profile": "Linux-1", "join_round": 9},
                ],
                fleet={"rounds": 4},
            ),
            env={},
        )
    # a flash crowd no profile can participate in
    with pytest.raises(ScenarioConfigError, match="flash crowd would be empty"):
        scenario_from_dict(
            _base_data(
                regime={"kind": "flash_crowd", "app": "Chrome Browser"},
            ),
            env={},
        )
    # a "heterogeneous" population with one profile
    with pytest.raises(ScenarioConfigError, match="distinct profiles"):
        scenario_from_dict(
            _base_data(regime={"kind": "heterogeneous", "min_profiles": 2}),
            env={},
        )
    # an injected error pointed past the population
    with pytest.raises(ScenarioConfigError, match="machine_index"):
        scenario_from_dict(
            _base_data(inject_case={"case_id": 1, "machine_index": 99}),
            env={},
        )
    # a correlated error no population profile can host (case 9 needs
    # Evolution Mail; Linux-2 runs only Chrome)
    with pytest.raises(ScenarioConfigError, match="land nowhere"):
        scenario_from_dict(
            _base_data(
                population=[{"profile": "Linux-2", "machines": 2}],
                regime={"kind": "correlated_faults", "case_id": 9},
            ),
            env={},
        )
    # correlated crashes scheduled past the drive's end
    with pytest.raises(ScenarioConfigError, match="crash_round"):
        scenario_from_dict(
            _base_data(
                regime={
                    "kind": "correlated_faults",
                    "case_id": 9,
                    "crash_round": 99,
                },
                fleet={"rounds": 4},
            ),
            env={},
        )


def test_env_overrides_are_validated_too():
    with pytest.raises(ScenarioConfigError, match="fleet.max_lag"):
        scenario_from_dict(
            _base_data(), env={"REPRO__FLEET__MAX_LAG": "-5"}
        )


# -- the committed scenarios --------------------------------------------------


def test_committed_scenarios_exist():
    assert len(COMMITTED) >= 4, "the hostile regime catalog shrank"
    kinds = set()
    for path in COMMITTED:
        kinds.add(load_scenario(path, env={}).regime.kind)
    assert kinds >= {
        "flash_crowd",
        "churn_storm",
        "clock_skew",
        "correlated_faults",
        "heterogeneous",
    }


@pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.stem)
def test_committed_scenario_loads_and_reloads_identically(path):
    first = load_scenario(path, env={})
    second = load_scenario(path, env={})
    assert isinstance(first, ScenarioConfig)
    assert first == second
    assert first.total_machines >= 1
    assert first.seed != 0, "committed scenarios must pin a seed"


def test_loader_reports_missing_file_and_bad_yaml(tmp_path):
    with pytest.raises(ScenarioConfigError, match="missing.yaml"):
        load_scenario(tmp_path / "missing.yaml", env={})
    bad = tmp_path / "bad.yaml"
    bad.write_text("{unclosed: [", encoding="utf-8")
    with pytest.raises(ScenarioConfigError, match="invalid YAML"):
        load_scenario(bad, env={})
    scalar = tmp_path / "scalar.yaml"
    scalar.write_text("just a string", encoding="utf-8")
    with pytest.raises(ScenarioConfigError, match="must be a mapping"):
        load_scenario(scalar, env={})

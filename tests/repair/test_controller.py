"""Tests for the repair controller on a small hand-built history."""

import pytest

from repro.apps.catalog import create_app
from repro.core.search import SearchStrategy
from repro.repair.controller import OcastaRepairTool
from repro.repair.trial import Trial
from repro.ttkv.store import TTKV


@pytest.fixture
def broken_chrome():
    """Chrome with a hand-built TTKV history and a live error.

    History: bookmark bar toggled True -> False; an unrelated zoom key
    changed a few times.  The live store has the bar hidden (the error).
    """
    app = create_app("Chrome Browser")
    bar = app.canonical_key("bookmark_bar/show_on_all_tabs")
    zoom = app.canonical_key("profile/default_zoom")
    ttkv = TTKV()
    ttkv.record_write(bar, True, 100.0)
    ttkv.record_write(zoom, 1.0, 150.0)
    ttkv.record_write(zoom, 1.5, 250.0)
    ttkv.record_write(zoom, 2.0, 350.0)
    ttkv.record_write(bar, False, 400.0)
    app.user_set("bookmark_bar/show_on_all_tabs", False)
    return app, ttkv


def _is_fixed(shot):
    return shot.element("bookmark_bar") == "shown"


TRIAL = Trial.record("Chrome Browser", [("launch", {})])


class TestOcastaRepairTool:
    def test_finds_fix(self, broken_chrome):
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv)
        report = tool.repair(TRIAL, _is_fixed)
        assert report.fixed
        bar = app.canonical_key("bookmark_bar/show_on_all_tabs")
        assert bar in report.offending_cluster.keys
        assert report.offending_cluster_size == 1

    def test_apply_fix_restores_live_store(self, broken_chrome):
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv)
        report = tool.repair(TRIAL, _is_fixed)
        tool.apply_fix(report)
        assert app.value("bookmark_bar/show_on_all_tabs") is True

    def test_apply_fix_without_fix_raises(self, broken_chrome):
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv)
        report = tool.repair(TRIAL, lambda shot: False)
        assert not report.fixed
        with pytest.raises(ValueError):
            tool.apply_fix(report)

    def test_noclust_baseline_uses_singletons(self, broken_chrome):
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv, use_clustering=False)
        report = tool.repair(TRIAL, _is_fixed)
        assert report.fixed
        assert all(len(c) == 1 for c in report.cluster_set)

    def test_bfs_also_finds_fix(self, broken_chrome):
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv)
        report = tool.repair(TRIAL, _is_fixed, strategy=SearchStrategy.BFS)
        assert report.fixed
        assert report.strategy is SearchStrategy.BFS

    def test_sort_prioritises_rarely_modified_cluster(self, broken_chrome):
        """The bookmark key (2 mods) must be searched before zoom (3)."""
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv)
        report = tool.repair(TRIAL, _is_fixed)
        assert report.outcome.fix_candidate.cluster_rank == 0

    def test_exhaustive_counts_all_candidates(self, broken_chrome):
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv)
        report = tool.repair(TRIAL, _is_fixed, exhaustive=True)
        assert report.outcome.total_trials == report.searched_candidates

    def test_time_bounds_limit_candidates(self, broken_chrome):
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv)
        bounded = tool.repair(TRIAL, _is_fixed, start_time=300.0, exhaustive=True)
        unbounded = tool.repair(TRIAL, _is_fixed, exhaustive=True)
        assert bounded.searched_candidates < unbounded.searched_candidates

    def test_trial_cost_drives_time(self, broken_chrome):
        app, ttkv = broken_chrome
        tool = OcastaRepairTool(app, ttkv)
        report = tool.repair(TRIAL, _is_fixed)
        expected = report.outcome.trials_to_fix * app.trial_cost_seconds
        assert report.outcome.time_to_fix == pytest.approx(expected)

    def test_key_filter_restricts_to_app(self, broken_chrome):
        app, ttkv = broken_chrome
        ttkv.record_write("/apps/evolution/mail/mark_seen", False, 50.0)
        tool = OcastaRepairTool(app, ttkv)
        clusters = tool.build_clusters()
        assert all(
            key.startswith(app.key_prefix) for key in clusters.keys()
        )

"""Tests for the sandbox and the screenshot gallery."""

import pytest

from repro.apps.catalog import create_app
from repro.exceptions import SandboxError
from repro.repair.sandbox import Sandbox
from repro.repair.screenshot import ScreenshotGallery, capture
from repro.repair.trial import Trial
from repro.ttkv.snapshot import RollbackPlan
from repro.ttkv.store import DELETED, TTKV


@pytest.fixture
def chrome():
    return create_app("Chrome Browser")


@pytest.fixture
def trial():
    return Trial.record("Chrome Browser", [("launch", {})])


class TestSandbox:
    def test_execute_without_plan_shows_live_state(self, chrome, trial):
        chrome.user_set("bookmark_bar/show_on_all_tabs", False)
        shot = Sandbox(chrome).execute(trial, None)
        assert shot.element("bookmark_bar") == "missing"

    def test_rollback_plan_applied_in_sandbox_only(self, chrome, trial):
        chrome.user_set("bookmark_bar/show_on_all_tabs", False)
        plan = RollbackPlan(
            0.0,
            {chrome.canonical_key("bookmark_bar/show_on_all_tabs"): True},
        )
        shot = Sandbox(chrome).execute(trial, plan)
        assert shot.element("bookmark_bar") == "shown"
        # the live application is untouched
        assert chrome.value("bookmark_bar/show_on_all_tabs") is False

    def test_deletion_plan_removes_key(self, chrome, trial):
        plan = RollbackPlan(
            0.0,
            {chrome.canonical_key("bookmark_bar/show_on_all_tabs"): DELETED},
        )
        Sandbox(chrome).execute(trial, plan)
        sandbox = Sandbox(chrome)
        app = sandbox.fresh_app()
        sandbox.apply_plan(app, plan)
        assert app.value("bookmark_bar/show_on_all_tabs") is None

    def test_foreign_key_plan_rejected(self, chrome, trial):
        plan = RollbackPlan(0.0, {"/apps/evolution/mail/mark_seen": True})
        with pytest.raises(SandboxError):
            Sandbox(chrome).execute(trial, plan)

    def test_no_events_leak_to_logger(self, chrome, trial):
        ttkv = TTKV()
        chrome.attach_logger(ttkv)
        Sandbox(chrome).execute(trial, None)
        assert len(ttkv) == 0

    def test_fresh_app_each_execution(self, chrome):
        browse = Trial.record("Chrome Browser", [("browse", {"url": "x"})])
        plain = Trial.record("Chrome Browser", [("launch", {})])
        sandbox = Sandbox(chrome)
        sandbox.execute(browse, None)
        shot = sandbox.execute(plain, None)
        assert not shot.has_element("page")


class TestGallery:
    def test_add_new_screenshot(self, chrome):
        gallery = ScreenshotGallery()
        assert gallery.add(capture(chrome)) is True
        assert len(gallery) == 1

    def test_duplicate_discarded(self, chrome):
        gallery = ScreenshotGallery()
        gallery.add(capture(chrome))
        assert gallery.add(capture(chrome)) is False
        assert gallery.discarded == 1
        assert len(gallery) == 1

    def test_erroneous_screenshot_pre_seeded(self, chrome):
        erroneous = capture(chrome)
        gallery = ScreenshotGallery(erroneous=erroneous)
        assert gallery.add(erroneous) is False
        assert len(gallery) == 0

    def test_entries_in_order(self, chrome):
        gallery = ScreenshotGallery()
        first = capture(chrome)
        chrome.user_set("bookmark_bar/show_on_all_tabs", False)
        second = capture(chrome)
        gallery.add(first)
        gallery.add(second)
        assert gallery.entries == [first, second]
        assert first in gallery

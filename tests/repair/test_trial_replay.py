"""Tests for trial recording, serialisation and deterministic replay."""

import pytest

from repro.apps.catalog import create_app
from repro.exceptions import ReplayError
from repro.repair.replay import replay_trial
from repro.repair.trial import Trial


class TestTrial:
    def test_record(self):
        trial = Trial.record("App", [("launch", {}), ("open", {"doc": "x"})])
        assert trial.app_name == "App"
        assert len(trial) == 2

    def test_empty_rejected(self):
        with pytest.raises(ReplayError):
            Trial.record("App", [])

    def test_malformed_action_rejected(self):
        with pytest.raises(ReplayError):
            Trial(app_name="App", actions=(("launch",),))

    def test_json_roundtrip(self):
        trial = Trial.record(
            "Acrobat Reader",
            [("launch", {}), ("open_document", {"doc": "thesis.pdf"})],
        )
        assert Trial.from_json(trial.to_json()) == trial

    def test_from_json_malformed(self):
        with pytest.raises(ReplayError):
            Trial.from_json('{"app": "X"}')
        with pytest.raises(ReplayError):
            Trial.from_json("not json at all")


class TestReplay:
    def test_replay_returns_final_screenshot(self):
        app = create_app("Acrobat Reader")
        trial = Trial.record(
            "Acrobat Reader",
            [("launch", {}), ("open_document", {"doc": "thesis.pdf"})],
        )
        shot = replay_trial(app, trial)
        assert shot.element("document") == "thesis.pdf"
        assert shot.element("menu_bar") == "shown"

    def test_wrong_app_rejected(self):
        app = create_app("MS Word")
        trial = Trial.record("Acrobat Reader", [("launch", {})])
        with pytest.raises(ReplayError, match="recorded against"):
            replay_trial(app, trial)

    def test_unknown_action_becomes_replay_error(self):
        app = create_app("MS Word")
        trial = Trial.record("MS Word", [("fly", {})])
        with pytest.raises(ReplayError):
            replay_trial(app, trial)

    def test_bad_parameters_become_replay_error(self):
        app = create_app("MS Word")
        trial = Trial.record("MS Word", [("launch", {"warp": 9})])
        with pytest.raises(ReplayError):
            replay_trial(app, trial)

    def test_replay_is_deterministic(self):
        trial = Trial.record(
            "Chrome Browser", [("launch", {}), ("browse", {"url": "a.site"})]
        )
        shots = {replay_trial(create_app("Chrome Browser"), trial) for _ in range(3)}
        assert len(shots) == 1


class TestAdaptiveReplayer:
    def test_skips_unknown_actions(self):
        from repro.repair.replay import AdaptiveReplayer

        app = create_app("MS Word")
        trial = Trial.record(
            "MS Word",
            [("launch", {}), ("fly", {}), ("open_document", {"doc": "a.doc"})],
        )
        replayer = AdaptiveReplayer()
        shot = replayer.replay(app, trial)
        assert shot.element("document") == "a.doc"
        assert len(replayer.skipped) == 1
        assert replayer.skipped[0][0] == "fly"

    def test_skips_bad_parameters(self):
        from repro.repair.replay import AdaptiveReplayer

        app = create_app("MS Word")
        trial = Trial.record(
            "MS Word", [("launch", {"warp": 9}), ("open_document", {"doc": "a.doc"})]
        )
        replayer = AdaptiveReplayer()
        replayer.replay(app, trial)
        assert replayer.skipped[0][0] == "launch"

    def test_all_steps_failing_raises(self):
        from repro.repair.replay import AdaptiveReplayer

        app = create_app("MS Word")
        trial = Trial.record("MS Word", [("fly", {}), ("teleport", {})])
        with pytest.raises(ReplayError):
            AdaptiveReplayer().replay(app, trial)

    def test_wrong_app_still_rejected(self):
        from repro.repair.replay import AdaptiveReplayer

        app = create_app("MS Word")
        trial = Trial.record("Chrome Browser", [("launch", {})])
        with pytest.raises(ReplayError):
            AdaptiveReplayer().replay(app, trial)

    def test_skipped_resets_between_replays(self):
        from repro.repair.replay import AdaptiveReplayer

        app = create_app("MS Word")
        replayer = AdaptiveReplayer()
        replayer.replay(app, Trial.record("MS Word", [("launch", {}), ("fly", {})]))
        assert len(replayer.skipped) == 1
        replayer.replay(app, Trial.record("MS Word", [("launch", {})]))
        assert replayer.skipped == []

"""A second end-to-end path: GConf application, multi-key error (case 9).

Complements the Chrome (file-backed) integration tests with the GConf
flavour and a NoClust-unfixable two-setting error on a small trace.
"""

import pytest

from repro.core.search import SearchStrategy
from repro.errors.cases import case_by_id
from repro.errors.scenario import prepare_scenario
from repro.repair.controller import OcastaRepairTool
from repro.repair.sandbox import Sandbox
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import generate_trace


@pytest.fixture(scope="module")
def evolution_trace():
    profile = MachineProfile(
        name="test:evolution",
        platform=PLATFORM_LINUX,
        days=18,
        apps=("Evolution Mail",),
        sessions_per_day=3,
        actions_per_session=6,
        pref_edits_per_day=2.5,
        noise_keys=0,
        noise_writes_per_day=0,
        reads_per_day=100,
        seed=99,
    )
    return generate_trace(profile)


class TestMarkSeenScenario:
    @pytest.fixture
    def scenario(self, evolution_trace):
        return prepare_scenario(
            evolution_trace, case_by_id(9), days_before_end=6
        )

    def test_symptom_visible(self, scenario):
        shot = Sandbox(scenario.app).execute(scenario.trial, None)
        assert shot.element("mark_read") == "manual-only"

    def test_ocasta_repairs_the_pair(self, scenario):
        tool = OcastaRepairTool(scenario.app, scenario.ttkv)
        report = tool.repair(
            scenario.trial, scenario.is_fixed,
            start_time=scenario.injection_time,
        )
        assert report.fixed
        plan_keys = set(report.outcome.fix_plan.assignments)
        assert scenario.app.canonical_key("mail/mark_seen") in plan_keys
        assert scenario.app.canonical_key("mail/mark_seen_timeout") in plan_keys

    def test_noclust_cannot_fix(self, scenario):
        tool = OcastaRepairTool(
            scenario.app, scenario.ttkv, use_clustering=False
        )
        report = tool.repair(
            scenario.trial, scenario.is_fixed,
            start_time=scenario.injection_time,
        )
        assert not report.fixed

    def test_bfs_also_repairs(self, scenario):
        tool = OcastaRepairTool(scenario.app, scenario.ttkv)
        report = tool.repair(
            scenario.trial, scenario.is_fixed,
            start_time=scenario.injection_time,
            strategy=SearchStrategy.BFS,
        )
        assert report.fixed

    def test_fix_applies_and_logs(self, scenario, ttkv):
        """Applying the fix goes through the store, so an attached logger
        records the rollback — Ocasta returns to recording mode."""
        tool = OcastaRepairTool(scenario.app, scenario.ttkv)
        report = tool.repair(
            scenario.trial, scenario.is_fixed,
            start_time=scenario.injection_time,
        )
        scenario.app.attach_logger(ttkv)
        tool.apply_fix(report)
        assert ttkv.total_writes() >= 2
        shot = Sandbox(scenario.app).execute(scenario.trial, None)
        assert scenario.is_fixed(shot)

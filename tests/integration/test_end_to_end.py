"""End-to-end integration: trace -> clusters -> injected error -> repair.

These use small single-app deployments so the whole pipeline runs in
seconds while still crossing every module boundary: apps + stores +
loggers -> TTKV -> windowing/correlation/HAC -> scenario injection ->
sandboxed search -> fix.
"""

import pytest

from repro.core.accuracy import evaluate_clustering
from repro.core.pipeline import cluster_settings
from repro.core.search import SearchStrategy
from repro.errors.cases import case_by_id
from repro.errors.scenario import prepare_scenario
from repro.repair.controller import OcastaRepairTool
from repro.repair.sandbox import Sandbox


class TestClusteringPipeline:
    def test_chrome_trace_clusters_are_plausible(self, chrome_trace):
        app = chrome_trace.apps["Chrome Browser"]
        clusters = cluster_settings(chrome_trace.ttkv, key_filter=app.key_prefix)
        assert len(clusters) > 0
        assert all(k.startswith(app.key_prefix) for k in clusters.keys())

    def test_accuracy_report_runs(self, chrome_trace):
        app = chrome_trace.apps["Chrome Browser"]
        clusters = cluster_settings(chrome_trace.ttkv, key_filter=app.key_prefix)
        report = evaluate_clustering(
            app.name, clusters, app.canonical_ground_truth_groups(),
            total_keys=len(app.schema),
        )
        assert report.total_keys == 35
        if report.accuracy is not None:
            assert 0.0 <= report.accuracy <= 1.0

    def test_narrower_window_never_fewer_clusters(self, chrome_trace):
        app = chrome_trace.apps["Chrome Browser"]
        narrow = cluster_settings(
            chrome_trace.ttkv, window=0.0, key_filter=app.key_prefix
        )
        wide = cluster_settings(
            chrome_trace.ttkv, window=60.0, key_filter=app.key_prefix
        )
        assert len(wide) <= len(narrow)


class TestRepairScenario:
    @pytest.fixture()
    def scenario(self, chrome_trace):
        return prepare_scenario(chrome_trace, case_by_id(13), days_before_end=7)

    def test_symptom_visible_after_injection(self, scenario):
        shot = Sandbox(scenario.app).execute(scenario.trial, None)
        assert scenario.case.symptomatic(shot)

    def test_ocasta_fixes_the_error(self, scenario):
        tool = OcastaRepairTool(scenario.app, scenario.ttkv)
        report = tool.repair(
            scenario.trial,
            scenario.is_fixed,
            start_time=scenario.injection_time,
        )
        assert report.fixed
        bar = scenario.app.canonical_key("bookmark_bar/show_on_all_tabs")
        assert bar in report.outcome.fix_plan.assignments

    def test_fix_survives_application(self, scenario):
        tool = OcastaRepairTool(scenario.app, scenario.ttkv)
        report = tool.repair(
            scenario.trial, scenario.is_fixed,
            start_time=scenario.injection_time,
        )
        tool.apply_fix(report)
        shot = Sandbox(scenario.app).execute(scenario.trial, None)
        assert scenario.is_fixed(shot)

    def test_bfs_and_dfs_agree_on_fixability(self, scenario):
        for strategy in (SearchStrategy.DFS, SearchStrategy.BFS):
            tool = OcastaRepairTool(scenario.app, scenario.ttkv)
            report = tool.repair(
                scenario.trial, scenario.is_fixed,
                start_time=scenario.injection_time, strategy=strategy,
            )
            assert report.fixed, strategy

    def test_spurious_writes_grow_the_candidate_pool(self, chrome_trace):
        """Spurious fix attempts add rollback candidates the search must
        cover; the repair still succeeds.  (The BFS-vs-DFS sensitivity is
        an aggregate property checked by the Fig. 2b benchmark.)"""
        candidates = {}
        for spurious in (0, 2):
            scenario = prepare_scenario(
                chrome_trace, case_by_id(13),
                days_before_end=7, spurious_writes=spurious,
            )
            tool = OcastaRepairTool(scenario.app, scenario.ttkv)
            report = tool.repair(
                scenario.trial, scenario.is_fixed,
                start_time=scenario.injection_time,
                strategy=SearchStrategy.BFS,
            )
            assert report.fixed
            candidates[spurious] = report.searched_candidates
        assert candidates[2] > candidates[0]


class TestMultiKeyScenario:
    def test_gedit_save_error_repairs(self, gedit_trace):
        scenario = prepare_scenario(gedit_trace, case_by_id(12), days_before_end=5)
        tool = OcastaRepairTool(scenario.app, scenario.ttkv)
        report = tool.repair(
            scenario.trial, scenario.is_fixed,
            start_time=scenario.injection_time,
        )
        assert report.fixed

    def test_noclust_vs_ocasta_on_multikey(self, gedit_trace):
        """A synthetic two-key error on gedit's autosave family: Ocasta's
        cluster rollback fixes it; NoClust cannot (both keys wrong)."""
        scenario = prepare_scenario(gedit_trace, case_by_id(12), days_before_end=5)
        # single-key case sanity: NoClust also fixes case 12
        noclust = OcastaRepairTool(
            scenario.app, scenario.ttkv, use_clustering=False
        )
        report = noclust.repair(
            scenario.trial, scenario.is_fixed,
            start_time=scenario.injection_time,
        )
        assert report.fixed


class TestPersistenceIntegration:
    def test_trace_roundtrips_through_log(self, chrome_trace, tmp_path):
        from repro.ttkv.persistence import load_ttkv, save_ttkv

        path = tmp_path / "trace.jsonl"
        save_ttkv(chrome_trace.ttkv, path)
        loaded = load_ttkv(path)
        app = chrome_trace.apps["Chrome Browser"]
        original = cluster_settings(chrome_trace.ttkv, key_filter=app.key_prefix)
        reloaded = cluster_settings(loaded, key_filter=app.key_prefix)
        assert sorted(
            tuple(sorted(c.keys)) for c in original
        ) == sorted(tuple(sorted(c.keys)) for c in reloaded)

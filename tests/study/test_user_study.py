"""Tests for the simulated user study."""

import random

import pytest

from repro.study.participants import make_participants
from repro.study.user_study import (
    MANUAL_CUTOFF_SECONDS,
    STUDY_CASE_IDS,
    run_user_study,
)


class TestParticipants:
    def test_cohort_of_nineteen(self):
        participants = make_participants(random.Random(1))
        assert len(participants) == 19

    def test_six_non_technical(self):
        participants = make_participants(random.Random(1))
        assert sum(1 for p in participants if not p.technical) == 6

    def test_roles_match_paper(self):
        participants = make_participants(random.Random(1))
        roles = [p.role for p in participants]
        assert roles.count("faculty") == 2
        assert roles.count("graduate student") == 13
        assert roles.count("system administrator") == 1
        assert roles.count("administrative assistant") == 1
        assert roles.count("software engineer") == 2

    def test_familiarity_in_range(self):
        rng = random.Random(2)
        for participant in make_participants(rng):
            assert 1 <= participant.familiarity(rng) <= 5


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_user_study(seed=19)

    def test_covers_four_errors(self, result):
        assert set(result.cases) == set(STUDY_CASE_IDS) == {11, 13, 15, 16}

    def test_nineteen_datapoints_per_case(self, result):
        for case in result.cases.values():
            assert len(case.ocasta_times) == 19
            assert len(case.manual_times) == 19

    def test_ocasta_faster_than_manual_except_possibly_16(self, result):
        """The Fig. 4 shape: Ocasta saves significant effort; case 16 is
        the one the majority could fix manually."""
        for case_id in (11, 13, 15):
            case = result.cases[case_id]
            assert case.avg_ocasta_time < case.avg_manual_time

    def test_case_16_mostly_fixed_manually(self, result):
        assert result.cases[16].manual_fix_rate > 0.5
        for other in (11, 13, 15):
            assert result.cases[other].manual_fix_rate < result.cases[16].manual_fix_rate

    def test_manual_times_capped(self, result):
        for case in result.cases.values():
            assert max(case.manual_times) <= MANUAL_CUTOFF_SECONDS

    def test_trial_rated_mostly_easiest(self, result):
        distribution = result.rating_distribution("trial")
        assert distribution[1] > 0.5
        assert abs(sum(distribution.values()) - 1.0) < 1e-9

    def test_deterministic_for_seed(self):
        a = run_user_study(seed=7)
        b = run_user_study(seed=7)
        assert a.cases[11].ocasta_times == b.cases[11].ocasta_times

    def test_seed_changes_outcomes(self):
        a = run_user_study(seed=7)
        b = run_user_study(seed=8)
        assert a.cases[11].ocasta_times != b.cases[11].ocasta_times

    def test_screenshot_counts_influence_selection_time(self):
        few = run_user_study(screenshots_per_case={16: 1}, seed=3)
        many = run_user_study(screenshots_per_case={16: 30}, seed=3)
        assert (
            sum(many.cases[16].selection_times)
            > sum(few.cases[16].selection_times)
        )

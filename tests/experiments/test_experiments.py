"""Tests for the experiment drivers (reduced-scale runs).

The full-scale shapes are asserted by the benchmark suite; these tests
exercise the drivers' plumbing quickly: parameterisation, rendering, and
the structural integrity of their outputs.
"""

from repro.experiments.fig3 import render_fig3, run_fig3a, run_fig3b
from repro.experiments.fig4 import render_fig4, run_fig4
from repro.experiments.recovery import CaseResult, run_case, trace_for
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import evaluate_app, lab_profile, render_table2
from repro.experiments.table3 import render_table3
from repro.errors.cases import ERROR_CASES, case_by_id
from repro.workload.machines import profile_by_name


class TestTable1Driver:
    def test_single_profile_reduced(self):
        results = run_table1(
            profiles=(profile_by_name("Linux-2"),), days=10
        )
        assert len(results) == 1
        stats, profile = results[0]
        assert stats.name == "Linux-2"
        assert stats.keys <= 35
        assert "Linux-2" in render_table1(results)

    def test_scale_parameter(self):
        full = run_table1(profiles=(profile_by_name("Linux-2"),), days=10)
        tiny = run_table1(
            profiles=(profile_by_name("Linux-2"),), days=10, scale=0.2
        )
        assert tiny[0][0].reads < full[0][0].reads


class TestTable2Driver:
    def test_lab_profile_shape(self):
        profile = lab_profile("Chrome Browser", days=7)
        assert profile.apps == ("Chrome Browser",)
        assert profile.noise_keys == 0

    def test_evaluate_app_reduced(self):
        report = evaluate_app("Chrome Browser", days=8)
        assert report.app_name == "Chrome Browser"
        assert report.total_keys == 35

    def test_run_table2_subset_render(self):
        reports = [evaluate_app("Eye of GNOME", days=6)]
        text = render_table2(reports)
        assert "N/A" in text  # EOG has no multi clusters

    def test_different_windows_change_clustering(self):
        narrow = evaluate_app("Evolution Mail", days=10, window=0.0)
        wide = evaluate_app("Evolution Mail", days=10, window=120.0)
        assert narrow.total_clusters >= wide.total_clusters


class TestTable3Driver:
    def test_all_sixteen_rows(self):
        text = render_table3()
        for case in ERROR_CASES:
            assert case.description in text


class TestRecoveryDriver:
    def test_trace_cache_reuses_instance(self):
        trace_for.cache_clear()
        a = trace_for("Linux-2")
        b = trace_for("Linux-2")
        assert a is b

    def test_run_case_returns_scenario(self):
        report, scenario = run_case(case_by_id(13))
        assert scenario.case.case_id == 13
        assert report.fixed

    def test_start_bound_days_widens_search(self):
        narrow, _ = run_case(case_by_id(13), start_bound_days=15, exhaustive=True)
        wide, _ = run_case(case_by_id(13), start_bound_days=60, exhaustive=True)
        assert wide.searched_candidates >= narrow.searched_candidates

    def test_case_result_row_shape(self):
        report, _ = run_case(case_by_id(13))
        noclust, _ = run_case(case_by_id(13), use_clustering=False)
        row = CaseResult(case_by_id(13), report, noclust).row()
        assert row[0] == 13
        assert row[5] in ("Y", "N")

    def test_untuned_parameters_fail_case2(self):
        """§VI-A(b): with the defaults, error #2's settings split across
        clusters and the repair fails; the tuned parameters fix it."""
        untuned, _ = run_case(case_by_id(2), use_tuned_parameters=False)
        assert not untuned.fixed
        tuned, _ = run_case(case_by_id(2), use_tuned_parameters=True)
        assert tuned.fixed


class TestFig3Driver:
    def test_reduced_sweep(self):
        windows, sizes = run_fig3a(
            apps=("Chrome Browser",), windows=(0.0, 1.0), days=8
        )
        assert len(sizes) == 2
        text = render_fig3("w", windows, sizes, "t")
        assert "t" in text

    def test_threshold_monotone_on_small_trace(self):
        _, sizes = run_fig3b(
            apps=("Chrome Browser",), thresholds=(0.5, 2.0), days=8
        )
        assert sizes[0] >= sizes[1]


class TestFig4Driver:
    def test_render_contains_paper_reference(self):
        text = render_fig4(run_fig4(seed=2))
        assert "paper: 1:74%" in text
        assert "Figure 4" in text

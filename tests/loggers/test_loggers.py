"""Tests for the three loggers, especially timestamp quantisation and the
file logger's flush-diff information loss."""

import pytest

from repro.common.clock import SimClock
from repro.loggers.base import Logger
from repro.loggers.file_logger import FileLogger, diff_flush, file_key
from repro.loggers.gconf_logger import GConfLogger
from repro.loggers.registry_logger import RegistryLogger
from repro.stores.events import AccessEvent
from repro.stores.filestore import FileStore, VirtualFile
from repro.stores.gconf import GConfStore
from repro.stores.registry import RegistryStore
from repro.ttkv.store import DELETED


class TestLoggerBase:
    def test_quantises_to_nearest_second(self, ttkv):
        logger = Logger(ttkv)
        logger(AccessEvent.write("k", 1, 12.87))
        assert ttkv.history("k")[0].timestamp == 12.0

    def test_zero_precision_keeps_exact(self, ttkv):
        logger = Logger(ttkv, precision=0.0)
        logger(AccessEvent.write("k", 1, 12.87))
        assert ttkv.history("k")[0].timestamp == 12.87

    def test_counts_events(self, ttkv):
        logger = Logger(ttkv)
        logger(AccessEvent.write("k", 1, 1.0))
        logger(AccessEvent.delete("k", 2.0))
        logger(AccessEvent.read("k", 3.0))
        assert logger.events_recorded == 3

    def test_read_recording_can_be_disabled(self, ttkv):
        logger = Logger(ttkv, record_reads=False)
        logger(AccessEvent.read("k", 1.0))
        assert logger.events_recorded == 0
        assert "k" not in ttkv

    def test_delete_recorded_in_history(self, ttkv):
        logger = Logger(ttkv)
        logger(AccessEvent.delete("k", 5.4))
        assert ttkv.history("k")[0].value is DELETED


class TestRegistryLogger:
    def test_attach_records_store_accesses(self, ttkv):
        store = RegistryStore(clock=SimClock(7.3))
        logger = RegistryLogger(ttkv)
        logger.attach(store)
        store.set_value("HKCU", "App", "N", "x")
        assert ttkv.write_count("HKCU\\App\\N") == 1
        assert ttkv.history("HKCU\\App\\N")[0].timestamp == 7.0

    def test_detach_stops_recording(self, ttkv):
        store = RegistryStore()
        logger = RegistryLogger(ttkv)
        logger.attach(store)
        logger.detach()
        store.set_value("HKCU", "App", "N", "x")
        assert len(ttkv) == 0

    def test_double_attach_rejected(self, ttkv):
        store = RegistryStore()
        logger = RegistryLogger(ttkv)
        logger.attach(store)
        with pytest.raises(RuntimeError):
            logger.attach(store)

    def test_detach_unattached_rejected(self, ttkv):
        with pytest.raises(RuntimeError):
            RegistryLogger(ttkv).detach()

    def test_reads_are_counted(self, ttkv):
        store = RegistryStore()
        logger = RegistryLogger(ttkv)
        logger.attach(store)
        store.set_value("HKCU", "App", "N", "x")
        store.query_value("HKCU", "App", "N")
        assert ttkv.record_for("HKCU\\App\\N").reads == 1


class TestGConfLogger:
    def test_attach_records(self, ttkv):
        store = GConfStore(clock=SimClock(3.9))
        logger = GConfLogger(ttkv)
        logger.attach(store)
        store.set_bool("/apps/x/flag", True)
        assert ttkv.write_count("/apps/x/flag") == 1

    def test_unset_recorded_as_delete(self, ttkv):
        store = GConfStore()
        logger = GConfLogger(ttkv)
        logger.attach(store)
        store.set_bool("/apps/x/flag", True)
        store.unset("/apps/x/flag")
        assert ttkv.record_for("/apps/x/flag").deletes == 1


class TestDiffFlush:
    def test_added_key(self):
        changes = diff_flush({}, {"a": 1})
        assert len(changes) == 1
        assert changes[0][0] == "a"
        assert changes[0][2] == 1

    def test_changed_key(self):
        changes = diff_flush({"a": 1}, {"a": 2})
        assert changes[0][1:] == (1, 2)

    def test_removed_key_marked_absent(self):
        changes = diff_flush({"a": 1}, {})
        key, old, new = changes[0]
        assert (key, old) == ("a", 1)
        assert new is not None and new != 1  # the absent marker

    def test_unchanged_key_produces_nothing(self):
        assert diff_flush({"a": 1}, {"a": 1}) == []


class TestFileLogger:
    def _setup(self, ttkv):
        clock = SimClock(0.0)
        file = VirtualFile("/cfg")
        store = FileStore(file, "plaintext", clock=clock)
        logger = FileLogger(ttkv, "plaintext")
        logger.attach(file)
        return clock, file, store, logger

    def test_write_recorded_with_file_prefix(self, ttkv):
        clock, file, store, logger = self._setup(ttkv)
        store.set("x", 5)
        assert ttkv.write_count(file_key("/cfg", "x")) == 1

    def test_delete_recorded(self, ttkv):
        _, file, store, logger = self._setup(ttkv)
        store.set("x", 5)
        store.delete("x")
        assert ttkv.record_for(file_key("/cfg", "x")).deletes == 1

    def test_multi_write_between_flushes_collapses(self, ttkv):
        """The paper's coarseness artifact: the logger cannot see writes
        that never hit the disk."""
        clock = SimClock(0.0)
        file = VirtualFile("/cfg")
        store = FileStore(file, "plaintext", clock=clock, autoflush=False)
        logger = FileLogger(ttkv, "plaintext")
        logger.attach(file)
        store.set("x", 1)
        store.set("x", 2)
        store.set("x", 3)
        store.flush()
        assert ttkv.write_count(file_key("/cfg", "x")) == 1
        assert ttkv.current_value(file_key("/cfg", "x")) == 3

    def test_same_value_rewrite_invisible(self, ttkv):
        """File loggers diff content: rewriting the same value is silent
        (unlike registry/GConf loggers)."""
        _, file, store, logger = self._setup(ttkv)
        store.set("x", 1)
        store.set("x", 1)
        assert ttkv.write_count(file_key("/cfg", "x")) == 1

    def test_parse_failure_skips_flush(self, ttkv):
        _, file, store, logger = self._setup(ttkv)
        file.write("this line has no key-value separator", 1.0)
        assert logger.parse_failures == 1
        assert len(ttkv) == 0

    def test_detach(self, ttkv):
        _, file, store, logger = self._setup(ttkv)
        logger.detach(file)
        store.set("x", 1)
        assert len(ttkv) == 0
        assert logger.watched_paths == []

    def test_flush_timestamp_quantised(self, ttkv):
        clock = SimClock(9.7)
        file = VirtualFile("/cfg")
        store = FileStore(file, "plaintext", clock=clock)
        logger = FileLogger(ttkv, "plaintext")
        logger.attach(file)
        store.set("x", 1)
        assert ttkv.history(file_key("/cfg", "x"))[0].timestamp == 9.0

"""Tests for machine profiles, the user model and trace generation."""

import random

import pytest

from repro.apps.catalog import app_names, create_app
from repro.common.format import SECONDS_PER_DAY
from repro.workload.machines import PROFILES, profile_by_name
from repro.workload.trace import compute_stats
from repro.workload.tracegen import generate_trace, _poisson
from repro.workload.user_model import UserBehaviour, UserModel


class TestProfiles:
    def test_nine_profiles_like_table1(self):
        assert len(PROFILES) == 9

    def test_lookup_by_name(self):
        assert profile_by_name("Linux-2").days == 84

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            profile_by_name("Windows 11")

    def test_all_profile_apps_exist(self):
        known = set(app_names())
        for profile in PROFILES:
            assert set(profile.apps) <= known, profile.name

    def test_days_match_paper(self):
        days = {p.name: p.days for p in PROFILES}
        assert days["Windows 7"] == 42
        assert days["Windows Vista-2"] == 18
        assert days["Linux-4"] == 64


class TestUserModel:
    def test_session_generates_events(self, ttkv):
        # GConf-backed app: its logger sees the launch's read burst
        # (file loggers are blind to reads by design).
        app = create_app("GNOME Edit")
        app.attach_logger(ttkv)
        user = UserModel(app, random.Random(5))
        user.run_session(actions=8)
        assert ttkv.total_reads() >= len(app.schema)

    def test_preference_edit_writes(self, ttkv):
        app = create_app("Evolution Mail")
        app.attach_logger(ttkv)
        user = UserModel(app, random.Random(5))
        user.edit_preferences()
        assert ttkv.total_writes() >= 1

    def test_think_time_advances_clock(self):
        app = create_app("Chrome Browser")
        user = UserModel(app, random.Random(5))
        before = app.clock.now()
        user.run_session(actions=3)
        assert app.clock.now() > before

    def test_behaviour_is_tunable(self):
        behaviour = UserBehaviour(think_time_range=(1.0, 1.1))
        app = create_app("Chrome Browser")
        user = UserModel(app, random.Random(5), behaviour)
        user.run_session(actions=2)
        assert app.clock.now() < 60.0


class TestPoisson:
    def test_zero_mean(self):
        assert _poisson(random.Random(1), 0) == 0

    def test_mean_roughly_respected(self):
        rng = random.Random(2)
        samples = [_poisson(rng, 4.0) for _ in range(500)]
        assert 3.5 < sum(samples) / len(samples) < 4.5


class TestGenerateTrace:
    def test_deterministic_for_same_seed(self, tiny_profile_factory):
        profile = tiny_profile_factory("Chrome Browser", days=5)
        a = generate_trace(profile)
        b = generate_trace(profile)
        assert a.ttkv.write_events() == b.ttkv.write_events()

    def test_different_seeds_differ(self, tiny_profile_factory):
        profile = tiny_profile_factory("Chrome Browser", days=5)
        a = generate_trace(profile, seed=1)
        b = generate_trace(profile, seed=2)
        assert a.ttkv.write_events() != b.ttkv.write_events()

    def test_events_quantised_to_seconds(self, chrome_trace):
        for t, _, _ in chrome_trace.ttkv.write_events()[:200]:
            assert t == int(t)

    def test_zero_precision_keeps_subsecond(self, tiny_profile_factory):
        profile = tiny_profile_factory("Chrome Browser", days=5)
        trace = generate_trace(profile, precision=0.0)
        times = [t for t, _, _ in trace.ttkv.write_events()]
        assert any(t != int(t) for t in times)

    def test_days_override(self, tiny_profile_factory):
        profile = tiny_profile_factory("Chrome Browser", days=30)
        trace = generate_trace(profile, days=3)
        _, end = trace.ttkv.span()
        assert end <= 3 * SECONDS_PER_DAY + 1

    def test_scale_reduces_volume(self, tiny_profile_factory):
        profile = tiny_profile_factory("GNOME Edit", days=8)
        full = generate_trace(profile, scale=1.0)
        tiny = generate_trace(profile, scale=0.25)
        assert tiny.ttkv.total_writes() < full.ttkv.total_writes()

    def test_bad_parameters(self, tiny_profile_factory):
        profile = tiny_profile_factory("Chrome Browser")
        with pytest.raises(ValueError):
            generate_trace(profile, days=0)
        with pytest.raises(ValueError):
            generate_trace(profile, scale=0)

    def test_noise_keys_present_for_windows_profile(self):
        profile = profile_by_name("Windows Vista-2")
        trace = generate_trace(profile, days=2, scale=0.05)
        assert any(k.startswith("HKLM\\System") for k in trace.ttkv.keys())

    def test_apps_attached_and_logged(self, chrome_trace):
        app = chrome_trace.apps["Chrome Browser"]
        prefix = app.key_prefix
        assert any(k.startswith(prefix) for k in chrome_trace.ttkv.keys())

    def test_end_time_property(self, chrome_trace):
        assert chrome_trace.end_time == chrome_trace.days * SECONDS_PER_DAY


class TestTraceStats:
    def test_stats_from_trace(self, chrome_trace):
        stats = compute_stats("t", chrome_trace.ttkv, chrome_trace.days)
        assert stats.reads == chrome_trace.ttkv.total_reads()
        assert stats.writes == (
            chrome_trace.ttkv.total_writes() + chrome_trace.ttkv.total_deletes()
        )
        assert stats.keys == len(chrome_trace.ttkv)

    def test_days_inferred_from_span(self, chrome_trace):
        stats = compute_stats("t", chrome_trace.ttkv)
        assert stats.days > 1

    def test_row_formatting(self, chrome_trace):
        stats = compute_stats("t", chrome_trace.ttkv, 20.0)
        row = stats.row()
        assert row[0] == "t"
        assert row[1] == "20"

"""Run the library's doctest examples (they double as API documentation)."""

import doctest

import pytest

import repro
import repro.analysis.stats
import repro.analysis.tables
import repro.common.format
import repro.core.clustering
import repro.core.dendro_repair
import repro.core.dendrogram
import repro.core.executors
import repro.core.incremental
import repro.core.sharded
import repro.stores.parsers
import repro.stores.parsers.common
import repro.stores.registry

_MODULES = [
    repro,
    repro.analysis.stats,
    repro.analysis.tables,
    repro.common.format,
    repro.core.clustering,
    repro.core.dendro_repair,
    repro.core.dendrogram,
    repro.core.executors,
    repro.core.incremental,
    repro.core.sharded,
    repro.stores.parsers,
    repro.stores.parsers.common,
    repro.stores.registry,
]


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0, f"{module.__name__} has no doctest examples"

"""Tests for the ASCII table renderers."""

import pytest

from repro.analysis.tables import ascii_table, format_percent, series_table


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "a   | bb"
        assert lines[2] == "1   | 22"
        assert lines[3] == "333 | 4"

    def test_title(self):
        text = ascii_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = ascii_table(["col"], [])
        assert "col" in text


class TestSeriesTable:
    def test_series_columns(self):
        text = series_table("x", [1, 2], {"DFS": [3, 4], "BFS": [5, 6]})
        assert "DFS" in text and "BFS" in text
        assert "3" in text and "6" in text

    def test_floats_rounded(self):
        text = series_table("x", [1], {"s": [3.14159]})
        assert "3.14" in text
        assert "3.1416" not in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_table("x", [1, 2], {"s": [1]})


class TestFormatPercent:
    def test_value(self):
        assert format_percent(0.886) == "88.6%"

    def test_none_is_na(self):
        assert format_percent(None) == "N/A"

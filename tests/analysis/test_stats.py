"""Tests for the summary-statistics helpers."""

import pytest

from repro.analysis.stats import (
    TrialSummary,
    cluster_size_distribution,
    mean,
    percentile,
)
from repro.core.cluster_model import ClusterSet


def _cluster_set(*sizes):
    key_sets = []
    counter = 0
    for size in sizes:
        key_sets.append(frozenset(f"k{counter + i}" for i in range(size)))
        counter += size
    return ClusterSet.from_key_sets(key_sets, window=1.0, correlation_threshold=2.0)


class TestSizeDistribution:
    def test_histogram(self):
        dist = cluster_size_distribution(_cluster_set(1, 1, 2, 3, 3))
        assert dist.histogram == {1: 2, 2: 1, 3: 2}
        assert dist.total_clusters == 5
        assert dist.multi_clusters == 3
        assert dist.max_size == 3

    def test_mean_multi_size(self):
        dist = cluster_size_distribution(_cluster_set(1, 2, 4))
        assert dist.mean_multi_size == 3.0

    def test_all_singletons(self):
        dist = cluster_size_distribution(_cluster_set(1, 1))
        assert dist.multi_clusters == 0
        assert dist.mean_multi_size == 0.0
        assert dist.fraction_multi() == 0.0

    def test_empty(self):
        dist = cluster_size_distribution(_cluster_set())
        assert dist.total_clusters == 0
        assert dist.max_size == 0
        assert dist.fraction_multi() == 0.0


class TestMeanPercentile:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_percentile_median(self):
        # nearest-rank on an even count picks the upper-middle element
        assert percentile([4, 1, 3, 2], 0.5) == 3
        assert percentile([3, 1, 2], 0.5) == 2

    def test_percentile_extremes(self):
        values = [10, 20, 30]
        assert percentile(values, 0.0) == 10
        assert percentile(values, 1.0) == 30

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestTrialSummary:
    def test_from_trials(self):
        summary = TrialSummary.from_trials([2, 8, 4, 60])
        assert summary.count == 4
        assert summary.mean_trials == 18.5
        assert summary.worst_trials == 60

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrialSummary.from_trials([])

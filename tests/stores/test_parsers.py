"""Tests for the five configuration-file parsers, including round-trip
property tests (every format must reproduce what it wrote)."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ParseError
from repro.stores.parsers import get_parser, known_formats
from repro.stores.parsers import ini, json_format, plaintext, pskv, xml_format
from repro.stores.parsers.common import (
    coerce_scalar,
    flatten,
    render_scalar,
    unflatten,
)


class TestRegistry:
    def test_known_formats(self):
        assert known_formats() == ["ini", "json", "plaintext", "postscript", "xml"]

    def test_get_parser(self):
        assert get_parser("json") is json_format

    def test_unknown_format(self):
        with pytest.raises(ValueError, match="unknown"):
            get_parser("yaml")


class TestCoercion:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("true", True),
            ("False", False),
            ("42", 42),
            ("-3", -3),
            ("1.5", 1.5),
            ("null", None),
            ("hello", "hello"),
            ("", ""),
        ],
    )
    def test_coerce(self, text, expected):
        assert coerce_scalar(text) == expected

    def test_render_rejects_unknown(self):
        with pytest.raises(ParseError):
            render_scalar(object())


class TestFlatten:
    def test_flatten_nested(self):
        assert flatten({"a": {"b": 1}, "c": 2}) == {"a/b": 1, "c": 2}

    def test_unflatten_inverse(self):
        flat = {"a/b": 1, "a/c": 2, "d": 3}
        assert flatten(unflatten(flat)) == flat

    def test_unflatten_conflict_leaf_then_node(self):
        with pytest.raises(ParseError):
            unflatten({"a": 1, "a/b": 2})

    def test_flatten_rejects_bad_list(self):
        with pytest.raises(ParseError):
            flatten({"a": [{"nested": 1}]})


class TestPlaintext:
    def test_loads_basic(self):
        data = plaintext.loads("x=1\nname = alice\nflag=true\n")
        assert data == {"x": 1, "name": "alice", "flag": True}

    def test_comments_and_blanks(self):
        data = plaintext.loads("# comment\n\n; other\nx=1\n")
        assert data == {"x": 1}

    def test_list_values(self):
        assert plaintext.loads("l=[a, b, 3]\n") == {"l": ["a", "b", 3]}

    def test_empty_list(self):
        assert plaintext.loads("l=[]\n") == {"l": []}

    def test_missing_equals_raises_with_line(self):
        with pytest.raises(ParseError, match="line 2"):
            plaintext.loads("ok=1\nbroken line\n")

    def test_empty_key_rejected(self):
        with pytest.raises(ParseError):
            plaintext.loads("=value\n")

    def test_dumps_rejects_equals_in_key(self):
        with pytest.raises(ParseError):
            plaintext.dumps({"a=b": 1})


class TestIni:
    def test_sections_flattened(self):
        data = ini.loads("top=1\n[view]\nzoom=2\n[net/proxy]\nport=8080\n")
        assert data == {"top": 1, "view/zoom": 2, "net/proxy/port": 8080}

    def test_unterminated_section(self):
        with pytest.raises(ParseError):
            ini.loads("[broken\n")

    def test_empty_section_name(self):
        with pytest.raises(ParseError):
            ini.loads("[]\n")

    def test_dumps_groups_by_section(self):
        text = ini.dumps({"a/x": 1, "a/y": 2, "top": 3})
        assert text.index("top=3") < text.index("[a]")


class TestJson:
    def test_nested_flattening(self):
        data = json_format.loads('{"a": {"b": true}, "c": [1, 2]}')
        assert data == {"a/b": True, "c": [1, 2]}

    def test_empty_text(self):
        assert json_format.loads("") == {}

    def test_invalid_json(self):
        with pytest.raises(ParseError):
            json_format.loads("{broken")

    def test_non_object_top_level(self):
        with pytest.raises(ParseError):
            json_format.loads("[1, 2]")

    def test_list_of_objects_rejected(self):
        with pytest.raises(ParseError):
            json_format.loads('{"a": [{"b": 1}]}')


class TestXml:
    def test_typed_leaves(self):
        text = (
            "<config><toolbar><visible type='bool'>true</visible>"
            "<width type='int'>120</width></toolbar></config>"
        )
        assert xml_format.loads(text) == {
            "toolbar/visible": True,
            "toolbar/width": 120,
        }

    def test_list_leaf(self):
        text = "<config><l type='list'><li>a</li><li>2</li></l></config>"
        assert xml_format.loads(text) == {"l": ["a", 2]}

    def test_untyped_leaf_coerced(self):
        assert xml_format.loads("<config><n>42</n></config>") == {"n": 42}

    def test_wrong_root(self):
        with pytest.raises(ParseError):
            xml_format.loads("<settings/>")

    def test_bad_int(self):
        with pytest.raises(ParseError):
            xml_format.loads("<config><n type='int'>abc</n></config>")

    def test_bad_bool(self):
        with pytest.raises(ParseError):
            xml_format.loads("<config><b type='bool'>yes</b></config>")

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            xml_format.loads("<config><x type='blob'>z</x></config>")

    def test_malformed_xml(self):
        with pytest.raises(ParseError):
            xml_format.loads("<config><unclosed></config>")

    def test_empty_text(self):
        assert xml_format.loads("") == {}


class TestPostScript:
    def test_basic_definitions(self):
        text = "/Menu true def\n/Zoom 1.25 def\n/Title (My Doc) def\n"
        assert pskv.loads(text) == {
            "Menu": True,
            "Zoom": 1.25,
            "Title": "My Doc",
        }

    def test_arrays(self):
        data = pskv.loads("/Files [ (a.pdf) (b.pdf) 3 ] def\n")
        assert data == {"Files": ["a.pdf", "b.pdf", 3]}

    def test_escaped_parens_roundtrip(self):
        original = {"K": "value (with) parens"}
        assert pskv.loads(pskv.dumps(original)) == original

    def test_comments_skipped(self):
        assert pskv.loads("% comment\n/K 1 def\n") == {"K": 1}

    def test_malformed_line(self):
        with pytest.raises(ParseError):
            pskv.loads("K = 1\n")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            pskv.loads("/K (unterminated def\n")

    def test_key_with_whitespace_rejected_on_dump(self):
        with pytest.raises(ParseError):
            pskv.dumps({"bad key": 1})

    def test_hierarchical_key_names(self):
        data = pskv.loads("/Toolbars/Find/Visible false def\n")
        assert data == {"Toolbars/Find/Visible": False}


# -- round-trip property tests ------------------------------------------------

_stable_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7E
    ),
    min_size=1,
    max_size=12,
).filter(
    # Untyped text formats coerce tokens on load ("true" -> True,
    # "42" -> 42); only coercion-stable strings round-trip everywhere.
    lambda s: coerce_scalar(s) == s
)

_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    _stable_text,
    st.none(),
)

_key = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,10}", fullmatch=True)
_flat_key = st.builds(
    lambda parts: "/".join(parts),
    st.lists(_key, min_size=1, max_size=3),
)
_value = st.one_of(_scalars, st.lists(_scalars, max_size=4))


def _no_prefix_conflicts(data: dict) -> bool:
    keys = list(data)
    return not any(
        a != b and b.startswith(a + "/") for a in keys for b in keys
    )


_flat_dict = st.dictionaries(_flat_key, _value, max_size=8).filter(
    _no_prefix_conflicts
)


@pytest.mark.parametrize("format_name", ["plaintext", "ini", "json", "xml", "postscript"])
@given(data=_flat_dict)
def test_property_roundtrip(format_name, data):
    parser = get_parser(format_name)
    assert parser.loads(parser.dumps(data)) == data

"""Tests for the ConfigStore base: flat interface + observers."""

import pytest

from repro.common.clock import SimClock
from repro.exceptions import StoreError
from repro.stores.base import DictStore
from repro.stores.events import AccessEvent, AccessKind


@pytest.fixture
def store() -> DictStore:
    return DictStore(clock=SimClock(100.0))


@pytest.fixture
def events(store) -> list:
    collected: list[AccessEvent] = []
    store.subscribe(collected.append)
    return collected


class TestFlatInterface:
    def test_set_get(self, store):
        store.set("k", 42)
        assert store.get("k") == 42

    def test_get_default(self, store):
        assert store.get("absent", "fallback") == "fallback"

    def test_delete_removes(self, store):
        store.set("k", 1)
        store.delete("k")
        assert "k" not in store

    def test_delete_absent_is_noop(self, store, events):
        store.delete("ghost")
        assert events == []

    def test_len_and_keys(self, store):
        store.set("a", 1)
        store.set("b", 2)
        assert len(store) == 2
        assert store.keys() == ["a", "b"]

    def test_peek_does_not_notify(self, store, events):
        store.set("k", 1)
        events.clear()
        assert store.peek("k") == 1
        assert events == []

    def test_rejects_empty_key(self, store):
        with pytest.raises(StoreError):
            store.set("", 1)

    def test_rejects_non_string_key(self, store):
        with pytest.raises(StoreError):
            store.set(123, 1)

    def test_rejects_newline_in_key(self, store):
        with pytest.raises(StoreError):
            store.set("a\nb", 1)

    def test_rejects_unserialisable_value(self, store):
        with pytest.raises(StoreError):
            store.set("k", object())

    def test_accepts_nested_lists_and_dicts(self, store):
        store.set("k", {"a": [1, "x", None], "b": {"c": True}})
        assert store.get("k")["a"] == [1, "x", None]

    def test_rejects_dict_with_non_string_keys(self, store):
        with pytest.raises(StoreError):
            store.set("k", {1: "x"})


class TestObservers:
    def test_write_event(self, store, events):
        store.set("k", 7)
        assert events == [AccessEvent(AccessKind.WRITE, "k", 7, 100.0)]

    def test_read_event(self, store, events):
        store.get("k")
        assert events[0].kind is AccessKind.READ

    def test_delete_event(self, store, events):
        store.set("k", 1)
        store.delete("k")
        assert events[-1].kind is AccessKind.DELETE

    def test_event_carries_clock_time(self, store, events):
        store.clock.advance(23.0)
        store.set("k", 1)
        assert events[0].timestamp == 123.0

    def test_double_subscribe_rejected(self, store, events):
        observer = events.append
        with pytest.raises(StoreError):
            store.subscribe(observer)

    def test_unsubscribe_stops_events(self, store):
        collected = []
        store.subscribe(collected.append)
        store.unsubscribe(collected.append.__self__.append if False else collected.append)
        store.set("k", 1)
        assert collected == []

    def test_unsubscribe_unknown_raises(self, store):
        with pytest.raises(StoreError):
            store.unsubscribe(lambda e: None)


class TestBulkAndClone:
    def test_load_dict_silent_by_default(self, store, events):
        store.load_dict({"a": 1, "b": 2})
        assert events == []
        assert store.peek("a") == 1

    def test_load_dict_notify(self, store, events):
        store.load_dict({"a": 1}, notify=True)
        assert len(events) == 1

    def test_load_dict_validates(self, store):
        with pytest.raises(StoreError):
            store.load_dict({"a": object()})

    def test_as_dict_is_deep_copy(self, store):
        store.set("k", [1, 2])
        snapshot = store.as_dict()
        snapshot["k"].append(3)
        assert store.peek("k") == [1, 2]

    def test_clone_copies_data(self, store):
        store.set("k", [1])
        twin = store.clone()
        twin.set("k", [2])
        assert store.peek("k") == [1]

    def test_clone_has_no_observers(self, store, events):
        twin = store.clone()
        twin.set("k", 1)
        assert events == []

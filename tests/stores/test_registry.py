"""Tests for the Windows-registry emulator."""

import pytest

from repro.exceptions import StoreError
from repro.stores.registry import (
    RegistryStore,
    RegistryType,
    join_key,
    split_key,
)


@pytest.fixture
def reg() -> RegistryStore:
    return RegistryStore()


class TestKeyNames:
    def test_join(self):
        assert (
            join_key("HKCU", "Software\\Word", "Max Display")
            == "HKCU\\Software\\Word\\Max Display"
        )

    def test_join_strips_extra_backslashes(self):
        assert join_key("HKCU", "\\Software\\", "V") == "HKCU\\Software\\V"

    def test_split_roundtrip(self):
        key = join_key("HKLM", "System\\Service", "Param")
        assert split_key(key) == ("HKLM", "System\\Service", "Param")

    def test_join_rejects_bad_hive(self):
        with pytest.raises(StoreError):
            join_key("HKXX", "a", "b")

    def test_split_rejects_malformed(self):
        with pytest.raises(StoreError):
            split_key("justonepart")


class TestTypes:
    def test_sz_accepts_string(self):
        RegistryType.REG_SZ.validate("hello")

    def test_sz_rejects_int(self):
        with pytest.raises(StoreError):
            RegistryType.REG_SZ.validate(5)

    def test_dword_range(self):
        RegistryType.REG_DWORD.validate(0)
        RegistryType.REG_DWORD.validate(2**32 - 1)
        with pytest.raises(StoreError):
            RegistryType.REG_DWORD.validate(2**32)
        with pytest.raises(StoreError):
            RegistryType.REG_DWORD.validate(-1)

    def test_dword_rejects_bool(self):
        with pytest.raises(StoreError):
            RegistryType.REG_DWORD.validate(True)

    def test_qword_wider_than_dword(self):
        RegistryType.REG_QWORD.validate(2**40)

    def test_binary_hex_string(self):
        RegistryType.REG_BINARY.validate("deadBEEF00")
        with pytest.raises(StoreError):
            RegistryType.REG_BINARY.validate("not-hex!")

    def test_multi_sz_list_of_strings(self):
        RegistryType.REG_MULTI_SZ.validate(["a", "b"])
        with pytest.raises(StoreError):
            RegistryType.REG_MULTI_SZ.validate(["a", 1])


class TestRegistryStore:
    def test_set_query_roundtrip(self, reg):
        reg.set_value("HKCU", "Software\\App", "Name", "value")
        assert reg.query_value("HKCU", "Software\\App", "Name") == "value"

    def test_query_missing_raises(self, reg):
        with pytest.raises(StoreError):
            reg.query_value("HKCU", "Software\\App", "Ghost")

    def test_set_validates_type(self, reg):
        with pytest.raises(StoreError):
            reg.set_value(
                "HKCU", "App", "N", "text", RegistryType.REG_DWORD
            )

    def test_value_type_tracked(self, reg):
        reg.set_value("HKCU", "App", "N", 7, RegistryType.REG_DWORD)
        assert reg.value_type("HKCU", "App", "N") is RegistryType.REG_DWORD

    def test_value_type_missing_raises(self, reg):
        with pytest.raises(StoreError):
            reg.value_type("HKCU", "App", "Ghost")

    def test_delete_value(self, reg):
        reg.set_value("HKCU", "App", "N", "x")
        reg.delete_value("HKCU", "App", "N")
        with pytest.raises(StoreError):
            reg.query_value("HKCU", "App", "N")

    def test_enum_values_direct_children_only(self, reg):
        reg.set_value("HKCU", "App", "A", "1")
        reg.set_value("HKCU", "App", "B", "2")
        reg.set_value("HKCU", "App\\Sub", "C", "3")
        assert sorted(reg.enum_values("HKCU", "App")) == ["A", "B"]

    def test_enum_subkeys(self, reg):
        reg.set_value("HKCU", "App\\Sub1", "A", "1")
        reg.set_value("HKCU", "App\\Sub2\\Deep", "B", "2")
        assert sorted(reg.enum_subkeys("HKCU", "App")) == ["Sub1", "Sub2"]

    def test_delete_tree(self, reg):
        reg.set_value("HKCU", "App\\Sub", "A", "1")
        reg.set_value("HKCU", "App\\Sub", "B", "2")
        reg.set_value("HKCU", "Other", "C", "3")
        removed = reg.delete_tree("HKCU", "App")
        assert removed == 2
        assert reg.query_value("HKCU", "Other", "C") == "3"

    def test_clone_copies_types(self, reg):
        reg.set_value("HKCU", "App", "N", 7, RegistryType.REG_DWORD)
        twin = reg.clone()
        assert twin.value_type("HKCU", "App", "N") is RegistryType.REG_DWORD

    def test_events_flow_through_flat_interface(self, reg):
        seen = []
        reg.subscribe(seen.append)
        reg.set_value("HKCU", "App", "N", "x")
        assert seen[0].key == "HKCU\\App\\N"

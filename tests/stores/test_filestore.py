"""Tests for the file-backed store and its flush semantics."""

import pytest

from repro.common.clock import SimClock
from repro.exceptions import StoreError
from repro.stores.filestore import FileStore, VirtualFile


@pytest.fixture
def file() -> VirtualFile:
    return VirtualFile("/home/user/.app/config.json")


@pytest.fixture
def store(file) -> FileStore:
    return FileStore(file, "json", clock=SimClock(50.0))


class TestVirtualFile:
    def test_initial_content(self):
        f = VirtualFile("/p", "hello")
        assert f.content == "hello"

    def test_empty_path_rejected(self):
        with pytest.raises(StoreError):
            VirtualFile("")

    def test_write_updates_content_and_mtime(self, file):
        file.write("new", 12.0)
        assert file.content == "new"
        assert file.mtime == 12.0

    def test_watchers_notified_with_old_and_new(self, file):
        seen = []
        file.watch(lambda *args: seen.append(args))
        file.write("v1", 1.0)
        file.write("v2", 2.0)
        assert seen[0] == (file.path, "", "v1", 1.0)
        assert seen[1] == (file.path, "v1", "v2", 2.0)

    def test_double_watch_rejected(self, file):
        def watcher(*a):
            pass

        file.watch(watcher)
        with pytest.raises(StoreError):
            file.watch(watcher)

    def test_unwatch(self, file):
        seen = []

        def watcher(*a):
            seen.append(a)

        file.watch(watcher)
        file.unwatch(watcher)
        file.write("x", 1.0)
        assert seen == []

    def test_unwatch_unknown_raises(self, file):
        with pytest.raises(StoreError):
            file.unwatch(lambda *a: None)


class TestFileStore:
    def test_autoflush_serialises_on_set(self, store, file):
        store.set("a/b", 1)
        assert '"b": 1' in file.content

    def test_autoflush_on_delete(self, store, file):
        store.set("a", 1)
        store.delete("a")
        assert '"a"' not in file.content

    def test_delete_absent_does_not_flush(self, store, file):
        store.set("a", 1)
        before_mtime = file.mtime
        store.clock.advance(5.0)
        store.delete("ghost")
        assert file.mtime == before_mtime

    def test_batched_mode_defers_flush(self, file):
        store = FileStore(file, "json", autoflush=False)
        store.set("a", 1)
        store.set("a", 2)
        assert file.content == ""
        store.flush()
        assert '"a": 2' in file.content

    def test_reload_parses_file(self, file):
        file.write('{"x": {"y": 5}}', 1.0)
        store = FileStore(file, "json")
        assert store.peek("x/y") == 5

    def test_flush_timestamp_is_clock_time(self, store, file):
        store.clock.advance(10.0)
        store.set("a", 1)
        assert file.mtime == 60.0

    def test_clone_does_not_share_file(self, store, file):
        store.set("a", 1)
        twin = store.clone()
        twin.set("a", 2)
        assert '"a": 1' in file.content
        assert twin.peek("a") == 2

    def test_clone_file_not_watched(self, store, file):
        seen = []
        file.watch(lambda *a: seen.append(a))
        twin = store.clone()
        twin.set("a", 1)
        assert seen == []

    def test_unknown_format_rejected(self, file):
        with pytest.raises(ValueError):
            FileStore(file, "yaml")

    def test_postscript_format(self):
        f = VirtualFile("/prefs")
        store = FileStore(f, "postscript")
        store.set("Zoom", 1.5)
        assert "/Zoom 1.5 def" in f.content

"""Tests for the GConf emulator."""

import pytest

from repro.exceptions import StoreError
from repro.stores.gconf import GConfStore, validate_path


@pytest.fixture
def gconf() -> GConfStore:
    return GConfStore()


class TestPathValidation:
    def test_valid_paths(self):
        validate_path("/apps/evolution/mail/mark_seen")
        validate_path("/")

    @pytest.mark.parametrize(
        "path", ["relative/path", "/trailing/", "/double//slash", ""]
    )
    def test_invalid_paths(self, path):
        with pytest.raises(StoreError):
            validate_path(path)


class TestTypedAccess:
    def test_bool_roundtrip(self, gconf):
        gconf.set_bool("/a/flag", True)
        assert gconf.get_bool("/a/flag") is True

    def test_int_roundtrip(self, gconf):
        gconf.set_int("/a/n", 42)
        assert gconf.get_int("/a/n") == 42

    def test_float_roundtrip(self, gconf):
        gconf.set_float("/a/x", 1.5)
        assert gconf.get_float("/a/x") == 1.5

    def test_string_roundtrip(self, gconf):
        gconf.set_string("/a/s", "hello")
        assert gconf.get_string("/a/s") == "hello"

    def test_list_roundtrip(self, gconf):
        gconf.set_list("/a/l", [1, 2])
        assert gconf.get_list("/a/l") == [1, 2]

    def test_defaults_when_unset(self, gconf):
        assert gconf.get_bool("/none") is False
        assert gconf.get_int("/none") == 0
        assert gconf.get_string("/none") == ""
        assert gconf.get_list("/none") == []

    def test_set_int_rejects_bool(self, gconf):
        with pytest.raises(StoreError):
            gconf.set_int("/a/n", True)

    def test_set_wrong_type_rejected(self, gconf):
        with pytest.raises(StoreError):
            gconf.set_string("/a/s", 5)

    def test_type_conflict_on_write(self, gconf):
        gconf.set_bool("/a/v", True)
        with pytest.raises(StoreError):
            gconf.set_int("/a/v", 1)

    def test_type_conflict_on_read(self, gconf):
        gconf.set_bool("/a/v", True)
        with pytest.raises(StoreError):
            gconf.get_int("/a/v")

    def test_unset_clears_type(self, gconf):
        gconf.set_bool("/a/v", True)
        gconf.unset("/a/v")
        gconf.set_int("/a/v", 3)
        assert gconf.get_int("/a/v") == 3


class TestDirectoryListing:
    def test_all_entries_direct_only(self, gconf):
        gconf.set_bool("/apps/x/flag", True)
        gconf.set_bool("/apps/x/sub/flag", True)
        assert gconf.all_entries("/apps/x") == ["/apps/x/flag"]

    def test_all_dirs(self, gconf):
        gconf.set_bool("/apps/x/sub1/a", True)
        gconf.set_bool("/apps/x/sub2/deep/b", True)
        assert sorted(gconf.all_dirs("/apps/x")) == [
            "/apps/x/sub1",
            "/apps/x/sub2",
        ]

    def test_clone_preserves_types(self, gconf):
        gconf.set_bool("/a/v", True)
        twin = gconf.clone()
        with pytest.raises(StoreError):
            twin.set_int("/a/v", 1)

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_options(self):
        args = build_parser().parse_args(
            ["table2", "--window", "30", "--threshold", "1"]
        )
        assert args.window == 30.0
        assert args.threshold == 1.0

    def test_fig2_points_parse(self):
        args = build_parser().parse_args(["fig2a", "--points", "1,2,3"])
        assert args.points == (1.0, 2.0, 3.0)

    def test_fig2_points_reject_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2a", "--points", "a,b"])

    def test_repair_requires_case(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["repair"])

    def test_repair_case_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["repair", "--case", "17"])


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Bookmark bar is missing." in out

    def test_list_cases(self, capsys):
        assert main(["list-cases"]) == 0
        assert "Acrobat Reader" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Manual" in out

    def test_table2_reduced(self, capsys):
        # A fast, reduced-days run through the real pipeline.
        assert main(["table2", "--days", "6", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Eye of GNOME" in out

    def test_repair_case12(self, capsys):
        assert main(["repair", "--case", "12", "--days-before-end", "5"]) == 0
        out = capsys.readouterr().out
        assert "error #12" in out
        assert "FIXED" in out


class TestStreamExecutorFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.executor == "serial"
        assert args.workers is None
        assert args.timings is False

    def test_executor_and_workers_parse(self):
        args = build_parser().parse_args(
            ["stream", "--executor", "thread", "--workers", "3", "--timings"]
        )
        assert args.executor == "thread"
        assert args.workers == 3
        assert args.timings is True

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--executor", "fleet"])

    @pytest.mark.parametrize("workers", ("0", "-2", "two"))
    def test_nonpositive_workers_rejected(self, workers):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--workers", workers])

    def test_worker_validation_shares_the_executor_message(self, capsys):
        # one source of truth: the CLI routes through the executors'
        # _checked_workers rule instead of a parallel argparse check
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--workers", "0"])
        assert "workers must be at least 1, got 0" in capsys.readouterr().err

    def test_non_integer_workers_message(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--workers", "two"])
        assert "workers must be an integer, got 'two'" in capsys.readouterr().err

    def test_kernel_parses_and_defaults_to_checkpoint_friendly_none(self):
        assert build_parser().parse_args(["stream"]).kernel is None
        args = build_parser().parse_args(["stream", "--kernel", "numpy"])
        assert args.kernel == "numpy"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--kernel", "fortran"])

    def test_journal_parses_and_defaults_to_checkpoint_friendly_none(self):
        assert build_parser().parse_args(["stream"]).journal is None
        args = build_parser().parse_args(["stream", "--journal", "columnar"])
        assert args.journal == "columnar"

    def test_unknown_journal_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--journal", "redis"])


class TestStreamCommand:
    ARGS = ["stream", "--shards", "2", "--days", "2", "--chunks", "3"]

    def _run(self, capsys, *extra):
        assert main(self.ARGS + list(extra)) == 0
        return capsys.readouterr().out.splitlines()

    def test_identical_output_across_executors(self, capsys, tmp_path):
        """Same trace, same clusters, same progress — whatever the executor.

        The header line names the executor, so everything after it must
        match byte for byte (timings stay off: they are wall-clock noise).
        """
        outputs = {}
        for executor in ("serial", "thread", "process"):
            state = tmp_path / f"{executor}.json"
            lines = self._run(
                capsys,
                "--executor", executor, "--workers", "2", "--state", str(state),
            )
            assert state.exists()
            # drop the header (names the executor) and the state path line
            outputs[executor] = lines[1:-1]
        assert outputs["serial"] == outputs["thread"] == outputs["process"]

    def test_resume_uses_requested_executor(self, capsys, tmp_path):
        state = tmp_path / "session.json"
        first = self._run(capsys, "--state", str(state))
        assert any("checkpointed" in line for line in first)
        resumed = self._run(
            capsys,
            "--executor", "thread", "--workers", "2", "--state", str(state),
        )
        assert any("resumed session" in line for line in resumed)
        assert any("0 new event(s) consumed" in line for line in resumed)

    def test_timings_flag_adds_shard_timing(self, capsys):
        lines = self._run(capsys, "--timings")
        assert any("slowest shard" in line for line in lines)
        assert any("kernel" in line for line in lines)

    def test_timings_flag_adds_ingest_line(self, capsys):
        lines = self._run(capsys, "--timings")
        assert any("ingest" in line and "append + routing" in line for line in lines)

    def test_identical_output_across_journal_backends(self, capsys):
        """Same clusters and progress whatever the journal backend."""
        pytest.importorskip(
            "numpy", reason="--journal columnar needs numpy", exc_type=ImportError
        )
        outputs = {
            journal: self._run(capsys, "--journal", journal)
            for journal in ("auto", "columnar", "list")
        }
        assert outputs["auto"] == outputs["columnar"] == outputs["list"]

    def test_journal_resume_override(self, capsys, tmp_path):
        """A checkpoint written by one backend resumes under another."""
        pytest.importorskip(
            "numpy", reason="--journal columnar needs numpy", exc_type=ImportError
        )
        state = tmp_path / "session.json"
        self._run(capsys, "--journal", "columnar", "--state", str(state))
        resumed = self._run(
            capsys, "--journal", "list", "--state", str(state)
        )
        assert any("resumed session" in line for line in resumed)
        assert any("0 new event(s) consumed" in line for line in resumed)

    def test_identical_output_across_kernels(self, capsys):
        """Same clusters and progress whatever the agglomeration kernel."""
        pytest.importorskip(
            "numpy", reason="--kernel numpy needs numpy", exc_type=ImportError
        )
        outputs = {
            kernel: self._run(capsys, "--kernel", kernel)
            for kernel in ("auto", "numpy", "python")
        }
        assert outputs["auto"] == outputs["numpy"] == outputs["python"]


class TestFleetExecutorFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.machines == 3
        assert args.profile == "Linux-1"
        assert args.executor == "serial"
        assert args.workers is None
        assert args.max_lag is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fleet", "--machines", "4", "--executor", "thread",
                "--workers", "2", "--max-lag", "50", "--state", "dir",
            ]
        )
        assert args.machines == 4
        assert args.executor == "thread"
        assert args.workers == 2
        assert args.max_lag == 50
        assert args.state == "dir"

    def test_process_executor_rejected(self):
        # the process executor's worker-affinity cache is per-session
        # state, so the fleet deliberately does not offer it
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--executor", "process"])

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--workers", "0"])


class TestFleetCommand:
    ARGS = ["fleet", "--machines", "2", "--days", "1", "--chunks", "3"]

    def _run(self, capsys, *extra):
        assert main(self.ARGS + list(extra)) == 0
        return capsys.readouterr().out.splitlines()

    def test_identical_output_across_executors(self, capsys, tmp_path):
        """Same fleet, same rounds, same clusters — whatever the executor.

        The header line names the executor, so everything after it must
        match byte for byte; the checkpoint line names the per-executor
        state directory, so it is dropped too.
        """
        outputs = {}
        for executor in ("serial", "thread"):
            state = tmp_path / executor
            lines = self._run(
                capsys,
                "--executor", executor, "--workers", "2", "--state", str(state),
            )
            assert (state / "fleet.json").exists()
            # crash-safe layout: machine files live in a generation dir
            assert (state / "gen-000001" / "machine-m000.json").exists()
            assert (state / "gen-000001" / "manifest.json").exists()
            outputs[executor] = lines[1:-1]
        assert outputs["serial"] == outputs["thread"]

    def test_resume_consumes_nothing_new(self, capsys, tmp_path):
        state = tmp_path / "fleet-state"
        first = self._run(capsys, "--state", str(state))
        assert any("checkpointed" in line for line in first)
        resumed = self._run(
            capsys,
            "--executor", "thread", "--workers", "2", "--state", str(state),
        )
        assert any("resumed fleet session" in line for line in resumed)
        assert any("0 new event(s) consumed" in line for line in resumed)

    def test_resume_matches_uninterrupted_run(self, capsys, tmp_path):
        """Checkpoint/resume lands on the same fleet cluster model.

        The uninterrupted run's final cluster count must reappear in the
        resumed run's summary line — byte-identical tail."""
        straight = self._run(capsys)
        state = tmp_path / "fleet-state"
        self._run(capsys, "--state", str(state))
        resumed = self._run(capsys, "--state", str(state))
        # "-> N fleet clusters (M multi-key)" must match the last round
        model = straight[-1].split("->", 1)[1].split(";", 1)[0].strip()
        assert "fleet clusters" in model
        assert any(model in line for line in resumed)

    def test_backpressure_bounds_feed(self, capsys):
        lines = self._run(capsys, "--max-lag", "40")
        fed = [
            int(line.split("+", 1)[1].split()[0])
            for line in lines
            if line.lstrip().startswith("round")
        ]
        # 2 machines x 40 events max per round
        assert fed and all(count <= 80 for count in fed)
        # throttling converges to the same model as the unthrottled run
        model = lines[-1].split("->", 1)[1].split(";", 1)[0]
        assert model == self._run(capsys)[-1].split("->", 1)[1].split(";", 1)[0]

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_options(self):
        args = build_parser().parse_args(
            ["table2", "--window", "30", "--threshold", "1"]
        )
        assert args.window == 30.0
        assert args.threshold == 1.0

    def test_fig2_points_parse(self):
        args = build_parser().parse_args(["fig2a", "--points", "1,2,3"])
        assert args.points == (1.0, 2.0, 3.0)

    def test_fig2_points_reject_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2a", "--points", "a,b"])

    def test_repair_requires_case(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["repair"])

    def test_repair_case_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["repair", "--case", "17"])


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Bookmark bar is missing." in out

    def test_list_cases(self, capsys):
        assert main(["list-cases"]) == 0
        assert "Acrobat Reader" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Manual" in out

    def test_table2_reduced(self, capsys):
        # A fast, reduced-days run through the real pipeline.
        assert main(["table2", "--days", "6", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Eye of GNOME" in out

    def test_repair_case12(self, capsys):
        assert main(["repair", "--case", "12", "--days-before-end", "5"]) == 0
        out = capsys.readouterr().out
        assert "error #12" in out
        assert "FIXED" in out

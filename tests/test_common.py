"""Tests for repro.common: the simulated clock and formatting helpers."""

import pytest

from repro.common.clock import SimClock
from repro.common.format import (
    format_bytes,
    format_mmss,
    format_si,
    quantize_timestamp,
)


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(12.5).now() == 12.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.advance(4.5)
        assert clock.now() == 7.5

    def test_advance_returns_new_time(self):
        assert SimClock(1.0).advance(2.0) == 3.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_zero_is_allowed(self):
        clock = SimClock(5.0)
        clock.advance(0.0)
        assert clock.now() == 5.0

    def test_elapsed_since(self):
        clock = SimClock(10.0)
        clock.advance(15.0)
        assert clock.elapsed_since(10.0) == 15.0


class TestFormatMmss:
    def test_seconds_only(self):
        assert format_mmss(34) == "0:34"

    def test_minutes_and_seconds(self):
        assert format_mmss(28 * 60 + 40) == "28:40"

    def test_zero(self):
        assert format_mmss(0) == "0:00"

    def test_pads_single_digit_seconds(self):
        assert format_mmss(61) == "1:01"

    def test_rounds_fractional_seconds(self):
        assert format_mmss(59.6) == "1:00"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_mmss(-1)


class TestFormatSi:
    def test_millions(self):
        assert format_si(6_760_000) == "6.76M"

    def test_thousands(self):
        assert format_si(67_720) == "67.72K"

    def test_sub_thousand_still_k(self):
        assert format_si(480) == "0.48K"

    def test_small_plain(self):
        assert format_si(35) == "35"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_si(-5)


class TestFormatBytes:
    def test_megabytes(self):
        assert format_bytes(85 * 1024 * 1024) == "85MB"

    def test_sub_megabyte(self):
        assert format_bytes(102_400) == "0.1MB"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestQuantizeTimestamp:
    def test_truncates_to_second(self):
        assert quantize_timestamp(12.9) == 12.0

    def test_exact_multiple_unchanged(self):
        assert quantize_timestamp(12.0) == 12.0

    def test_zero_precision_disables(self):
        assert quantize_timestamp(12.34, precision=0) == 12.34

    def test_coarser_precision(self):
        assert quantize_timestamp(125.0, precision=60.0) == 120.0

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            quantize_timestamp(-1.0)

    def test_rejects_negative_precision(self):
        with pytest.raises(ValueError):
            quantize_timestamp(1.0, precision=-1.0)

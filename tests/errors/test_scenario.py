"""Unit tests for error-scenario assembly."""

import pytest

from repro.common.format import SECONDS_PER_DAY
from repro.errors.cases import case_by_id
from repro.errors.scenario import prepare_scenario
from repro.exceptions import InjectionError
from repro.ttkv.store import DELETED


class TestPrepareScenario:
    def test_wrong_trace_rejected(self, chrome_trace):
        with pytest.raises(InjectionError, match="does not run"):
            prepare_scenario(chrome_trace, case_by_id(8))  # Evolution case

    def test_too_many_spurious_writes_rejected(self, chrome_trace):
        with pytest.raises(InjectionError, match="spurious"):
            prepare_scenario(chrome_trace, case_by_id(13), spurious_writes=3)

    def test_injection_time_position(self, chrome_trace):
        scenario = prepare_scenario(
            chrome_trace, case_by_id(13), days_before_end=7
        )
        expected = chrome_trace.end_time - 7 * SECONDS_PER_DAY
        assert scenario.injection_time == expected
        assert scenario.end_time == chrome_trace.end_time

    def test_erroneous_value_is_current(self, chrome_trace):
        scenario = prepare_scenario(chrome_trace, case_by_id(13))
        key = scenario.app.canonical_key("bookmark_bar/show_on_all_tabs")
        assert scenario.ttkv.current_value(key) is False

    def test_good_value_precedes_injection(self, chrome_trace):
        scenario = prepare_scenario(chrome_trace, case_by_id(13))
        key = scenario.app.canonical_key("bookmark_bar/show_on_all_tabs")
        before = scenario.ttkv.value_at(key, scenario.injection_time - 1)
        assert before is True

    def test_live_store_synced(self, chrome_trace):
        scenario = prepare_scenario(chrome_trace, case_by_id(13))
        assert scenario.app.value("bookmark_bar/show_on_all_tabs") is False

    def test_post_injection_writes_dropped_for_offending_keys(
        self, chrome_trace
    ):
        scenario = prepare_scenario(
            chrome_trace, case_by_id(13), days_before_end=14
        )
        key = scenario.app.canonical_key("bookmark_bar/show_on_all_tabs")
        post = [
            entry
            for entry in scenario.ttkv.history(key)
            if entry.timestamp > scenario.injection_time
        ]
        assert post == []

    def test_spurious_writes_recorded_after_injection(self, chrome_trace):
        scenario = prepare_scenario(
            chrome_trace, case_by_id(13), spurious_writes=2
        )
        url = scenario.app.canonical_key("homepage/url")
        post = [
            entry
            for entry in scenario.ttkv.history(url)
            if entry.timestamp > scenario.injection_time
        ]
        assert len(post) >= 2

    def test_word_deletion_injection(self):
        """Case 2's injection records deletions for every Item slot."""
        from repro.experiments.recovery import trace_for

        trace = trace_for("Windows 7")
        scenario = prepare_scenario(trace, case_by_id(2))
        item1 = scenario.app.canonical_key("RecentFiles/Item1")
        assert scenario.ttkv.current_value(item1) is DELETED

    def test_tuned_parameters_exposed(self, chrome_trace):
        default = prepare_scenario(chrome_trace, case_by_id(13))
        assert default.window == 1.0
        assert default.correlation_threshold == 2.0

    def test_base_trace_not_mutated(self, chrome_trace):
        before = len(chrome_trace.ttkv.write_events())
        prepare_scenario(chrome_trace, case_by_id(14))
        assert len(chrome_trace.ttkv.write_events()) == before

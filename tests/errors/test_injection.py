"""Tests for trace rewriting and error injection."""

import pytest

from repro.apps.catalog import create_app
from repro.errors.injection import inject_events, rebuild_with_error, sync_app_store
from repro.exceptions import InjectionError
from repro.ttkv.store import DELETED, TTKV


@pytest.fixture
def base_store() -> TTKV:
    store = TTKV()
    store.record_write("k", "good", 100.0)
    store.record_write("k", "better", 200.0)
    store.record_write("other", 1, 150.0)
    store.record_reads("k", 7)
    return store


class TestInjectEvents:
    def test_merges_new_events_in_order(self, base_store):
        rebuilt = inject_events(base_store, [(175.0, "k", "mid")])
        values = [v.value for v in rebuilt.history("k")]
        assert values == ["good", "mid", "better"]

    def test_drop_after_removes_later_writes(self, base_store):
        rebuilt = inject_events(
            base_store, [(175.0, "k", "bad")], drop_after={"k": 175.0}
        )
        assert rebuilt.current_value("k") == "bad"

    def test_drop_only_affects_named_keys(self, base_store):
        rebuilt = inject_events(base_store, [], drop_after={"k": 0.0})
        assert "other" in rebuilt
        assert rebuilt.current_value("other") == 1

    def test_read_counters_preserved(self, base_store):
        rebuilt = inject_events(base_store, [(175.0, "k", "x")])
        assert rebuilt.record_for("k").reads == 7

    def test_deletion_events(self, base_store):
        rebuilt = inject_events(base_store, [(300.0, "k", DELETED)])
        assert rebuilt.current_value("k") is DELETED


class TestRebuildWithError:
    def test_injects_error_as_current_value(self, base_store):
        rebuilt = rebuild_with_error(base_store, {"k": "broken"}, 150.0)
        assert rebuilt.current_value("k") == "broken"
        assert rebuilt.value_at("k", 149.0) == "good"

    def test_seed_events_included(self, base_store):
        rebuilt = rebuild_with_error(
            base_store,
            {"new_key": "broken"},
            150.0,
            seed_events=[(50.0, "new_key", "seeded")],
        )
        assert rebuilt.value_at("new_key", 60.0) == "seeded"

    def test_empty_assignments_rejected(self, base_store):
        with pytest.raises(InjectionError):
            rebuild_with_error(base_store, {}, 150.0)

    def test_injection_before_trace_rejected(self, base_store):
        with pytest.raises(InjectionError):
            rebuild_with_error(base_store, {"k": "x"}, 10.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(InjectionError):
            rebuild_with_error(TTKV(), {"k": "x"}, 10.0)


class TestSyncAppStore:
    def test_sets_live_values(self):
        app = create_app("Chrome Browser")
        key = app.canonical_key("bookmark_bar/show_on_all_tabs")
        store = TTKV()
        store.record_write(key, False, 10.0)
        sync_app_store(app, store)
        assert app.value("bookmark_bar/show_on_all_tabs") is False

    def test_deletion_removes_from_live_store(self):
        app = create_app("MS Word")
        key = app.canonical_key("Options/MaxDisplay")
        store = TTKV()
        store.record_write(key, 5, 10.0)
        store.record_delete(key, 20.0)
        sync_app_store(app, store)
        assert app.value("Options/MaxDisplay") is None

    def test_foreign_keys_ignored(self):
        app = create_app("Chrome Browser")
        store = TTKV()
        store.record_write("/apps/evolution/mail/mark_seen", False, 10.0)
        before = app.store.as_dict()
        sync_app_store(app, store)
        assert app.store.as_dict() == before

    def test_sync_is_silent(self):
        app = create_app("Chrome Browser")
        seen = []
        app.store.subscribe(seen.append)
        store = TTKV()
        store.record_write(
            app.canonical_key("bookmark_bar/show_on_all_tabs"), False, 10.0
        )
        sync_app_store(app, store)
        assert seen == []

"""Tests for the 16 Table III error case definitions."""

import pytest

from repro.apps.catalog import create_app
from repro.errors.cases import ERROR_CASES, case_by_id
from repro.repair.replay import replay_trial
from repro.repair.trial import Trial
from repro.ttkv.store import DELETED
from repro.workload.machines import profile_by_name


class TestCatalogue:
    def test_sixteen_cases(self):
        assert len(ERROR_CASES) == 16
        assert [c.case_id for c in ERROR_CASES] == list(range(1, 17))

    def test_lookup(self):
        assert case_by_id(15).app_name == "Acrobat Reader"

    def test_unknown_id(self):
        with pytest.raises(ValueError):
            case_by_id(17)

    def test_multi_key_cases_match_table4(self):
        noclust_failures = {c.case_id for c in ERROR_CASES if c.multi_key}
        assert noclust_failures == {2, 4, 6, 7, 9}

    def test_tuned_cases_match_paper(self):
        tuned = {
            c.case_id for c in ERROR_CASES
            if c.tuned_window or c.tuned_threshold
        }
        assert tuned == {2, 4}

    def test_trace_names_exist(self):
        for case in ERROR_CASES:
            profile = profile_by_name(case.trace_name)
            assert case.app_name in profile.apps, case.case_id

    def test_loggers_match_store_kinds(self):
        kind_by_logger = {"Registry": "registry", "GConf": "gconf", "File": "file"}
        for case in ERROR_CASES:
            app = create_app(case.app_name)
            assert app.store_kind == kind_by_logger[case.logger], case.case_id

    def test_spurious_options_present(self):
        for case in ERROR_CASES:
            assert len(case.spurious_options) == 2, case.case_id


def _apply_assignments(app, assignments):
    for local, value in assignments.items():
        store_key = app.store_key(local)
        if value is DELETED:
            app.store._data.pop(store_key, None)
        else:
            app.store._data[store_key] = value


@pytest.mark.parametrize("case", ERROR_CASES, ids=lambda c: f"case{c.case_id}")
class TestCaseSemantics:
    def test_injection_keys_in_schema(self, case):
        app = create_app(case.app_name)
        for local in case.injection:
            assert local in app.schema, local

    def test_good_state_renders_fixed(self, case):
        app = create_app(case.app_name)
        _apply_assignments(app, case.good_values)
        shot = replay_trial(app, Trial.record(case.app_name, list(case.trial_actions)))
        assert case.fixed(shot), f"case {case.case_id} good state not fixed"

    def test_injected_state_renders_symptom(self, case):
        app = create_app(case.app_name)
        _apply_assignments(app, case.good_values)
        _apply_assignments(app, case.injection)
        shot = replay_trial(app, Trial.record(case.app_name, list(case.trial_actions)))
        assert case.symptomatic(shot), f"case {case.case_id} symptom missing"

    def test_spurious_options_keep_symptom(self, case):
        for option in case.spurious_options:
            app = create_app(case.app_name)
            _apply_assignments(app, case.good_values)
            _apply_assignments(app, case.injection)
            _apply_assignments(app, option)
            shot = replay_trial(
                app, Trial.record(case.app_name, list(case.trial_actions))
            )
            assert case.symptomatic(shot), (
                f"case {case.case_id}: spurious option {option} cured the error"
            )

    def test_multi_key_errors_resist_single_key_rollback(self, case):
        """For the five NoClust-failing cases, restoring any single
        offending setting alone must not remove the symptom."""
        if not case.multi_key:
            pytest.skip("single-key case")
        for local in case.injection:
            app = create_app(case.app_name)
            _apply_assignments(app, case.good_values)
            _apply_assignments(app, case.injection)
            # roll back one key to its good value
            good = dict(case.good_values)
            if local in good:
                _apply_assignments(app, {local: good[local]})
            shot = replay_trial(
                app, Trial.record(case.app_name, list(case.trial_actions))
            )
            assert case.symptomatic(shot), (
                f"case {case.case_id}: single-key rollback of {local} "
                "unexpectedly fixed the error"
            )

"""FleetPipeline: the asyncio driver against the concatenated-batch reference."""

import asyncio

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.executors import ThreadShardExecutor
from repro.fleet import FleetPipeline, concatenated_batch_clusters
from repro.ttkv.store import TTKV
from repro.workload.machines import PROFILES, profile_by_name
from repro.workload.tracegen import generate_trace

_KEYS = ("mail/a", "mail/b", "mail/c", "edit/x", "edit/y", "misc")
_PREFIXES = ("mail/", "edit/")

_machine_events = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=600, allow_nan=False),
        st.sampled_from(_KEYS),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=0,
    max_size=30,
)


def _cluster_sets(cluster_set):
    return sorted(tuple(sorted(cluster.keys)) for cluster in cluster_set)


def _reference(machine_events, machine_prefixes=None):
    key_sets = concatenated_batch_clusters(
        machine_events,
        machine_prefixes
        or {machine_id: _PREFIXES for machine_id in machine_events},
    )
    return sorted(tuple(sorted(keys)) for keys in key_sets)


def _chunked(events, chunks):
    size = max(1, -(-len(events) // max(1, chunks)))
    return [events[start : start + size] for start in range(0, len(events), size)]


def _drive(fleet, feeds, **kwargs):
    return asyncio.run(fleet.drive(feeds, **kwargs))


@given(
    st.lists(_machine_events, min_size=1, max_size=3),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_drive_equals_concatenated_batch(machine_streams, chunks):
    """Driving chunked feeds lands on the one-big-batch cluster model."""
    machine_events = {
        f"m{i}": sorted(events, key=lambda e: e[0])
        for i, events in enumerate(machine_streams)
    }
    fleet = FleetPipeline()
    for machine_id in machine_events:
        fleet.add_machine(machine_id, TTKV(), _PREFIXES)
    feeds = {
        machine_id: _chunked(events, chunks)
        for machine_id, events in machine_events.items()
    }
    _drive(fleet, feeds)
    assert _cluster_sets(fleet.clusters()) == _reference(machine_events)
    fleet.close()


@given(
    _machine_events,
    _machine_events,
    _machine_events,
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_machines_joining_and_leaving_mid_stream(first, second, late, chunks):
    """Members change between drives; the model tracks the live fleet."""
    streams = {
        "m0": sorted(first, key=lambda e: e[0]),
        "m1": sorted(second, key=lambda e: e[0]),
        "late": sorted(late, key=lambda e: e[0]),
    }
    fleet = FleetPipeline()
    fleet.add_machine("m0", TTKV(), _PREFIXES)
    fleet.add_machine("m1", TTKV(), _PREFIXES)
    half = {
        machine_id: _chunked(streams[machine_id][: len(streams[machine_id]) // 2], chunks)
        for machine_id in ("m0", "m1")
    }
    _drive(fleet, half)
    # late joiner arrives mid-stream; m1 departs with its evidence
    fleet.add_machine("late", TTKV(), _PREFIXES)
    rest = {
        "m0": _chunked(streams["m0"][len(streams["m0"]) // 2 :], chunks),
        "m1": _chunked(streams["m1"][len(streams["m1"]) // 2 :], chunks),
        "late": _chunked(streams["late"], chunks),
    }
    _drive(fleet, rest)
    fleet.remove_machine("m1")
    live = {"m0": streams["m0"], "late": streams["late"]}
    assert _cluster_sets(fleet.update()) == _reference(live)
    fleet.close()


@given(
    _machine_events,
    _machine_events,
    _machine_events,
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_schedule_hook_joins_and_leaves_within_one_drive(
    first, second, late, chunks
):
    """The driver's ``schedule`` hook churns membership inside one drive.

    ``late`` joins at round 2 with its own feed, ``m1`` is removed at
    round 3 (its evidence retired, its remaining buffered feed dropped);
    the final model must equal the batch reference over the machines
    still attached, fed exactly what they delivered.
    """
    streams = {
        "m0": sorted(first, key=lambda e: e[0]),
        "m1": sorted(second, key=lambda e: e[0]),
        "late": sorted(late, key=lambda e: e[0]),
    }
    fleet = FleetPipeline()
    fleet.add_machine("m0", TTKV(), _PREFIXES)
    fleet.add_machine("m1", TTKV(), _PREFIXES)

    def schedule(round_index):
        if round_index == 2:
            fleet.add_machine("late", TTKV(), _PREFIXES)
            return {"late": _chunked(streams["late"], chunks)}
        if round_index == 3:
            fleet.remove_machine("m1")
            return {}
        if round_index > 3:
            return None
        return {}

    feeds = {
        machine_id: _chunked(streams[machine_id], chunks)
        for machine_id in ("m0", "m1")
    }
    rounds = asyncio.run(fleet.drive(feeds, schedule=schedule))
    live = {"m0": streams["m0"], "late": streams["late"]}
    assert "m1" not in fleet.machine_ids
    assert "late" in fleet.machine_ids
    assert _cluster_sets(fleet.clusters()) == _reference(live)
    # membership totals step with the schedule
    if len(rounds) >= 3:
        assert rounds[1].machines_total == 3
        assert rounds[2].machines_total == 2
    fleet.close()


def _profile_fleet(profile_name, *, machines=2, days=1, executor=None, max_lag=None):
    """A fleet of same-profile machines with per-machine seeded traces."""
    profile = profile_by_name(profile_name)
    fleet = FleetPipeline(executor=executor, max_lag=max_lag)
    machine_events, machine_prefixes = {}, {}
    for index in range(machines):
        machine_id = f"m{index}"
        trace = generate_trace(profile, days=days, seed=11 + index)
        machine_events[machine_id] = trace.ttkv.write_events()
        machine_prefixes[machine_id] = tuple(
            app.key_prefix for app in trace.apps.values()
        )
        fleet.add_machine(machine_id, TTKV(), machine_prefixes[machine_id])
    return fleet, machine_events, machine_prefixes


@pytest.mark.parametrize("profile", [p.name for p in PROFILES])
def test_profile_fleets_equal_concatenated_batch(profile):
    """Every machine profile's fleet matches the batch reference.

    Two machines run the *same* profile with different seeds, so every
    app prefix exists on both machines — the duplicate-prefix case is
    exercised for each profile's real workload mix.
    """
    fleet, machine_events, machine_prefixes = _profile_fleet(profile)
    feeds = {
        machine_id: _chunked(events, 3)
        for machine_id, events in machine_events.items()
    }
    _drive(fleet, feeds)
    assert _cluster_sets(fleet.clusters()) == _reference(
        machine_events, machine_prefixes
    )
    fleet.close()


def test_serial_and_thread_executors_agree():
    """Round-for-round identical models whatever the shard executor."""
    models = {}
    for name in ("serial", "thread"):
        executor = ThreadShardExecutor(2) if name == "thread" else None
        fleet, machine_events, _ = _profile_fleet("Linux-1", executor=executor)
        feeds = {
            machine_id: _chunked(events, 4)
            for machine_id, events in machine_events.items()
        }
        rounds = _drive(fleet, feeds)
        models[name] = [
            (r.events_fed, r.events_consumed, _cluster_sets(r.clusters))
            for r in rounds
        ]
        fleet.close()
        if executor is not None:
            executor.close()
    assert models["serial"] == models["thread"]


def test_backpressure_bounds_per_round_feed():
    fleet, machine_events, _ = _profile_fleet("Linux-1", max_lag=25)
    feeds = {
        machine_id: _chunked(events, 2)
        for machine_id, events in machine_events.items()
    }
    rounds = _drive(fleet, feeds)
    assert all(r.events_fed <= 25 * len(machine_events) for r in rounds)
    # throttled rounds still converge to the reference model
    assert _cluster_sets(fleet.clusters()) == _reference(
        machine_events,
        {m: fleet.machine(m).shard_prefixes for m in machine_events},
    )
    fleet.close()


def test_checkpoint_resume_consumes_nothing_and_matches(tmp_path):
    fleet, machine_events, machine_prefixes = _profile_fleet("Linux-2")
    feeds = {
        machine_id: _chunked(events, 3)
        for machine_id, events in machine_events.items()
    }
    _drive(fleet, feeds)
    before = _cluster_sets(fleet.clusters())
    rounds = fleet.rounds
    fleet.to_state_dir(tmp_path / "state")
    fleet.close()

    stores = {}
    for machine_id, events in machine_events.items():
        store = TTKV()
        store.record_events(events)
        stores[machine_id] = store
    resumed = FleetPipeline.from_state_dir(tmp_path / "state", stores)
    assert resumed.rounds == rounds
    clusters = resumed.update()
    assert resumed.last_stats.events_consumed == 0
    assert _cluster_sets(clusters) == before
    resumed.close()


def test_resume_then_new_events_still_match_reference(tmp_path):
    """A resumed fleet keeps tracking the batch reference as events arrive."""
    fleet, machine_events, machine_prefixes = _profile_fleet("Linux-1")
    half = {
        machine_id: [events[: len(events) // 2]]
        for machine_id, events in machine_events.items()
    }
    _drive(fleet, half)
    fleet.to_state_dir(tmp_path / "state")
    fleet.close()

    stores = {}
    for machine_id, events in machine_events.items():
        store = TTKV()
        store.record_events(events[: len(events) // 2])
        stores[machine_id] = store
    resumed = FleetPipeline.from_state_dir(tmp_path / "state", stores)
    rest = {
        machine_id: [events[len(events) // 2 :]]
        for machine_id, events in machine_events.items()
    }
    _drive(resumed, rest)
    assert _cluster_sets(resumed.clusters()) == _reference(
        machine_events, machine_prefixes
    )
    resumed.close()


def test_duplicate_machine_and_bad_ids_rejected():
    fleet = FleetPipeline()
    fleet.add_machine("m0", TTKV(), _PREFIXES)
    with pytest.raises(ValueError, match="already attached"):
        fleet.add_machine("m0", TTKV(), _PREFIXES)
    with pytest.raises(ValueError, match="path-safe"):
        fleet.add_machine("../evil", TTKV(), _PREFIXES)
    with pytest.raises(KeyError, match="no machine"):
        fleet.machine("ghost")
    fleet.close()


def test_drive_rejects_feeds_for_unknown_machines():
    fleet = FleetPipeline()
    fleet.add_machine("m0", TTKV(), _PREFIXES)
    with pytest.raises(KeyError, match="unattached"):
        asyncio.run(fleet.drive({"ghost": [[]]}))
    fleet.close()


def test_max_lag_validation():
    with pytest.raises(ValueError, match="max_lag"):
        FleetPipeline(max_lag=0)

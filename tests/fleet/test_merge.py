"""FleetCorrelationMerge: summed evidence ≡ one concatenated batch run."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.correlation import CorrelationMatrix
from repro.core.sharded import ShardedPipeline
from repro.fleet.merge import FleetCorrelationMerge, concatenated_batch_clusters
from repro.ttkv.store import TTKV

# Per-machine modification streams over app-prefixed key alphabets.  The
# alphabets deliberately overlap across machines: fleet identity is the
# canonical key, so "mail/a" written on two machines is one fleet key.
_KEYS = ("mail/a", "mail/b", "mail/c", "edit/x", "edit/y", "misc")
_PREFIXES = ("mail/", "edit/")

_machine_events = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=600, allow_nan=False),
        st.sampled_from(_KEYS),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=0,
    max_size=40,
)

_fleets = st.lists(_machine_events, min_size=1, max_size=3)


def _sorted_events(events):
    return sorted(events, key=lambda event: event[0])


def _machine_counts(events):
    """One machine's evidence snapshot via a real sharded pipeline."""
    store = TTKV.from_events(events) if events else TTKV()
    pipeline = ShardedPipeline(store, _PREFIXES)
    pipeline.update()
    counts = pipeline.pairwise_counts()
    pipeline.close()
    return counts


def _cluster_sets(cluster_set):
    return sorted(tuple(sorted(cluster.keys)) for cluster in cluster_set)


def _reference(machine_events):
    key_sets = concatenated_batch_clusters(
        machine_events,
        {machine_id: _PREFIXES for machine_id in machine_events},
    )
    return sorted(tuple(sorted(keys)) for keys in key_sets)


@given(_fleets)
@settings(max_examples=40, deadline=None)
def test_merge_equals_concatenated_batch(machine_streams):
    """Summing machine snapshots reproduces the one-big-batch clusters."""
    machine_events = {
        f"m{i}": _sorted_events(events)
        for i, events in enumerate(machine_streams)
    }
    merge = FleetCorrelationMerge()
    for machine_id, events in machine_events.items():
        merge.ingest(machine_id, *_machine_counts(events))
    assert _cluster_sets(merge.clusters()) == _reference(machine_events)


@given(_fleets, st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_incremental_ingest_equals_one_shot(machine_streams, cuts):
    """Re-ingesting growing prefixes of each stream converges identically.

    Each machine reports its evidence after every prefix of its stream —
    the merge applies only the diffs — and the final model must equal a
    single ingest of the full snapshots.
    """
    machine_events = {
        f"m{i}": _sorted_events(events)
        for i, events in enumerate(machine_streams)
    }
    incremental = FleetCorrelationMerge()
    for machine_id, events in machine_events.items():
        store = TTKV()
        pipeline = ShardedPipeline(store, _PREFIXES)
        step = max(1, -(-len(events) // cuts))
        for start in range(0, max(len(events), 1), step):
            store.record_events(events[start : start + step])
            pipeline.update()
            incremental.ingest(machine_id, *pipeline.pairwise_counts())
            incremental.clusters()  # interleave refreshes with ingests
        pipeline.close()
    one_shot = FleetCorrelationMerge()
    for machine_id, events in machine_events.items():
        one_shot.ingest(machine_id, *_machine_counts(events))
    assert _cluster_sets(incremental.clusters()) == _cluster_sets(
        one_shot.clusters()
    )
    assert _cluster_sets(incremental.clusters()) == _reference(machine_events)


@given(_fleets)
@settings(max_examples=25, deadline=None)
def test_retire_subtracts_a_machine(machine_streams):
    """Ingesting then retiring a machine leaves the others' model."""
    machine_events = {
        f"m{i}": _sorted_events(events)
        for i, events in enumerate(machine_streams)
    }
    merge = FleetCorrelationMerge()
    for machine_id, events in machine_events.items():
        merge.ingest(machine_id, *_machine_counts(events))
    extra = _sorted_events(
        [(t, key, 9) for t, key, _ in machine_events["m0"]][:20]
    )
    merge.ingest("departing", *_machine_counts(extra))
    merge.clusters()
    merge.retire("departing")
    assert "departing" not in merge.machine_ids
    assert _cluster_sets(merge.clusters()) == _reference(machine_events)


def test_reingesting_identical_snapshot_dirties_nothing():
    events = [(0.0, "mail/a", 1), (0.0, "mail/b", 1), (5.0, "edit/x", 2)]
    merge = FleetCorrelationMerge()
    snapshot = _machine_counts(events)
    assert merge.ingest("m0", *snapshot)
    merge.clusters()
    assert merge.ingest("m0", *snapshot) == set()
    stats_before = merge.last_stats
    merge.clusters()
    # nothing dirty: the refresh was the cached model, stats untouched
    assert merge.last_stats is stats_before


def test_clean_components_are_reused_not_reclustered():
    merge = FleetCorrelationMerge()
    merge.ingest(
        "m0", *_machine_counts([(0.0, "mail/a", 1), (0.0, "mail/b", 1)])
    )
    merge.clusters()
    # a second machine touching only the edit app leaves mail clean
    merge.ingest(
        "m1", *_machine_counts([(0.0, "edit/x", 1), (0.0, "edit/y", 1)])
    )
    merge.clusters()
    assert merge.last_stats.components_reused == 1
    assert merge.last_stats.components_reclustered == 1


def test_duplicate_keys_on_different_machines_sum():
    """Two machines writing the same canonical keys add evidence."""
    events = [(0.0, "mail/a", 1), (0.0, "mail/b", 1)]
    merge = FleetCorrelationMerge()
    merge.ingest("m0", *_machine_counts(events))
    merge.ingest("m1", *_machine_counts(events))
    counts, common = merge.matrix.pairwise_counts()
    assert counts == {"mail/a": 2, "mail/b": 2}
    assert common == {("mail/a", "mail/b"): 2}
    # correlation stays 2.0 — both machines agree the pair co-writes
    assert merge.matrix.correlation_of("mail/a", "mail/b") == 2.0


def test_retire_unknown_machine_raises():
    with pytest.raises(KeyError, match="no machine 'ghost'"):
        FleetCorrelationMerge().retire("ghost")


def test_threshold_validation():
    with pytest.raises(ValueError, match="correlation threshold"):
        FleetCorrelationMerge(correlation_threshold=0.0)


def test_view_refuses_fleet_mutation():
    merge = FleetCorrelationMerge()
    merge.ingest("m0", *_machine_counts([(0.0, "mail/a", 1)]))
    with pytest.raises(TypeError, match="read-only"):
        merge.matrix.apply_count_deltas({"mail/a": 1}, {})


def test_count_deltas_roundtrip_matches_fresh_matrix():
    """apply_count_deltas rebuilds a matrix equal to the original."""
    events = [
        (0.0, "mail/a", 1),
        (0.0, "mail/b", 1),
        (10.0, "mail/a", 2),
        (10.0, "edit/x", 1),
    ]
    source = ShardedPipeline(TTKV.from_events(events), _PREFIXES)
    source.update()
    counts, common = source.pairwise_counts()
    rebuilt = CorrelationMatrix()
    rebuilt.apply_count_deltas(counts, common)
    assert rebuilt.pairwise_counts() == (counts, common)
    source.close()

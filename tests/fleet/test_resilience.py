"""Fault injection + supervised recovery: faulted fleets still ≡ batch.

The headline property: drive a fleet under an arbitrary seeded fault
schedule (crashes, hangs, slow rounds, snapshot loss, torn/corrupt
checkpoint writes) and the final fleet cluster model must equal the
concatenated-batch reference — recovery loses nothing.  The same seed
must also reproduce the identical fault sequence byte-for-byte.
"""

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import FleetPipeline, concatenated_batch_clusters
from repro.fleet.resilience import (
    ACTION_RESTART,
    ACTION_RETRY,
    HEALTH_DEGRADED,
    HEALTH_HEALTHY,
    HEALTH_UNHEALTHY,
    POINT_SNAPSHOT_LOSS,
    POINT_UPDATE_CRASH,
    POINT_UPDATE_HANG,
    FaultInjector,
    FaultSpec,
    FleetResilience,
    MachineSupervisor,
    ResilienceConfig,
    ScheduledFault,
)
from repro.ttkv.store import TTKV
from repro.workload.machines import PROFILES, profile_by_name
from repro.workload.tracegen import generate_trace

_KEYS = ("mail/a", "mail/b", "mail/c", "edit/x", "edit/y", "misc")
_PREFIXES = ("mail/", "edit/")

_machine_events = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=600, allow_nan=False),
        st.sampled_from(_KEYS),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=0,
    max_size=25,
)

_fault_specs = st.builds(
    FaultSpec,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    crash_rate=st.floats(min_value=0.0, max_value=0.4),
    slow_rate=st.floats(min_value=0.0, max_value=0.3),
    snapshot_loss_rate=st.floats(min_value=0.0, max_value=0.3),
    torn_write_rate=st.floats(min_value=0.0, max_value=0.3),
    corrupt_rate=st.floats(min_value=0.0, max_value=0.3),
    slow_seconds=st.just(0.0),
)


def _cluster_sets(cluster_set):
    return sorted(tuple(sorted(cluster.keys)) for cluster in cluster_set)


def _reference(machine_events, machine_prefixes=None):
    key_sets = concatenated_batch_clusters(
        machine_events,
        machine_prefixes
        or {machine_id: _PREFIXES for machine_id in machine_events},
    )
    return sorted(tuple(sorted(keys)) for keys in key_sets)


def _chunked(events, chunks):
    size = max(1, -(-len(events) // max(1, chunks)))
    return [events[start : start + size] for start in range(0, len(events), size)]


def _drive(fleet, feeds, **kwargs):
    return asyncio.run(fleet.drive(feeds, **kwargs))


def _faulted_run(machine_events, chunks, spec, *, state_dir=None, config=None):
    """One full drive under ``spec``; returns (fleet clusters, injector)."""
    injector = FaultInjector(spec)
    resilience = FleetResilience(
        injector=injector,
        config=config or ResilienceConfig(),
        state_dir=state_dir,
    )
    fleet = FleetPipeline()
    for machine_id in machine_events:
        fleet.add_machine(machine_id, TTKV(), _PREFIXES)
    feeds = {
        machine_id: _chunked(events, chunks)
        for machine_id, events in machine_events.items()
    }
    rounds = _drive(fleet, feeds, resilience=resilience)
    clusters = _cluster_sets(fleet.clusters())
    fleet.close()
    return clusters, injector, rounds


class TestHeadlineProperty:
    @given(
        machine_streams=st.lists(_machine_events, min_size=1, max_size=3),
        chunks=st.integers(min_value=1, max_value=3),
        spec=_fault_specs,
    )
    @settings(max_examples=25, deadline=None)
    def test_faulted_drive_equals_batch_and_replays_byte_identically(
        self, machine_streams, chunks, spec, tmp_path_factory
    ):
        """Arbitrary seeded fault schedules: clusters ≡ batch, seed replays."""
        machine_events = {
            f"m{i}": sorted(events, key=lambda e: e[0])
            for i, events in enumerate(machine_streams)
        }
        state = tmp_path_factory.mktemp("faulted")
        clusters, injector, _ = _faulted_run(
            machine_events, chunks, spec, state_dir=state
        )
        assert clusters == _reference(machine_events)
        # the identical spec over a fresh run reproduces the identical
        # fault sequence, byte for byte
        replay = tmp_path_factory.mktemp("replay")
        clusters2, injector2, _ = _faulted_run(
            machine_events, chunks, spec, state_dir=replay
        )
        assert clusters2 == clusters
        assert injector2.signature() == injector.signature()

    @pytest.mark.parametrize("profile", [p.name for p in PROFILES])
    def test_profile_fleets_recover_to_batch(self, profile, tmp_path):
        """Every machine profile's real workload survives injected faults."""
        prof = profile_by_name(profile)
        machine_events, machine_prefixes = {}, {}
        fleet = FleetPipeline()
        for index in range(2):
            machine_id = f"m{index}"
            trace = generate_trace(prof, days=1, seed=31 + index)
            machine_events[machine_id] = trace.ttkv.write_events()
            machine_prefixes[machine_id] = tuple(
                app.key_prefix for app in trace.apps.values()
            )
            fleet.add_machine(machine_id, TTKV(), machine_prefixes[machine_id])
        spec = FaultSpec(
            seed=77,
            crash_rate=0.3,
            snapshot_loss_rate=0.2,
            torn_write_rate=0.3,
            corrupt_rate=0.3,
        )
        resilience = FleetResilience(
            injector=FaultInjector(spec), state_dir=tmp_path
        )
        feeds = {
            machine_id: _chunked(events, 4)
            for machine_id, events in machine_events.items()
        }
        rounds = _drive(fleet, feeds, resilience=resilience)
        assert _cluster_sets(fleet.clusters()) == _reference(
            machine_events, machine_prefixes
        )
        assert sum(r.faults_injected for r in rounds) > 0
        fleet.close()


class TestScheduledFaults:
    def _machines(self):
        return {
            "m0": [(1.0, "mail/a", 1), (1.2, "mail/b", 1), (40.0, "edit/x", 2)],
            "m1": [(2.0, "mail/a", 2), (2.3, "mail/c", 1), (50.0, "edit/y", 1)],
        }

    def test_scheduled_crash_restarts_and_retracts(self):
        """An injected crash restarts the machine; the model still ≡ batch."""
        machine_events = self._machines()
        spec = FaultSpec(
            seed=5,
            scheduled=(
                ScheduledFault(round_index=2, machine_id="m0",
                               point=POINT_UPDATE_CRASH),
            ),
        )
        clusters, injector, rounds = _faulted_run(
            machine_events, 3, spec,
            config=ResilienceConfig(failure_threshold=1),
        )
        assert clusters == _reference(machine_events)
        assert injector.faults_fired == 1
        assert sum(r.machines_restarted for r in rounds) >= 1

    def test_circuit_breaker_trips_at_threshold(self):
        """``times=threshold`` holds the machine down until UNHEALTHY."""
        machine_events = self._machines()
        threshold = 3
        spec = FaultSpec(
            seed=6,
            scheduled=(
                ScheduledFault(round_index=1, machine_id="m1",
                               point=POINT_UPDATE_CRASH, times=threshold),
            ),
        )
        injector = FaultInjector(spec)
        resilience = FleetResilience(
            injector=injector,
            config=ResilienceConfig(failure_threshold=threshold),
        )
        fleet = FleetPipeline()
        for machine_id in machine_events:
            fleet.add_machine(machine_id, TTKV(), _PREFIXES)
        feeds = {
            machine_id: _chunked(events, 2)
            for machine_id, events in machine_events.items()
        }
        _drive(fleet, feeds, resilience=resilience)
        report = resilience.supervisor.report("m1")
        assert report["times_unhealthy"] == 1
        assert report["restarts"] >= 1
        # recovery succeeded after the breaker tripped
        assert report["health"] == HEALTH_HEALTHY
        assert _cluster_sets(fleet.clusters()) == _reference(machine_events)
        fleet.close()

    def test_hang_recovered_via_round_timeout(self):
        """A wedged update is abandoned (not cancelled) and restarted."""
        machine_events = self._machines()
        spec = FaultSpec(
            seed=7,
            hang_seconds=1.5,
            scheduled=(
                ScheduledFault(round_index=1, machine_id="m0",
                               point=POINT_UPDATE_HANG),
            ),
        )
        injector = FaultInjector(spec)
        resilience = FleetResilience(
            injector=injector,
            config=ResilienceConfig(round_timeout=0.2, failure_threshold=2),
        )
        fleet = FleetPipeline()
        for machine_id in machine_events:
            fleet.add_machine(machine_id, TTKV(), _PREFIXES)
        feeds = {
            machine_id: _chunked(events, 2)
            for machine_id, events in machine_events.items()
        }
        _drive(fleet, feeds, resilience=resilience)
        report = resilience.supervisor.report("m0")
        assert report["timeouts"] >= 1
        assert report["restarts"] >= 1
        assert _cluster_sets(fleet.clusters()) == _reference(machine_events)
        fleet.close()

    def test_snapshot_loss_restarts_at_round_start(self):
        machine_events = self._machines()
        spec = FaultSpec(
            seed=8,
            scheduled=(
                ScheduledFault(round_index=2, machine_id="m1",
                               point=POINT_SNAPSHOT_LOSS),
            ),
        )
        clusters, injector, rounds = _faulted_run(machine_events, 3, spec)
        assert clusters == _reference(machine_events)
        assert any(
            e.point == POINT_SNAPSHOT_LOSS for e in injector.sequence()
        )
        assert sum(r.machines_restarted for r in rounds) >= 1

    def test_unrecoverable_schedule_raises_instead_of_livelocking(self):
        """A fault held past max_round_attempts surfaces as an error."""
        machine_events = self._machines()
        spec = FaultSpec(
            seed=9,
            scheduled=(
                ScheduledFault(round_index=1, machine_id="m0",
                               point=POINT_UPDATE_CRASH, times=99),
            ),
        )
        injector = FaultInjector(spec)
        resilience = FleetResilience(
            injector=injector,
            config=ResilienceConfig(max_round_attempts=4),
        )
        fleet = FleetPipeline()
        for machine_id in machine_events:
            fleet.add_machine(machine_id, TTKV(), _PREFIXES)
        feeds = {
            machine_id: _chunked(events, 2)
            for machine_id, events in machine_events.items()
        }
        with pytest.raises(RuntimeError, match="m0"):
            _drive(fleet, feeds, resilience=resilience)
        fleet.close()


class TestCheckpointRecovery:
    def test_restart_resumes_from_generation_checkpoint(self, tmp_path):
        """With a state dir, restarts load the last good generation."""
        machine_events = {
            "m0": [(1.0, "mail/a", 1), (30.0, "mail/b", 1), (60.0, "edit/x", 1)],
            "m1": [(2.0, "mail/a", 2), (35.0, "edit/y", 1), (70.0, "mail/c", 1)],
        }
        spec = FaultSpec(
            seed=11,
            scheduled=(
                ScheduledFault(round_index=3, machine_id="m0",
                               point=POINT_UPDATE_CRASH),
            ),
        )
        clusters, _, rounds = _faulted_run(
            machine_events, 4, spec, state_dir=tmp_path,
            config=ResilienceConfig(failure_threshold=1),
        )
        assert clusters == _reference(machine_events)
        assert sum(r.machines_restarted for r in rounds) >= 1
        # generations were written each round and pruned to keep-last-K
        generations = sorted(p.name for p in tmp_path.glob("gen-*"))
        assert generations
        assert len(generations) <= ResilienceConfig().keep_generations
        assert (tmp_path / "fleet.json").exists()

    def test_resumed_fleet_matches_faulted_original(self, tmp_path):
        """A fleet checkpointed under faults resumes to the same model."""
        machine_events = {
            "m0": [(1.0, "mail/a", 1), (30.0, "mail/b", 1)],
            "m1": [(2.0, "mail/a", 2), (40.0, "edit/x", 1)],
        }
        spec = FaultSpec(seed=13, crash_rate=0.25)
        clusters, _, _ = _faulted_run(
            machine_events, 3, spec, state_dir=tmp_path
        )
        stores = {machine_id: TTKV() for machine_id in machine_events}
        for machine_id, store in stores.items():
            store.record_events(machine_events[machine_id])
        resumed = FleetPipeline.from_state_dir(tmp_path, stores)
        assert _cluster_sets(resumed.update()) == clusters
        resumed.close()


class TestHealthReporting:
    def test_health_and_machine_status_carry_supervision(self):
        machine_events = {
            "m0": [(1.0, "mail/a", 1), (1.2, "mail/b", 1)],
            "m1": [(2.0, "mail/a", 2), (2.5, "edit/x", 1)],
        }
        spec = FaultSpec(
            seed=15,
            scheduled=(
                ScheduledFault(round_index=1, machine_id="m0",
                               point=POINT_UPDATE_CRASH),
            ),
        )
        injector = FaultInjector(spec)
        resilience = FleetResilience(
            injector=injector,
            config=ResilienceConfig(failure_threshold=1),
        )
        fleet = FleetPipeline()
        for machine_id in machine_events:
            fleet.add_machine(machine_id, TTKV(), _PREFIXES)
        feeds = {
            machine_id: [events]
            for machine_id, events in machine_events.items()
        }
        _drive(fleet, feeds, resilience=resilience)
        health = fleet.health()
        assert health["resilience"]["restarts"] >= 1
        assert health["resilience"]["faults_injected"] == injector.faults_fired
        status = fleet.machine_status("m0")
        assert status["supervision"]["restarts"] >= 1
        assert status["health"] in (
            HEALTH_HEALTHY, HEALTH_DEGRADED, HEALTH_UNHEALTHY
        )
        fleet.close()


class TestSupervisorUnit:
    def test_state_machine_and_breaker(self):
        supervisor = MachineSupervisor(failure_threshold=2)
        assert supervisor.record_failure("m0", "boom") == ACTION_RETRY
        assert supervisor.record("m0").health == HEALTH_DEGRADED
        assert supervisor.record_failure("m0", "boom") == ACTION_RESTART
        assert supervisor.record("m0").health == HEALTH_UNHEALTHY
        supervisor.record_restart("m0")
        assert supervisor.record("m0").health == HEALTH_DEGRADED
        assert supervisor.stale_machines() == ["m0"]
        supervisor.record_success("m0")
        supervisor.mark_synced("m0")
        assert supervisor.record("m0").health == HEALTH_HEALTHY
        assert supervisor.stale_machines() == []
        report = supervisor.fleet_report()
        assert report["status"] == "ok"
        assert report["restarts"] == 1
        assert report["failures"] == 2

    def test_timeout_always_restarts(self):
        supervisor = MachineSupervisor(failure_threshold=5)
        action = supervisor.record_failure("m0", "hang", timeout=True)
        assert action == ACTION_RESTART

    def test_fault_spec_rejects_certain_faults(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultSpec(crash_rate=1.0)
        with pytest.raises(ValueError, match="injection point"):
            ScheduledFault(round_index=1, machine_id="m0", point="meteor")

    def test_injector_decisions_are_pure(self):
        spec = FaultSpec(seed=21, crash_rate=0.5, slow_rate=0.5)
        first = FaultInjector(spec)
        second = FaultInjector(spec)
        for machine_id in ("m0", "m1"):
            for round_index in range(1, 5):
                for attempt in range(3):
                    assert first.decide_update(
                        machine_id, round_index, attempt
                    ) == second.decide_update(machine_id, round_index, attempt)
        assert first.signature() == second.signature()

    def test_legacy_drive_without_resilience_unchanged(self):
        """``resilience=None`` is byte-identical to the old driver path."""
        machine_events = {
            "m0": [(1.0, "mail/a", 1), (1.5, "mail/b", 1)],
        }
        fleet = FleetPipeline()
        fleet.add_machine("m0", TTKV(), _PREFIXES)
        rounds = _drive(fleet, {"m0": [machine_events["m0"]]})
        assert all(r.faults_injected == 0 for r in rounds)
        assert all(r.machines_restarted == 0 for r in rounds)
        assert "resilience" not in fleet.health()
        fleet.close()

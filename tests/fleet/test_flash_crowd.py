"""Scenario-built flash-crowd fleets: churn mid-rollout, gated vs batch.

These are the fleet-tier regression tests for the scenario subsystem's
flagship regime: a rollout makes (nearly) every machine rewrite the same
app-config keys inside one window, while the population itself churns —
one cohort joins mid-rollout, another leaves right after it.  Every run
is gated on the fleet merge equalling
:func:`repro.fleet.merge.concatenated_batch_clusters` over the machines
still attached, and the backpressure test pins that ``max_lag`` actually
throttles the feed stage rather than just existing as a parameter.
"""

import pytest

pytest.importorskip("pydantic", reason="scenario configs need the scenarios extra")
pytest.importorskip("yaml", reason="scenario configs need the scenarios extra")

from repro.scenarios.build import build_scenario
from repro.scenarios.config import (
    FleetSection,
    PopulationGroup,
    ScenarioConfig,
)
from repro.scenarios.runner import run_fleet_scenario


def _flash_config(**fleet_overrides) -> ScenarioConfig:
    """A compact flash-crowd population with a late cohort and a leaver."""
    return ScenarioConfig(
        name="test-flash-crowd",
        seed=4242,
        population=[
            PopulationGroup(
                profile="Linux-2", machines=3, days=2, activity_scale=4.0
            ),
            PopulationGroup(
                profile="Linux-2",
                machines=2,
                days=2,
                activity_scale=4.0,
                join_round=2,
            ),
            PopulationGroup(
                profile="Linux-1", machines=1, days=1, leave_round=3
            ),
        ],
        regime={
            "kind": "flash_crowd",
            "app": "Chrome Browser",
            "keys": 5,
            "waves": 2,
            "start_fraction": 0.5,
            "window_seconds": 30.0,
            "coverage": 1.0,
        },
        fleet=FleetSection(rounds=4, **fleet_overrides),
    )


def test_flash_crowd_with_churn_equals_concatenated_batch():
    """Merge ≡ batch across a rollout with joins and leaves mid-drive."""
    built = build_scenario(_flash_config())
    result = run_fleet_scenario(built)  # raises ScenarioGateError on divergence
    assert result.equal_to_batch is True
    # the late cohort joined, the bystander left
    assert result.machines_final == ("m000", "m001", "m002", "m003", "m004")
    totals = [round_.machines_total for round_ in result.rounds]
    assert totals[0] == 4  # initial cohorts: 3 + the later-leaving machine
    assert max(totals) == 6  # everyone attached between join and leave
    assert totals[-1] == 5  # leaver gone
    # every delivered event was consumed by the barrier rounds
    assert result.events_consumed == result.events_fed == built.total_events


def test_rollout_writes_reach_the_fleet_model():
    """The crowd keys carry fleet evidence (participation was not a no-op)."""
    built = build_scenario(_flash_config())
    chrome_machines = [
        machine
        for machine in built.machines
        if machine.profile_name == "Linux-2"
    ]
    assert chrome_machines, "population lost its rollout cohort"
    assert all(
        machine.notes.get("flash_crowd") is True for machine in chrome_machines
    )
    # all participants burst on the same canonical keys
    prefix = chrome_machines[0].shard_prefixes[0]
    crowd_keys = set()
    for machine in chrome_machines:
        keys = {
            key for _t, key, _v in machine.events if key.startswith(prefix)
        }
        crowd_keys = crowd_keys & keys if crowd_keys else keys
    assert len(crowd_keys) >= 5


def test_max_lag_backpressure_engages():
    """A tight max_lag stretches the drive into strictly more rounds."""
    unbounded = run_fleet_scenario(build_scenario(_flash_config()))
    throttled_config = _flash_config(max_lag=8)
    throttled = run_fleet_scenario(build_scenario(throttled_config))

    assert throttled.equal_to_batch is True
    assert len(throttled.rounds) > len(unbounded.rounds)
    live_bound = max(r.machines_total for r in throttled.rounds) * 8
    assert all(r.events_fed <= live_bound for r in throttled.rounds)
    # throttling reshapes delivery, not the destination
    def key_sets(cluster_set):
        return sorted(tuple(c.sorted_keys()) for c in cluster_set)

    assert key_sets(throttled.clusters) == key_sets(unbounded.clusters)

"""FleetQueryServer: queries answered while ingest continues."""

import asyncio
import json

import pytest

from repro.fleet import FleetPipeline, FleetQueryServer
from repro.ttkv.store import TTKV
from repro.workload.machines import profile_by_name
from repro.workload.tracegen import generate_trace

_PREFIXES = ("mail/", "edit/")


async def _get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: test\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, json.loads(body)


async def _request(host, port, raw_request):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw_request)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw


def _small_fleet():
    fleet = FleetPipeline()
    events = {}
    for index in range(2):
        machine_id = f"m{index}"
        trace = generate_trace(
            profile_by_name("Linux-1"), days=1, seed=31 + index
        )
        events[machine_id] = trace.ttkv.write_events()
        fleet.add_machine(
            machine_id,
            TTKV(),
            tuple(app.key_prefix for app in trace.apps.values()),
        )
    return fleet, events


def test_clusters_answered_during_live_ingest():
    """The acceptance integration: GET /clusters succeeds mid-drive.

    The driver streams many small chunks; between rounds the event loop
    serves queries.  Every response observed while ingest is running
    must be a 200 with a coherent payload, and the cluster count must be
    non-decreasing as evidence accumulates on a grow-only trace replay.
    """
    fleet, events = _small_fleet()
    feeds = {
        machine_id: [
            machine_events[start : start + 20]
            for start in range(0, len(machine_events), 20)
        ]
        for machine_id, machine_events in events.items()
    }
    responses = []

    async def scenario():
        async with FleetQueryServer(fleet) as server:
            host, port = server.address
            stop = asyncio.Event()

            async def poll():
                while not stop.is_set():
                    responses.append(await _get(host, port, "/clusters"))
                    await asyncio.sleep(0)

            poller = asyncio.create_task(poll())
            await fleet.drive(feeds)
            stop.set()
            await poller
            return await _get(host, port, "/clusters")

    status, final = asyncio.run(scenario())
    assert status == 200
    assert len(responses) > 2, "no queries landed during ingest"
    assert all(s == 200 for s, _ in responses)
    counts = [payload["count"] for _, payload in responses]
    assert counts == sorted(counts)
    # the final payload is the driver's final merged model
    assert final["count"] == len(fleet.clusters())
    assert final["clusters"] == [
        cluster.sorted_keys() for cluster in fleet.clusters()
    ]
    assert final["machines"] == 2
    fleet.close()


def test_machine_status_and_health_routes():
    fleet, events = _small_fleet()

    async def scenario():
        async with FleetQueryServer(fleet) as server:
            host, port = server.address
            await fleet.drive(
                {m: [machine_events] for m, machine_events in events.items()}
            )
            return {
                "status_m0": await _get(host, port, "/machines/m0/status"),
                "status_ghost": await _get(
                    host, port, "/machines/ghost/status"
                ),
                "health": await _get(host, port, "/health"),
                "missing": await _get(host, port, "/nope"),
            }

    results = asyncio.run(scenario())
    status, payload = results["status_m0"]
    assert status == 200
    assert payload["machine"] == "m0"
    assert payload["pending_events"] == 0
    assert payload["needs_update"] is False
    assert payload["clusters"] > 0
    assert results["status_ghost"][0] == 404
    status, health = results["health"]
    assert status == 200
    assert health["status"] == "ok"
    assert health["machines"] == 2
    assert health["rounds"] == fleet.rounds
    assert health["clusters"] == len(fleet.clusters())
    assert results["missing"][0] == 404
    fleet.close()


def test_non_get_methods_and_garbage_rejected():
    fleet = FleetPipeline()
    fleet.add_machine("m0", TTKV(), _PREFIXES)

    async def scenario():
        async with FleetQueryServer(fleet) as server:
            host, port = server.address
            post = await _request(
                host,
                port,
                b"POST /clusters HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 0\r\n\r\n",
            )
            garbage = await _request(host, port, b"\r\n")
            return post, garbage

    post, garbage = asyncio.run(scenario())
    assert post.startswith(b"HTTP/1.1 405 ")
    assert garbage.startswith(b"HTTP/1.1 400 ")
    fleet.close()


def test_query_string_is_ignored_and_address_requires_start():
    fleet = FleetPipeline()
    fleet.add_machine("m0", TTKV(), _PREFIXES)
    server = FleetQueryServer(fleet)
    with pytest.raises(RuntimeError, match="not started"):
        server.address

    async def scenario():
        async with FleetQueryServer(fleet) as live:
            host, port = live.address
            return await _get(host, port, "/health?verbose=1")

    status, payload = asyncio.run(scenario())
    assert status == 200
    assert payload["status"] == "ok"
    fleet.close()


def test_machines_listing_and_supervised_health_routes():
    """GET /machines lists the fleet; /health carries supervision state."""
    from repro.fleet.resilience import (
        POINT_UPDATE_CRASH,
        FaultInjector,
        FaultSpec,
        FleetResilience,
        ResilienceConfig,
        ScheduledFault,
    )

    fleet, events = _small_fleet()
    resilience = FleetResilience(
        injector=FaultInjector(
            FaultSpec(
                seed=3,
                scheduled=(
                    ScheduledFault(
                        round_index=1,
                        machine_id="m0",
                        point=POINT_UPDATE_CRASH,
                    ),
                ),
            )
        ),
        config=ResilienceConfig(failure_threshold=1),
    )

    async def scenario():
        async with FleetQueryServer(fleet) as server:
            host, port = server.address
            await fleet.drive(
                {m: [machine_events] for m, machine_events in events.items()},
                resilience=resilience,
            )
            return {
                "machines": await _get(host, port, "/machines"),
                "status_m0": await _get(host, port, "/machines/m0/status"),
                "health": await _get(host, port, "/health"),
            }

    results = asyncio.run(scenario())
    status, listing = results["machines"]
    assert status == 200
    assert listing["count"] == 2
    assert [entry["machine"] for entry in listing["machines"]] == ["m0", "m1"]
    assert all("health" in entry for entry in listing["machines"])
    status, payload = results["status_m0"]
    assert status == 200
    assert payload["supervision"]["restarts"] >= 1
    status, health = results["health"]
    assert status == 200
    assert health["resilience"]["restarts"] >= 1
    assert health["resilience"]["faults_injected"] == 1
    fleet.close()

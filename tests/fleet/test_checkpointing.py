"""Crash-safe checkpoint store: atomicity, checksums, quarantine, fallback."""

import json

import pytest

from repro.exceptions import CheckpointError, CorruptCheckpointError
from repro.fleet.checkpointing import (
    FleetCheckpointStore,
    atomic_write_json,
    atomic_write_text,
    checksum,
    load_json_checkpoint,
)
from repro.fleet.pipeline import FleetPipeline
from repro.ttkv.store import TTKV

_MANIFEST = {"version": 2, "rounds": 1, "params": {}}


def _states(tag="a"):
    return {
        "m0": {"version": 3, "tag": f"{tag}-m0"},
        "m1": {"version": 3, "tag": f"{tag}-m1"},
    }


class TestAtomicWrites:
    def test_no_tmp_residue_and_content_lands(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"ok": True})
        assert json.loads(target.read_text()) == {"ok": True}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"

    def test_load_missing_raises_typed_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_json_checkpoint(tmp_path / "absent.json", kind="session checkpoint")

    def test_load_truncated_raises_corrupt_not_jsondecode(self, tmp_path):
        target = tmp_path / "torn.json"
        target.write_text('{"version": 2, "shar')
        with pytest.raises(CorruptCheckpointError, match="truncated or corrupt"):
            load_json_checkpoint(target)

    def test_load_non_object_raises_corrupt(self, tmp_path):
        target = tmp_path / "list.json"
        target.write_text("[1, 2, 3]")
        with pytest.raises(CorruptCheckpointError, match="JSON object"):
            load_json_checkpoint(target)

    def test_typed_errors_still_catchable_as_valueerror(self, tmp_path):
        # callers that predate the typed hierarchy keep working
        with pytest.raises(ValueError):
            load_json_checkpoint(tmp_path / "absent.json")


class TestGenerations:
    def test_write_creates_numbered_generations(self, tmp_path):
        store = FleetCheckpointStore(tmp_path)
        assert store.write(_MANIFEST, _states("a")) == 1
        assert store.write(_MANIFEST, _states("b")) == 2
        assert store.generations() == [1, 2]
        assert (tmp_path / "gen-000002" / "machine-m0.json").exists()
        root = json.loads((tmp_path / "fleet.json").read_text())
        assert root["generation"] == 2
        assert sorted(root["machines"]) == ["m0", "m1"]

    def test_prune_keeps_last_k(self, tmp_path):
        store = FleetCheckpointStore(tmp_path, keep=2)
        for index in range(5):
            store.write(_MANIFEST, _states(str(index)))
        assert store.generations() == [4, 5]

    def test_load_returns_newest(self, tmp_path):
        store = FleetCheckpointStore(tmp_path)
        store.write(_MANIFEST, _states("old"))
        store.write(_MANIFEST, _states("new"))
        manifest, machine_states = store.load()
        assert manifest["generation"] == 2
        assert machine_states["m0"]["tag"] == "new-m0"

    def test_load_no_generations_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint generations"):
            FleetCheckpointStore(tmp_path).load()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            FleetCheckpointStore(tmp_path, keep=0)


class TestQuarantineFallback:
    def test_corrupt_newest_falls_back_and_quarantines(self, tmp_path):
        store = FleetCheckpointStore(tmp_path)
        store.write(_MANIFEST, _states("good"))
        store.write(_MANIFEST, _states("bad"))
        victim = tmp_path / "gen-000002" / "machine-m0.json"
        victim.write_bytes(victim.read_bytes()[:10])
        manifest, machine_states = store.load()
        assert manifest["generation"] == 1
        assert machine_states["m0"]["tag"] == "good-m0"
        assert store.quarantined() == ["gen-000002"]
        reason = (
            tmp_path / "quarantine" / "gen-000002" / "QUARANTINE_REASON"
        ).read_text()
        assert "checksum" in reason or "truncated" in reason

    def test_bitflip_caught_by_checksum(self, tmp_path):
        # a flipped byte that may still parse as JSON must be rejected
        store = FleetCheckpointStore(tmp_path)
        store.write(_MANIFEST, {"m0": {"version": 3, "value": 1111}})
        store.write(_MANIFEST, {"m0": {"version": 3, "value": 2222}})
        victim = tmp_path / "gen-000002" / "machine-m0.json"
        payload = bytearray(victim.read_bytes())
        index = payload.index(b"2")
        payload[index : index + 1] = b"3"
        victim.write_bytes(bytes(payload))
        manifest, machine_states = store.load()
        assert manifest["generation"] == 1
        assert machine_states["m0"]["value"] == 1111

    def test_all_generations_damaged_raises_listing_each(self, tmp_path):
        store = FleetCheckpointStore(tmp_path)
        store.write(_MANIFEST, _states("a"))
        store.write(_MANIFEST, _states("b"))
        for generation in (1, 2):
            victim = tmp_path / f"gen-{generation:06d}" / "machine-m1.json"
            victim.write_text("{not json")
        with pytest.raises(CorruptCheckpointError) as error:
            store.load()
        assert "gen-000001" in str(error.value)
        assert "gen-000002" in str(error.value)

    def test_load_machine_walks_past_damage_without_quarantining(self, tmp_path):
        store = FleetCheckpointStore(tmp_path)
        store.write(_MANIFEST, _states("old"))
        store.write(_MANIFEST, _states("new"))
        victim = tmp_path / "gen-000002" / "machine-m0.json"
        victim.write_bytes(victim.read_bytes()[:5])
        # m0 falls back to gen 1; m1's newest copy is untouched
        assert store.load_machine("m0")["tag"] == "old-m0"
        assert store.load_machine("m1")["tag"] == "new-m1"
        assert store.quarantined() == []
        assert store.load_machine("m9") is None

    def test_checksum_format(self):
        assert checksum(b"abc").startswith("sha256:")
        assert checksum(b"abc") != checksum(b"abd")


class TestFleetRoundTrip:
    def _fleet(self, events):
        fleet = FleetPipeline()
        store = TTKV()
        store.record_events(events)
        fleet.add_machine("m0", store, ("mail/",))
        fleet.update()
        return fleet

    EVENTS = [(1.0, "mail/a", 1), (1.4, "mail/b", 2), (9.0, "mail/c", 1)]

    def test_to_state_dir_then_from_state_dir(self, tmp_path):
        fleet = self._fleet(self.EVENTS)
        generation = fleet.to_state_dir(tmp_path)
        assert generation == 1
        reference = sorted(
            tuple(sorted(c.keys)) for c in fleet.clusters()
        )
        fleet.close()
        store = TTKV()
        store.record_events(self.EVENTS)
        resumed = FleetPipeline.from_state_dir(tmp_path, {"m0": store})
        assert sorted(
            tuple(sorted(c.keys)) for c in resumed.update()
        ) == reference
        resumed.close()

    def test_torn_root_manifest_falls_back_to_generations(self, tmp_path):
        fleet = self._fleet(self.EVENTS)
        fleet.to_state_dir(tmp_path)
        fleet.close()
        (tmp_path / "fleet.json").write_text('{"version": 2, "gene')
        store = TTKV()
        store.record_events(self.EVENTS)
        resumed = FleetPipeline.from_state_dir(tmp_path, {"m0": store})
        assert "m0" in resumed.machine_ids
        resumed.close()

    def test_legacy_v1_flat_layout_still_loads(self, tmp_path):
        fleet = self._fleet(self.EVENTS)
        machine_state = fleet.machine("m0").to_state()
        fleet.close()
        # fabricate the pre-generation flat layout by hand
        (tmp_path / "machine-m0.json").write_text(json.dumps(machine_state))
        (tmp_path / "fleet.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "rounds": 1,
                    "machines": ["m0"],
                    "params": {
                        "window": 1.0,
                        "correlation_threshold": 2.0,
                        "linkage": "single",
                        "kernel": "auto",
                        "journal_backend": "auto",
                        "max_lag": None,
                    },
                }
            )
        )
        store = TTKV()
        store.record_events(self.EVENTS)
        resumed = FleetPipeline.from_state_dir(tmp_path, {"m0": store})
        assert resumed.machine_ids == ("m0",)
        resumed.close()

    def test_unsupported_version_raises_checkpoint_error(self, tmp_path):
        (tmp_path / "fleet.json").write_text(json.dumps({"version": 99}))
        with pytest.raises(CheckpointError, match="unsupported fleet state"):
            FleetPipeline.from_state_dir(tmp_path, {})

    def test_missing_store_raises_checkpoint_error(self, tmp_path):
        fleet = self._fleet(self.EVENTS)
        fleet.to_state_dir(tmp_path)
        fleet.close()
        with pytest.raises(CheckpointError, match="m0"):
            FleetPipeline.from_state_dir(tmp_path, {})

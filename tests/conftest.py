"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.apps.catalog import create_app
from repro.common.clock import SimClock
from repro.ttkv.store import TTKV
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import generate_trace


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def ttkv() -> TTKV:
    return TTKV()


@pytest.fixture
def paired_ttkv() -> TTKV:
    """A store with two obviously related keys and one independent key."""
    store = TTKV()
    for t in (10.0, 200.0, 3000.0):
        store.record_write("a", f"a@{t}", t)
        store.record_write("b", f"b@{t}", t)
    store.record_write("lone", 1, 50.0)
    store.record_write("lone", 2, 999.0)
    return store


def tiny_profile(app_name: str, days: int = 10, seed: int = 42) -> MachineProfile:
    """A fast, small single-app deployment for integration tests."""
    return MachineProfile(
        name=f"test:{app_name}",
        platform=PLATFORM_LINUX,
        days=days,
        apps=(app_name,),
        sessions_per_day=3,
        actions_per_session=6,
        pref_edits_per_day=2.0,
        noise_keys=0,
        noise_writes_per_day=0,
        reads_per_day=50,
        seed=seed,
    )


@pytest.fixture
def tiny_profile_factory():
    """Factory fixture: build fast single-app machine profiles."""
    return tiny_profile


@pytest.fixture(scope="session")
def chrome_trace():
    """A small Chrome trace shared by integration tests (read-only!)."""
    return generate_trace(tiny_profile("Chrome Browser", days=20))


@pytest.fixture(scope="session")
def gedit_trace():
    return generate_trace(tiny_profile("GNOME Edit", days=15))


@pytest.fixture
def chrome_app():
    return create_app("Chrome Browser")


@pytest.fixture
def word_app():
    return create_app("MS Word")


@pytest.fixture
def evolution_app():
    return create_app("Evolution Mail")

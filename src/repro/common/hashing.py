"""Process-stable string hashing.

Python's builtin ``hash(str)`` is salted per process (PYTHONHASHSEED), so
anything seeded from it changes between runs.  Every seed derived from a
name in this library goes through :func:`stable_hash` instead, keeping
trace generation and experiments bit-reproducible.
"""

from __future__ import annotations

import zlib


def stable_hash(text: str, mask: int = 0xFFFFFFFF) -> int:
    """Deterministic 32-bit hash of ``text``, optionally masked."""
    return zlib.crc32(text.encode("utf-8")) & mask

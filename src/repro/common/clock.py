"""A simulated clock.

The paper reports recovery times in wall-clock minutes, dominated by real
application start-up.  Our substrate is a simulator, so all components that
need "time passing" (trial execution, user think time) advance a
:class:`SimClock` instead of sleeping.  This keeps experiments deterministic
and instantaneous while still letting the benchmark harness report times in
the same units as the paper.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock.

    Parameters
    ----------
    start:
        Initial time in seconds.  Experiments usually start at ``0.0``.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Raises
        ------
        ValueError
            If ``seconds`` is negative; simulated time never flows backwards.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._now += seconds
        return self._now

    def elapsed_since(self, t0: float) -> float:
        """Return ``now() - t0``."""
        return self._now - t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f})"

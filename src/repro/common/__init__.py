"""Small shared utilities: simulated clock, formatting, deterministic RNG."""

from repro.common.clock import SimClock
from repro.common.format import format_mmss, format_si, quantize_timestamp

__all__ = ["SimClock", "format_mmss", "format_si", "quantize_timestamp"]

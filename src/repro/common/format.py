"""Formatting helpers shared by the analysis tables and benchmarks."""

from __future__ import annotations

SECONDS_PER_DAY = 86_400.0


def format_mmss(seconds: float) -> str:
    """Format a duration as ``m:ss`` the way Table IV of the paper does.

    >>> format_mmss(34)
    '0:34'
    >>> format_mmss(28 * 60 + 40)
    '28:40'
    """
    if seconds < 0:
        raise ValueError("duration cannot be negative")
    total = int(round(seconds))
    return f"{total // 60}:{total % 60:02d}"


def format_si(value: float) -> str:
    """Format a count with the K/M suffixes used in Table I.

    >>> format_si(6_760_000)
    '6.76M'
    >>> format_si(480)
    '0.48K'
    >>> format_si(35)
    '35'
    """
    if value < 0:
        raise ValueError("count cannot be negative")
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M"
    if value >= 100:
        return f"{value / 1_000:.2f}K"
    return f"{value:g}"


def format_bytes(size: int) -> str:
    """Format a byte count the way Table I reports TTKV sizes.

    >>> format_bytes(85 * 1024 * 1024)
    '85MB'
    >>> format_bytes(102_400)
    '0.1MB'
    """
    if size < 0:
        raise ValueError("size cannot be negative")
    mb = size / (1024 * 1024)
    if mb >= 1:
        return f"{mb:.0f}MB"
    return f"{mb:.1f}MB"


def quantize_timestamp(timestamp: float, precision: float = 1.0) -> float:
    """Truncate ``timestamp`` to a multiple of ``precision`` seconds.

    The paper's trace collector records modification times "to the precision
    of the nearest second"; the loggers apply this to every recorded event.
    ``precision=0`` disables quantisation.
    """
    if timestamp < 0:
        raise ValueError("timestamp cannot be negative")
    if precision < 0:
        raise ValueError("precision cannot be negative")
    if precision == 0:
        return timestamp
    return (timestamp // precision) * precision

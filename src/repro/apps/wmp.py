"""Windows Media Player simulation.

Hosts error #5: "caption is not shown while playing video" — a
four-setting captions feature group in the registry.
"""

from __future__ import annotations

from repro.apps.base import STORE_REGISTRY, SimulatedApplication
from repro.apps.build import mru_group, pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "Windows Media Player"
TOTAL_KEYS = 165  # Table II

CAPTIONS_ENABLED = "Player/ShowCaptions"
CAPTIONS_LANG = "Player/CaptionLang"
CAPTIONS_SIZE = "Player/CaptionSize"
CAPTIONS_POS = "Player/CaptionPos"


def _build_schema():
    settings = [
        SettingSpec(CAPTIONS_ENABLED, BOOL, default=True),
        SettingSpec(
            CAPTIONS_LANG,
            ValueDomain("enum", options=("en", "fr", "de", "es")),
            default="en",
        ),
        SettingSpec(CAPTIONS_SIZE, ValueDomain("int", lo=8, hi=32), default=14),
        SettingSpec(
            CAPTIONS_POS,
            ValueDomain("enum", options=("top", "bottom")),
            default="bottom",
        ),
        SettingSpec(
            "Player/Volume",
            ValueDomain("int", lo=0, hi=100),
            default=50,
            visible=True,
        ),
    ]
    mru_specs, mru = mru_group(
        name="RecentMedia",
        limiter="Player/MaxRecentMedia",
        item_prefix="RecentMedia/Item",
        max_items=6,
        default_limit=4,
        item_domain=ValueDomain(
            "string", pool=("clip.avi", "track.mp3", "movie.mp4", "show.mkv")
        ),
    )
    settings += mru_specs
    groups = [
        EnablerParamsGroup(
            name="Captions",
            enabler=CAPTIONS_ENABLED,
            params=[CAPTIONS_LANG, CAPTIONS_SIZE, CAPTIONS_POS],
        ),
        mru,
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0x3390)


class WindowsMediaPlayer(SimulatedApplication):
    """Media player with a captions feature group."""

    trial_cost_seconds = 11.0
    pref_burst_prob = 0.10
    page_apply_prob = 0.1

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_REGISTRY,
            config_path="Microsoft\\MediaPlayer",
            clock=clock,
        )
        self.register_action("play_video", self.play_video)

    def play_video(self, doc: str = "clip.avi") -> None:
        self._session["playing"] = doc
        mru = self._mru_group()
        if mru is not None:
            mru.push_item(self, doc)

    def derived_elements(self):
        elements = []
        playing = self._session.get("playing")
        if playing is not None:
            elements.append(("now_playing", playing))
            if bool(self.value(CAPTIONS_ENABLED)):
                caption = (
                    f"{self.value(CAPTIONS_LANG)}/"
                    f"{self.value(CAPTIONS_SIZE)}pt/"
                    f"{self.value(CAPTIONS_POS)}"
                )
            else:
                caption = "no captions"
            elements.append(("captions", caption))
        return elements


def create(clock: SimClock | None = None) -> WindowsMediaPlayer:
    return WindowsMediaPlayer(clock=clock)

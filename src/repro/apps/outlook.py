"""MS Outlook simulation.

Hosts error #1: "user is unable to use Navigation Panel" — the navigation
pane is an enabler/parameters dependency group in the registry.
"""

from __future__ import annotations

from repro.apps.base import STORE_REGISTRY, SimulatedApplication
from repro.apps.build import mru_group, pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "MS Outlook"
TOTAL_KEYS = 182  # Table II

NAV_ENABLER = "Preferences/ShowNavPane"
NAV_MODULES = "Preferences/NavPaneModules"
NAV_WIDTH = "Preferences/NavPaneWidth"

_MODULES = ValueDomain(
    "strlist",
    pool=("Mail", "Calendar", "Contacts", "Tasks", "Notes", "Folders"),
    max_len=6,
)


def _build_schema():
    settings = [
        SettingSpec(NAV_ENABLER, BOOL, default=True),
        SettingSpec(NAV_MODULES, _MODULES, default=["Mail", "Calendar"]),
        SettingSpec(NAV_WIDTH, ValueDomain("int", lo=80, hi=400), default=200),
        SettingSpec("Preferences/ReadingPane", BOOL, default=True, visible=True),
        SettingSpec(
            "Preferences/CheckInterval",
            ValueDomain("int", lo=1, hi=120),
            default=15,
        ),
    ]
    mru_specs, mru = mru_group(
        name="RecentContacts",
        limiter="Contacts/MaxRecent",
        item_prefix="Contacts/Recent",
        max_items=5,
        default_limit=4,
    )
    settings += mru_specs
    groups = [
        EnablerParamsGroup(
            name="NavigationPane",
            enabler=NAV_ENABLER,
            params=[NAV_MODULES, NAV_WIDTH],
        ),
        mru,
        EnablerParamsGroup(
            name="MailCheck",
            enabler="Preferences/ReadingPane",
            params=["Preferences/CheckInterval"],
        ),
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0x0071)


class MSOutlook(SimulatedApplication):
    """E-mail client whose navigation pane is a dependency group."""

    trial_cost_seconds = 12.0
    pref_burst_prob = 0.10
    page_apply_prob = 0.05

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_REGISTRY,
            config_path="Microsoft\\Office\\Outlook",
            clock=clock,
        )
        self.register_action("click_nav_pane", self.click_nav_pane)

    def click_nav_pane(self) -> None:
        """The trial action for error #1: try to use the navigation pane."""
        self._session["nav_pane_clicked"] = True

    def derived_elements(self):
        enabled = bool(self.value(NAV_ENABLER))
        modules = self.value(NAV_MODULES) or []
        usable = enabled and len(modules) > 0
        return [("navigation_pane", tuple(modules) if usable else "unusable")]


def create(clock: SimClock | None = None) -> MSOutlook:
    return MSOutlook(clock=clock)

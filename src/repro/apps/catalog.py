"""Catalogue of the eleven simulated applications (Table II).

Maps application names to factories plus the metadata the benchmarks use:
expected key count, store kind and the paper's reported accuracy (for
EXPERIMENTS.md side-by-side reporting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps import (
    acrobat,
    chrome,
    eog,
    evolution,
    explorer,
    gnome_edit,
    iexplore,
    mspaint,
    outlook,
    wmp,
    word,
)
from repro.apps.base import SimulatedApplication
from repro.common.clock import SimClock

AppFactory = Callable[..., SimulatedApplication]


@dataclass(frozen=True)
class AppInfo:
    """Catalogue entry for one simulated application."""

    name: str
    description: str
    factory: AppFactory
    table2_keys: int
    paper_accuracy: float | None  # Table II's %Accuracy, None for N/A


_ENTRIES = [
    AppInfo("MS Outlook", "E-mail Client", outlook.create, 182, 0.970),
    AppInfo("Evolution Mail", "E-mail Client", evolution.create, 183, 0.389),
    AppInfo("Internet Explorer", "Web Browser", iexplore.create, 33, 0.667),
    AppInfo("Chrome Browser", "Web Browser", chrome.create, 35, 1.000),
    AppInfo("MS Word", "Word Processor", word.create, 143, 1.000),
    AppInfo("GNOME Edit", "Word Processor", gnome_edit.create, 10, 0.000),
    AppInfo("MS Paint", "Image Editor", mspaint.create, 66, 0.500),
    AppInfo("Eye of GNOME", "Image Viewer", eog.create, 5, None),
    AppInfo("Acrobat Reader", "Document Reader", acrobat.create, 751, 0.958),
    AppInfo("Explorer", "Windows Shell", explorer.create, 298, 0.844),
    AppInfo("Windows Media Player", "Media Player", wmp.create, 165, 0.905),
]

APP_FACTORIES: dict[str, AppInfo] = {entry.name: entry for entry in _ENTRIES}


def app_names() -> list[str]:
    """Application names in Table II order."""
    return [entry.name for entry in _ENTRIES]


def create_app(name: str, clock: SimClock | None = None) -> SimulatedApplication:
    """Instantiate one application by its Table II name."""
    try:
        info = APP_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; known: {app_names()}"
        ) from None
    return info.factory(clock=clock)

"""Windows Explorer (shell) simulation.

Hosts error #4 ('"Open with" menu does not show installed applications
that can open .flv file') — the paper's mode/ordered-list archetype — and
error #7 ("image files are always opened in a maximized window"), a
two-setting window-placement group.
"""

from __future__ import annotations

from repro.apps.base import STORE_REGISTRY, SimulatedApplication
from repro.apps.build import pad_schema
from repro.apps.schema import (
    BOOL,
    GenericGroup,
    ModeListGroup,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "Explorer"
TOTAL_KEYS = 298  # Table II

FLV_MRU_LIST = "FileExts/.flv/OpenWithList/MRUList"
FLV_APP_A = "FileExts/.flv/OpenWithList/a"
FLV_APP_B = "FileExts/.flv/OpenWithList/b"
FLV_APP_C = "FileExts/.flv/OpenWithList/c"

IMAGE_WINDOW_STATE = "Streams/ImageWindowState"
IMAGE_WINDOW_POS = "Streams/ImageWindowPos"

_PLAYERS = ("wmplayer.exe", "vlc.exe", "mplayer.exe", "quicktime.exe")


def _valid_pos(pos) -> bool:
    if not isinstance(pos, str) or "," not in pos:
        return False
    left, _, top = pos.partition(",")
    return left.strip().isdigit() and top.strip().isdigit()


def _build_schema():
    settings = [
        SettingSpec(
            FLV_MRU_LIST,
            ValueDomain("strlist", pool=("a", "b", "c"), max_len=3),
            default=["a", "b"],
        ),
        SettingSpec(
            FLV_APP_A, ValueDomain("string", pool=_PLAYERS), default="wmplayer.exe"
        ),
        SettingSpec(FLV_APP_B, ValueDomain("string", pool=_PLAYERS), default="vlc.exe"),
        SettingSpec(
            FLV_APP_C, ValueDomain("string", pool=_PLAYERS), default="mplayer.exe"
        ),
        SettingSpec(
            IMAGE_WINDOW_STATE,
            ValueDomain("enum", options=("normal", "maximized")),
            default="normal",
        ),
        SettingSpec(
            IMAGE_WINDOW_POS,
            ValueDomain("string", pool=("100,100", "200,150", "320,240", "64,48")),
            default="100,100",
        ),
        SettingSpec("Advanced/ShowHidden", BOOL, default=False, visible=True),
    ]
    groups = [
        ModeListGroup(
            name="OpenWithFlv",
            list_key=FLV_MRU_LIST,
            entry_keys=[FLV_APP_A, FLV_APP_B, FLV_APP_C],
            entry_domain=ValueDomain("string", pool=_PLAYERS),
        ),
        GenericGroup("ImageWindow", [IMAGE_WINDOW_STATE, IMAGE_WINDOW_POS]),
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0xE897)


class WindowsExplorer(SimulatedApplication):
    """The Windows shell: context menus and window-placement streams."""

    trial_cost_seconds = 8.0
    pref_burst_prob = 0.15
    page_apply_prob = 0.1

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_REGISTRY,
            config_path="Microsoft\\Windows\\CurrentVersion\\Explorer",
            clock=clock,
        )
        self.register_action("open_context_menu", self.open_context_menu)
        self.register_action("open_image", self.open_image)

    def open_context_menu(self, doc: str = "video.flv") -> None:
        """Right-click a file: the 'Open with' menu becomes visible."""
        self._session["context_menu_target"] = doc

    def open_image(self, doc: str = "photo.png") -> None:
        """Open an image file in its viewer window."""
        self._session["image_open"] = doc

    def derived_elements(self):
        elements = []
        if self._session.get("context_menu_target", "").endswith(".flv"):
            # The group's ModeListGroup render already shows the menu; add
            # an explicit emptiness element for the error predicate.
            group = self.schema.group("OpenWithFlv")
            (_, menu), = group.render(self)
            elements.append(
                ("open_with_flv", menu if menu else "no applications")
            )
        if "image_open" in self._session:
            state = self.value(IMAGE_WINDOW_STATE)
            pos = self.value(IMAGE_WINDOW_POS)
            maximized = state != "normal" or not _valid_pos(pos)
            elements.append(
                ("image_window", "maximized" if maximized else "normal")
            )
        return elements


def create(clock: SimClock | None = None) -> WindowsExplorer:
    return WindowsExplorer(clock=clock)

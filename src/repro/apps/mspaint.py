"""MS Paint simulation.

Hosts error #6: "text tool bar does not pop up automatically when entering
text".  The toolbar's behaviour depends on two settings at once (the
enabler and the popup mode), which is why Ocasta-NoClust cannot fix the
error by rolling back one key at a time (Table IV).
"""

from __future__ import annotations

from repro.apps.base import STORE_REGISTRY, SimulatedApplication
from repro.apps.build import pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "MS Paint"
TOTAL_KEYS = 66  # Table II

TOOLBAR_ENABLED = "View/ShowTextToolbar"
TOOLBAR_MODE = "View/TextToolbarMode"
TOOLBAR_X = "View/TextToolbarX"
TOOLBAR_Y = "View/TextToolbarY"


def _build_schema():
    settings = [
        SettingSpec(TOOLBAR_ENABLED, BOOL, default=True),
        SettingSpec(
            TOOLBAR_MODE,
            ValueDomain("enum", options=("auto", "manual")),
            default="auto",
        ),
        SettingSpec(TOOLBAR_X, ValueDomain("int", lo=0, hi=1600), default=480),
        SettingSpec(TOOLBAR_Y, ValueDomain("int", lo=0, hi=1200), default=120),
        SettingSpec("View/GridLines", BOOL, default=False, visible=True),
    ]
    groups = [
        EnablerParamsGroup(
            name="TextToolbar",
            enabler=TOOLBAR_ENABLED,
            params=[TOOLBAR_MODE, TOOLBAR_X, TOOLBAR_Y],
        ),
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0x9A17)


class MSPaint(SimulatedApplication):
    """Image editor with a two-setting text-toolbar popup behaviour."""

    trial_cost_seconds = 7.0
    pref_burst_prob = 0.40
    page_apply_prob = 0.9

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_REGISTRY,
            config_path="Microsoft\\Applets\\Paint",
            clock=clock,
        )
        self.register_action("enter_text", self.enter_text)

    def enter_text(self) -> None:
        """The trial action for error #6: start typing on the canvas."""
        self._session["text_mode"] = True

    def derived_elements(self):
        elements = []
        if self._session.get("text_mode"):
            pops = (
                bool(self.value(TOOLBAR_ENABLED))
                and self.value(TOOLBAR_MODE) == "auto"
            )
            elements.append(
                ("text_toolbar", "pops-up" if pops else "stays-hidden")
            )
        return elements


def create(clock: SimClock | None = None) -> MSPaint:
    return MSPaint(clock=clock)

"""The simulated-application base class and the screenshot abstraction.

A :class:`SimulatedApplication` owns a configuration store of the right
flavour (registry / GConf / file), exposes the user-level verbs the
workload generator and the repair trials drive it with, and renders its
visible state into a hashable :class:`Screenshot`.

Key-name plumbing: schema setting names are local (``mail/mark_seen``);
each store flavour maps them to the canonical names the loggers record in
the TTKV (registry paths, GConf paths, or ``<file>:<key>``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.apps.schema import (
    ModeListGroup,
    ConfigSchema,
    DependencyGroup,
    LimiterListGroup,
    VOLATILITY_STATE,
)
from repro.common.clock import SimClock
from repro.common.hashing import stable_hash
from repro.exceptions import SchemaError, UnknownActionError
from repro.loggers.file_logger import FileLogger, file_key
from repro.loggers.gconf_logger import GConfLogger
from repro.loggers.registry_logger import RegistryLogger
from repro.stores.base import ConfigStore
from repro.stores.filestore import FileStore, VirtualFile
from repro.stores.gconf import GConfStore
from repro.stores.registry import RegistryStore
from repro.ttkv.store import TTKV

STORE_REGISTRY = "registry"
STORE_GCONF = "gconf"
STORE_FILE = "file"

_STORE_KINDS = (STORE_REGISTRY, STORE_GCONF, STORE_FILE)


@dataclass(frozen=True)
class Screenshot:
    """A hashable rendering of an application's visible state.

    Equality is what the repair tool's de-duplication relies on: two
    screenshots are identical iff the same visible elements show the same
    content.
    """

    app_name: str
    elements: frozenset[tuple[str, Any]]

    def element(self, name: str) -> Any:
        """Value of one visible element; raises KeyError when absent."""
        for element_name, value in self.elements:
            if element_name == name:
                return value
        raise KeyError(name)

    def has_element(self, name: str) -> bool:
        return any(element_name == name for element_name, _ in self.elements)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"[{self.app_name}]"]
        for name, value in sorted(self.elements, key=lambda e: e[0]):
            lines.append(f"  {name} = {value!r}")
        return "\n".join(lines)


def _freeze(value: Any) -> Any:
    """Make arbitrary setting values hashable for screenshot elements."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


ActionHandler = Callable[..., None]


class SimulatedApplication:
    """Base class for the eleven simulated applications.

    Parameters
    ----------
    name:
        Display name (Table II's Application column).
    schema:
        The configuration schema with ground-truth dependency groups.
    store_kind:
        ``registry``, ``gconf`` or ``file``.
    config_path:
        Registry sub-path under HKCU\\Software, GConf directory, or the
        configuration file path, depending on ``store_kind``.
    file_format:
        Parser name for file-backed apps (ignored otherwise).
    """

    #: per-trial execution cost in simulated seconds (app start-up +
    #: replay); subclasses override to differentiate heavyweight apps.
    trial_cost_seconds: float = 10.0

    #: probability that a preference change goes through a dialog that
    #: rewrites its whole settings page on Apply (even unchanged values).
    #: Registry/GConf loggers record those same-value rewrites, so pages
    #: fuse into oversized clusters — the paper's Evolution Mail, GNOME
    #: Edit, MS Paint and IE rows.  File loggers diff flushes and are
    #: blind to same-value rewrites, which is why the paper's file-backed
    #: applications cluster accurately.
    page_apply_prob: float = 0.05

    #: settings per preferences-dialog page
    page_size: int = 10

    #: whether hand-authored feature groups get their own dialog page;
    #: tiny applications (GNOME Edit) have a single preferences dialog
    #: that applies everything at once
    dedicated_group_pages: bool = True

    def __init__(
        self,
        name: str,
        schema: ConfigSchema,
        store_kind: str,
        config_path: str,
        clock: SimClock | None = None,
        file_format: str = "plaintext",
    ) -> None:
        if store_kind not in _STORE_KINDS:
            raise SchemaError(f"unknown store kind {store_kind!r}")
        self.name = name
        self.schema = schema
        self.store_kind = store_kind
        self.config_path = config_path
        self.clock = clock if clock is not None else SimClock()
        self.file_format = file_format
        self._session: dict[str, Any] = {}
        self._actions: dict[str, ActionHandler] = {}
        # Store-API call latency: real applications take tens of
        # milliseconds between successive key writes, so a multi-key
        # update can straddle a second boundary under the collector's 1 s
        # timestamp quantisation.  This is what produces the paper's
        # Fig. 3a cliff between window=0 and window=1.
        self._latency_rng = random.Random(stable_hash(name))
        self.write_latency_range = (0.02, 0.25)
        self.read_latency_range = (0.0005, 0.004)

        self.file: VirtualFile | None = None
        if store_kind == STORE_REGISTRY:
            self.store: ConfigStore = RegistryStore(clock=self.clock)
        elif store_kind == STORE_GCONF:
            self.store = GConfStore(clock=self.clock)
        else:
            self.file = VirtualFile(config_path)
            self.store = FileStore(
                self.file, file_format, clock=self.clock, autoflush=True
            )

        self.install_defaults()
        if isinstance(self.store, FileStore):
            # Materialise the defaults into the configuration file before
            # any logger attaches.  Otherwise the first flush after an
            # ordinary write would diff against an empty file and record
            # the whole schema as one giant co-written group.
            self.store.flush()
        self._pref_pages = self._build_pref_pages()
        self.register_action("launch", self.launch)
        self.register_action("open_document", self.open_document)
        self.register_action("close_document", self.close_document)

    # -- key naming -----------------------------------------------------------

    def canonical_key(self, setting_name: str) -> str:
        """TTKV name the loggers record for a schema-local setting name."""
        if self.store_kind == STORE_REGISTRY:
            local = setting_name.replace("/", "\\")
            return f"HKCU\\Software\\{self.config_path}\\{local}"
        if self.store_kind == STORE_GCONF:
            return f"{self.config_path}/{setting_name}"
        return file_key(self.config_path, setting_name)

    def setting_name(self, canonical: str) -> str:
        """Inverse of :meth:`canonical_key`."""
        if self.store_kind == STORE_REGISTRY:
            prefix = f"HKCU\\Software\\{self.config_path}\\"
            if not canonical.startswith(prefix):
                raise SchemaError(f"{canonical!r} is not a {self.name} key")
            return canonical[len(prefix):].replace("\\", "/")
        if self.store_kind == STORE_GCONF:
            prefix = f"{self.config_path}/"
            if not canonical.startswith(prefix):
                raise SchemaError(f"{canonical!r} is not a {self.name} key")
            return canonical[len(prefix):]
        prefix = f"{self.config_path}:"
        if not canonical.startswith(prefix):
            raise SchemaError(f"{canonical!r} is not a {self.name} key")
        return canonical[len(prefix):]

    def store_key(self, setting_name: str) -> str:
        """Key under which the *store* holds a schema-local setting."""
        if self.store_kind == STORE_FILE:
            return setting_name
        return self.canonical_key(setting_name)

    @property
    def key_prefix(self) -> str:
        """Canonical-key prefix selecting this app's settings in a TTKV."""
        if self.store_kind == STORE_REGISTRY:
            return f"HKCU\\Software\\{self.config_path}\\"
        if self.store_kind == STORE_GCONF:
            return f"{self.config_path}/"
        return f"{self.config_path}:"

    def canonical_ground_truth_groups(self) -> list[frozenset[str]]:
        """Dependency groups in canonical-key form (for accuracy scoring)."""
        return [
            frozenset(self.canonical_key(name) for name in group.keys())
            for group in self.schema.groups
        ]

    # -- configuration access ----------------------------------------------

    def install_defaults(self) -> None:
        """Silently load schema defaults (pre-logging initial state)."""
        defaults = {
            self.store_key(spec.name): spec.default
            for spec in self.schema.settings
            if spec.default is not None
        }
        self.store.load_dict(defaults, notify=False)

    def value(self, setting_name: str) -> Any:
        """Current value of a setting, observer-silent (internal reads)."""
        return self.store.peek(self.store_key(setting_name))

    def read_setting(self, setting_name: str) -> Any:
        """A *logged* read, as the real application performs at runtime."""
        self.clock.advance(self._latency_rng.uniform(*self.read_latency_range))
        return self.store.get(self.store_key(setting_name))

    def user_set(self, setting_name: str, value: Any) -> None:
        """A logged write triggered by explicit user/preference action."""
        self.clock.advance(self._latency_rng.uniform(*self.write_latency_range))
        self.store.set(self.store_key(setting_name), value)

    def app_set(self, setting_name: str, value: Any) -> None:
        """A logged write the application performs on its own behalf."""
        self.clock.advance(self._latency_rng.uniform(*self.write_latency_range))
        self.store.set(self.store_key(setting_name), value)

    def app_delete(self, setting_name: str) -> None:
        self.clock.advance(self._latency_rng.uniform(*self.write_latency_range))
        self.store.delete(self.store_key(setting_name))

    def spec(self, setting_name: str):
        return self.schema.spec(setting_name)

    # -- logging ----------------------------------------------------------

    def attach_logger(self, ttkv: TTKV, precision: float = 1.0):
        """Create and attach the flavour-appropriate logger; return it."""
        if self.store_kind == STORE_REGISTRY:
            logger = RegistryLogger(ttkv, precision=precision)
            logger.attach(self.store)  # type: ignore[arg-type]
            return logger
        if self.store_kind == STORE_GCONF:
            logger = GConfLogger(ttkv, precision=precision)
            logger.attach(self.store)  # type: ignore[arg-type]
            return logger
        logger = FileLogger(ttkv, self.file_format, precision=precision)
        assert self.file is not None
        logger.attach(self.file)
        return logger

    # -- UI actions ---------------------------------------------------------

    def register_action(self, name: str, handler: ActionHandler) -> None:
        self._actions[name] = handler

    def action_names(self) -> list[str]:
        return sorted(self._actions)

    def perform(self, action: str, **params: Any) -> None:
        """Execute one deterministic UI action (the unit trials replay)."""
        handler = self._actions.get(action)
        if handler is None:
            raise UnknownActionError(self.name, action)
        handler(**params)

    # Default actions -------------------------------------------------------

    def launch(self) -> None:
        """Application start-up: reads every setting (the read traffic that
        dominates Table I) and resets session state."""
        self._session = {}
        for spec in self.schema.settings:
            self.read_setting(spec.name)

    def open_document(self, doc: str) -> None:
        """Open a document; feeds the MRU list when the app has one."""
        self._session["document"] = doc
        mru = self._mru_group()
        if mru is not None:
            mru.push_item(self, doc)

    def close_document(self) -> None:
        self._session.pop("document", None)

    def _mru_group(self) -> LimiterListGroup | None:
        for group in self.schema.groups:
            if isinstance(group, LimiterListGroup):
                return group
        return None

    # -- workload verbs (rng-driven; not replayed in trials) -----------------

    def _build_pref_pages(self) -> list[list[object]]:
        """Partition config settings into preferences-dialog pages.

        Each page holds whole dependency groups plus independent config
        settings, packed to roughly ``page_size`` settings in schema
        order.  The partition is a property of the application's dialog
        layout, so it is deterministic.
        """
        pages: list[list[object]] = []
        current: list[object] = []
        count = 0

        def close_page() -> None:
            nonlocal current, count
            if current:
                pages.append(current)
            current = []
            count = 0

        for group in self.schema.groups:
            if not group.is_filler and self.dedicated_group_pages:
                # Hand-authored feature groups get a dedicated dialog
                # page (real applications put e.g. the Open-With editor
                # in its own dialog), so a whole-page Apply rewrites
                # exactly the feature family.
                close_page()
                pages.append([group])
                continue
            size = len(group.keys())
            if count and count + size > self.page_size:
                close_page()
            current.append(group)
            count += size
            if count >= self.page_size:
                close_page()
        for name in self.schema.independent_settings():
            if self.schema.spec(name).volatility == VOLATILITY_STATE:
                continue
            current.append(name)
            count += 1
            if count >= self.page_size:
                close_page()
        close_page()
        return pages

    def _page_settings(self, page: list[object]) -> list[str]:
        names: list[str] = []
        for entry in page:
            if isinstance(entry, DependencyGroup):
                names.extend(sorted(entry.keys()))
            else:
                names.append(entry)  # type: ignore[arg-type]
        return names

    def change_preference(self, rng: random.Random) -> None:
        """User edits preferences: open a dialog page, change one thing.

        With probability ``page_apply_prob`` the dialog rewrites every
        setting on the page when applied (unchanged values included).
        """
        if not self._pref_pages:
            return
        page = rng.choice(self._pref_pages)
        target = rng.choice(page)
        if isinstance(target, DependencyGroup):
            target.coherent_update(self, rng)
        else:
            name = target
            self.user_set(name, self.spec(name).domain.perturb(rng, self.value(name)))
        if rng.random() < self.page_apply_prob:
            changed = (
                target.keys() if isinstance(target, DependencyGroup) else {target}
            )
            for name in self._page_settings(page):
                if name not in changed:
                    self.app_set(name, self.value(name))

    def partial_group_update(self, rng: random.Random) -> None:
        """A legal partial update driven by ordinary use.

        Only the archetypes with state churn qualify: MRU pushes touch a
        limiter-list's items without its limiter, and mode-list orderings
        change without their entries (the undersized-cluster sources
        behind the paper's errors #2 and #4).  Enabler families and
        generic groups are only written by preference dialogs.
        """
        churny = [
            group
            for group in self.schema.groups
            if isinstance(group, (LimiterListGroup, ModeListGroup))
        ]
        if churny:
            rng.choice(churny).partial_update(self, rng)

    def activity(self, rng: random.Random, intensity: int = 3) -> None:
        """Ordinary use: touches state-volatile settings and MRU lists."""
        state_settings = [
            spec.name
            for spec in self.schema.settings
            if spec.volatility == VOLATILITY_STATE
            and spec.name in self.schema.independent_settings()
        ]
        for _ in range(intensity):
            roll = rng.random()
            if roll < 0.5 and state_settings:
                name = rng.choice(state_settings)
                self.app_set(
                    name, self.spec(name).domain.perturb(rng, self.value(name))
                )
            elif roll < 0.8:
                mru = self._mru_group()
                if mru is not None:
                    mru.push_item(self, mru.item_domain.sample(rng))
            else:
                self.partial_group_update(rng)

    def software_update(self, rng: random.Random, breadth: int = 10) -> None:
        """A software update rewrites many unrelated settings at once —
        the paper's second source of oversized clusters.

        Updates migrate whole preference blocks: a grouped setting is
        rewritten with its entire dependency group, an independent one
        alone.  (An update that rewrote half a feature family would leave
        the application inconsistent, which real updaters avoid.)
        """
        if not self.dedicated_group_pages:
            # Tiny single-dialog applications: an update migrates the
            # whole configuration in one go.
            for name in self.schema.names():
                spec = self.spec(name)
                self.app_set(name, spec.domain.perturb(rng, self.value(name)))
            return
        independents = self.schema.independent_settings()
        rng.shuffle(independents)
        for name in independents[:breadth]:
            spec = self.spec(name)
            self.app_set(name, spec.domain.perturb(rng, self.value(name)))
        if self.schema.groups and rng.random() < 0.3:
            group = rng.choice(self.schema.groups)
            for name in sorted(group.keys()):
                spec = self.spec(name)
                self.app_set(name, spec.domain.perturb(rng, self.value(name)))

    # -- rendering ------------------------------------------------------------

    def render(self) -> Screenshot:
        """Current visible state as a screenshot."""
        elements: list[tuple[str, Any]] = []
        if "document" in self._session:
            elements.append(("document", self._session["document"]))
        for name in self.schema.independent_settings():
            spec = self.schema.spec(name)
            if spec.visible:
                elements.append((f"setting/{name}", _freeze(self.value(name))))
        for group in self.schema.groups:
            elements.extend(
                (element, _freeze(value)) for element, value in group.render(self)
            )
        elements.extend(
            (element, _freeze(value)) for element, value in self.derived_elements()
        )
        return Screenshot(app_name=self.name, elements=frozenset(elements))

    def derived_elements(self) -> list[tuple[str, Any]]:
        """App-specific visible behaviour; subclasses override."""
        return []

    # -- sandboxing ------------------------------------------------------------

    def clone_sandboxed(self, clock: SimClock | None = None) -> "SimulatedApplication":
        """A twin with a cloned store and no observers (see repair.sandbox)."""
        twin = object.__new__(type(self))
        twin.__dict__.update(self.__dict__)
        twin.clock = clock if clock is not None else SimClock(self.clock.now())
        twin.store = self.store.clone(clock=twin.clock)
        if isinstance(twin.store, FileStore):
            twin.file = twin.store.file
        twin._session = dict(self._session)
        twin._actions = {}
        # Re-bind action handlers to the twin (they were bound methods of
        # the original instance and would otherwise mutate the wrong app).
        for action, handler in self._actions.items():
            bound_self = getattr(handler, "__self__", None)
            if bound_self is self:
                twin._actions[action] = getattr(twin, handler.__name__)
            else:  # pragma: no cover - free-function handlers
                twin._actions[action] = handler
        return twin

"""Schema-padding helpers for the simulated applications.

Each application module hand-authors the settings its error scenarios and
the paper's examples name, then pads the schema with deterministic filler
settings and dependency groups until the key count matches Table II
(Acrobat Reader has 751 keys; Eye of GNOME has 5).  Filler settings carry
realistic hierarchical names and the same archetype mix the paper's manual
study found, so the clustering pipeline sees statistically honest input.
"""

from __future__ import annotations

import random

from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    FRACTION,
    GenericGroup,
    LimiterListGroup,
    PERCENT,
    SMALL_INT,
    ConfigSchema,
    DependencyGroup,
    SettingSpec,
    ValueDomain,
    VOLATILITY_CONFIG,
    VOLATILITY_STATE,
)
from repro.exceptions import SchemaError

_SECTIONS = (
    "General", "View", "Window", "Toolbars", "Security", "Cache",
    "Network", "Printing", "Fonts", "Colors", "Session", "Advanced",
    "Plugins", "Shortcuts", "Updates", "History", "Layout", "Sound",
)

_LEAVES = (
    "Enabled", "Mode", "Width", "Height", "Timeout", "Limit", "Path",
    "Style", "Size", "Color", "Delay", "Count", "Interval", "Scale",
    "Position", "Order", "Quality", "Level", "Threshold", "Flags",
)

_DOMAINS = (BOOL, SMALL_INT, PERCENT, FRACTION)


def filler_name(rng: random.Random, used: set[str]) -> str:
    """A realistic, unused hierarchical setting name."""
    for _ in range(1000):
        section = rng.choice(_SECTIONS)
        leaf = rng.choice(_LEAVES)
        if rng.random() < 0.3:
            name = f"{section}/{rng.choice(_SECTIONS)}/{leaf}"
        else:
            name = f"{section}/{leaf}"
        if name not in used:
            used.add(name)
            return name
        candidate = f"{name}{rng.randint(2, 99)}"
        if candidate not in used:
            used.add(candidate)
            return candidate
    raise SchemaError("could not generate a fresh filler name")


def _filler_spec(
    name: str, rng: random.Random, state_fraction: float
) -> SettingSpec:
    domain = rng.choice(_DOMAINS)
    volatility = (
        VOLATILITY_STATE if rng.random() < state_fraction else VOLATILITY_CONFIG
    )
    default = domain.sample(rng)
    return SettingSpec(
        name=name,
        domain=domain,
        default=default,
        # Very few settings directly change what's on screen; keeping this
        # low is what keeps the repair tool's unique-screenshot counts in
        # the paper's single-digit range (Table IV's Screens column).
        visible=rng.random() < 0.04,
        volatility=volatility,
    )


def pad_schema(
    settings: list[SettingSpec],
    groups: list[DependencyGroup],
    target_keys: int,
    seed: int,
    grouped_fraction: float = 0.35,
    state_fraction: float = 0.25,
) -> ConfigSchema:
    """Extend hand-authored settings/groups to ``target_keys`` settings.

    Filler is deterministic in ``seed``.  ``grouped_fraction`` of the
    *filler* keys land in new dependency groups (generic or
    enabler-params, sizes 2–5); the rest are independent.  Raises if the
    hand-authored schema already exceeds the target.
    """
    settings = list(settings)
    groups = list(groups)
    used = {spec.name for spec in settings}
    if len(settings) > target_keys:
        raise SchemaError(
            f"hand-authored schema has {len(settings)} keys, "
            f"more than the target {target_keys}"
        )
    rng = random.Random(seed)
    group_counter = 0

    while len(settings) < target_keys:
        remaining = target_keys - len(settings)
        make_group = remaining >= 2 and rng.random() < grouped_fraction
        if make_group:
            size = min(remaining, rng.randint(2, 4))
            member_specs = [
                _filler_spec(filler_name(rng, used), rng, state_fraction)
                for _ in range(size)
            ]
            settings.extend(member_specs)
            names = [spec.name for spec in member_specs]
            group_counter += 1
            if size >= 3 and rng.random() < 0.5:
                group = EnablerParamsGroup(
                    name=f"filler_feature_{group_counter}",
                    enabler=names[0],
                    params=names[1:],
                    visible=False,
                )
            else:
                group = GenericGroup(f"filler_group_{group_counter}", names)
            group.is_filler = True
            groups.append(group)
        else:
            settings.append(
                _filler_spec(filler_name(rng, used), rng, state_fraction)
            )

    return ConfigSchema(settings, groups)


def mru_group(
    name: str,
    limiter: str,
    item_prefix: str,
    max_items: int,
    default_limit: int,
    item_domain: ValueDomain | None = None,
) -> tuple[list[SettingSpec], LimiterListGroup]:
    """Specs + group for a recently-used-files list (Word Fig. 1a style).

    The limiter is a config-volatility setting; the items are state
    volatility (they churn on every document open).
    """
    from repro.apps.schema import FILENAME

    domain = item_domain if item_domain is not None else FILENAME
    specs = [
        SettingSpec(
            name=limiter,
            domain=ValueDomain("int", lo=0, hi=max_items),
            default=default_limit,
            volatility=VOLATILITY_CONFIG,
        )
    ]
    specs.extend(
        SettingSpec(
            name=f"{item_prefix}{i}",
            domain=domain,
            volatility=VOLATILITY_STATE,
        )
        for i in range(1, max_items + 1)
    )
    group = LimiterListGroup(
        name=name,
        limiter=limiter,
        item_prefix=item_prefix,
        max_items=max_items,
        item_domain=domain,
    )
    return specs, group

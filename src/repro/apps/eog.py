"""Eye of GNOME (image viewer) simulation.

The smallest application in Table II (5 keys, no multi-setting clusters).
Hosts error #11: "user is unable to print image files".
"""

from __future__ import annotations

from repro.apps.base import STORE_GCONF, SimulatedApplication
from repro.apps.schema import (
    BOOL,
    ConfigSchema,
    FRACTION,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "Eye of GNOME"

PRINT_BACKEND = "print/backend"
_VALID_BACKENDS = ("cups", "lpr")


def _build_schema():
    # Five keys, all independent: Table II reports 0 multi-setting
    # clusters for this application.
    settings = [
        SettingSpec(
            PRINT_BACKEND,
            ValueDomain("enum", options=_VALID_BACKENDS),
            default="cups",
        ),
        SettingSpec("view/interpolate", BOOL, default=True, visible=True),
        SettingSpec("view/zoom", FRACTION, default=1.0, visible=True),
        SettingSpec("view/fullscreen_loop", BOOL, default=False),
        SettingSpec(
            "view/slideshow_delay", ValueDomain("int", lo=1, hi=30), default=5
        ),
    ]
    return ConfigSchema(settings, groups=[])


class EyeOfGnome(SimulatedApplication):
    """Image viewer with an independent print-backend setting."""

    trial_cost_seconds = 6.0
    pref_burst_prob = 0.10
    page_apply_prob = 0.0

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_GCONF,
            config_path="/apps/eog",
            clock=clock,
        )
        self.register_action("print_image", self.print_image)

    def print_image(self) -> None:
        self._session["print_attempted"] = True

    def derived_elements(self):
        elements = []
        if self._session.get("print_attempted"):
            ok = self.value(PRINT_BACKEND) in _VALID_BACKENDS
            elements.append(
                ("print_result", "printed" if ok else "error: cannot print")
            )
        return elements


def create(clock: SimClock | None = None) -> EyeOfGnome:
    return EyeOfGnome(clock=clock)

"""GNOME Edit (gedit) simulation.

A tiny GConf application (10 keys in Table II).  Hosts error #12: "user is
unable to save any document" — a broken backup-scheme setting makes every
save fail.
"""

from __future__ import annotations

from repro.apps.base import STORE_GCONF, SimulatedApplication
from repro.apps.build import pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "GNOME Edit"
TOTAL_KEYS = 10  # Table II

BACKUP_SCHEME = "save/backup_scheme"
_VALID_SCHEMES = ("local", "none", "vfs")


def _build_schema():
    settings = [
        SettingSpec(
            BACKUP_SCHEME,
            ValueDomain("enum", options=_VALID_SCHEMES),
            default="local",
        ),
        SettingSpec("autosave/enabled", BOOL, default=False),
        SettingSpec(
            "autosave/interval", ValueDomain("int", lo=1, hi=60), default=10
        ),
        SettingSpec("view/show_line_numbers", BOOL, default=True, visible=True),
        SettingSpec(
            "view/tab_width", ValueDomain("int", lo=2, hi=8), default=4, visible=True
        ),
    ]
    groups = [
        EnablerParamsGroup(
            name="AutoSave",
            enabler="autosave/enabled",
            params=["autosave/interval"],
        ),
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0x6ED1)


class GnomeEdit(SimulatedApplication):
    """Text editor whose save path depends on a backup-scheme setting."""

    trial_cost_seconds = 6.0
    pref_burst_prob = 0.50
    page_apply_prob = 1.0
    # gedit's whole preferences dialog is one page; Apply rewrites all of
    # it, which is why the paper finds its single multi-setting cluster
    # incorrectly identified (Table II: 0%).
    dedicated_group_pages = False
    page_size = 16

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_GCONF,
            config_path="/apps/gedit",
            clock=clock,
        )
        self.register_action("save_document", self.save_document)

    def save_document(self) -> None:
        self._session["save_attempted"] = True

    def derived_elements(self):
        elements = []
        if self._session.get("save_attempted"):
            ok = self.value(BACKUP_SCHEME) in _VALID_SCHEMES
            elements.append(("save_result", "saved" if ok else "error: cannot save"))
        return elements


def create(clock: SimClock | None = None) -> GnomeEdit:
    return GnomeEdit(clock=clock)

"""Internet Explorer simulation.

Hosts error #3: "dialog to disable add-ons always pops up" — a
registry-backed nag-dialog feature.
"""

from __future__ import annotations

from repro.apps.base import STORE_REGISTRY, SimulatedApplication
from repro.apps.build import pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "Internet Explorer"
TOTAL_KEYS = 33  # Table II

ADDON_DIALOG = "Main/ShowAddonDialog"
ADDON_THRESHOLD = "Main/AddonDialogThreshold"


def _build_schema():
    settings = [
        SettingSpec(ADDON_DIALOG, BOOL, default=False),
        SettingSpec(
            ADDON_THRESHOLD, ValueDomain("float", lo=0.1, hi=10.0), default=0.2
        ),
        SettingSpec(
            "Main/StartPage",
            ValueDomain(
                "string",
                pool=("about:blank", "msn.com", "corp.intranet", "news.site"),
            ),
            default="about:blank",
            visible=True,
        ),
        SettingSpec("Main/ShowStatusBar", BOOL, default=True, visible=True),
    ]
    groups = [
        EnablerParamsGroup(
            name="AddonWatchdog",
            enabler=ADDON_DIALOG,
            params=[ADDON_THRESHOLD],
        ),
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0x1E06)


class InternetExplorer(SimulatedApplication):
    """Web browser with an add-on watchdog dialog."""

    trial_cost_seconds = 9.0
    pref_burst_prob = 0.35
    page_apply_prob = 0.9

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_REGISTRY,
            config_path="Microsoft\\Internet Explorer",
            clock=clock,
        )
        self.register_action("browse", self.browse)

    def browse(self, url: str = "news.site") -> None:
        self._session["url"] = url

    def derived_elements(self):
        elements = []
        if "url" in self._session:
            elements.append(("page", self._session["url"]))
        popup = bool(self.value(ADDON_DIALOG))
        elements.append(("addon_dialog", "pops-up" if popup else "hidden"))
        return elements


def create(clock: SimClock | None = None) -> InternetExplorer:
    return InternetExplorer(clock=clock)

"""Acrobat Reader simulation.

The largest application in Table II (751 keys) and the paper's Fig. 1b
example: ``InlineAutoComplete`` enables the form auto-complete feature
whose behaviour ``RecordNewEntries`` and ``ShowDropDown`` specify.
Preferences are stored in a PostScript-style file.  Hosts errors #15
("menu bar disappears for certain PDF document") and #16 ("find box is
missing from the tool bar").
"""

from __future__ import annotations

from repro.apps.base import STORE_FILE, SimulatedApplication
from repro.apps.build import mru_group, pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    FRACTION,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "Acrobat Reader"
TOTAL_KEYS = 751  # Table II
CONFIG_PATH = "/home/user/.adobe/Acrobat/Preferences"

AUTOCOMPLETE_ENABLER = "Forms/InlineAutoComplete"
AUTOCOMPLETE_RECORD = "Forms/RecordNewEntries"
AUTOCOMPLETE_DROPDOWN = "Forms/ShowDropDown"

MENU_HIDDEN_DOCS = "AVGeneral/MenuBarHiddenDocs"
FIND_BOX = "Toolbars/Find/Visible"

_PDF_POOL = (
    "thesis.pdf", "paper.pdf", "manual.pdf", "invoice.pdf",
    "datasheet.pdf", "slides.pdf", "form.pdf", "report.pdf",
)


def _build_schema():
    settings = [
        SettingSpec(AUTOCOMPLETE_ENABLER, BOOL, default=False),
        SettingSpec(AUTOCOMPLETE_RECORD, BOOL, default=True),
        SettingSpec(AUTOCOMPLETE_DROPDOWN, BOOL, default=True),
        SettingSpec(
            MENU_HIDDEN_DOCS,
            ValueDomain("strlist", pool=_PDF_POOL, max_len=3),
            default=[],
        ),
        SettingSpec(FIND_BOX, BOOL, default=True),
        SettingSpec("AVGeneral/Zoom", FRACTION, default=1.0, visible=True),
    ]
    mru_specs, mru = mru_group(
        name="RecentFiles",
        limiter="AVGeneral/MaxRecentFiles",
        item_prefix="RecentFiles/Item",
        max_items=6,
        default_limit=4,
        item_domain=ValueDomain("string", pool=_PDF_POOL),
    )
    settings += mru_specs
    groups = [
        EnablerParamsGroup(
            name="FormAutoComplete",
            enabler=AUTOCOMPLETE_ENABLER,
            params=[AUTOCOMPLETE_RECORD, AUTOCOMPLETE_DROPDOWN],
        ),
        mru,
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0xACB0)


class AcrobatReader(SimulatedApplication):
    """Document reader with PostScript-file preferences."""

    trial_cost_seconds = 20.0
    pref_burst_prob = 0.05
    page_apply_prob = 0.05

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_FILE,
            config_path=CONFIG_PATH,
            clock=clock,
            file_format="postscript",
        )

    def derived_elements(self):
        elements = [
            ("find_box", "shown" if self.value(FIND_BOX) else "missing"),
        ]
        doc = self._session.get("document")
        if doc is not None:
            hidden_for = self.value(MENU_HIDDEN_DOCS) or []
            visible = doc not in hidden_for
            elements.append(("menu_bar", "shown" if visible else "missing"))
        return elements


def create(clock: SimClock | None = None) -> AcrobatReader:
    return AcrobatReader(clock=clock)

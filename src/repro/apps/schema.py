"""Application configuration schemas with ground-truth dependency groups.

The paper characterises three archetypes of related configuration settings
(§II, Fig. 1), all reproduced here as group classes:

- :class:`LimiterListGroup` — MS Word: ``Max Display`` limits how many
  ``Item N`` settings are valid; changing the limit trims the items.
- :class:`EnablerParamsGroup` — Acrobat Reader: ``InlineAutoComplete``
  enables a feature whose behaviour is specified by parameter settings.
- :class:`ModeListGroup` — Explorer's "Open with": an ordered list setting
  names a set of companion entry settings.

:class:`GenericGroup` covers plain always-written-together settings.
Settings outside any group are *independent* — the ground truth says they
are related to nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import SchemaError

#: Setting volatility classes.  ``config`` settings change only when the
#: user explicitly edits preferences (rare); ``state`` settings are touched
#: by normal application activity (window geometry, MRU lists — frequent).
VOLATILITY_CONFIG = "config"
VOLATILITY_STATE = "state"


class ValueDomain:
    """Generates and perturbs plausible values for one setting.

    Kinds: ``bool``, ``int`` (with lo/hi), ``float`` (lo/hi), ``enum``
    (options), ``string`` (pool of realistic tokens), ``strlist`` (list of
    strings from the pool).
    """

    def __init__(
        self,
        kind: str,
        lo: float = 0,
        hi: float = 100,
        options: tuple[str, ...] = (),
        pool: tuple[str, ...] = (),
        max_len: int = 4,
    ) -> None:
        if kind not in ("bool", "int", "float", "enum", "string", "strlist"):
            raise SchemaError(f"unknown value domain kind {kind!r}")
        if kind == "enum" and len(options) < 2:
            raise SchemaError("enum domains need at least two options")
        self.kind = kind
        self.lo = lo
        self.hi = hi
        self.options = options
        self.pool = pool or _DEFAULT_POOL
        self.max_len = max_len

    def sample(self, rng: random.Random) -> Any:
        if self.kind == "bool":
            return rng.random() < 0.5
        if self.kind == "int":
            return rng.randint(int(self.lo), int(self.hi))
        if self.kind == "float":
            return round(rng.uniform(self.lo, self.hi), 3)
        if self.kind == "enum":
            return rng.choice(self.options)
        if self.kind == "string":
            return rng.choice(self.pool)
        return [
            rng.choice(self.pool) for _ in range(rng.randint(0, self.max_len))
        ]

    def perturb(self, rng: random.Random, current: Any) -> Any:
        """A fresh value different from ``current`` whenever possible."""
        for _ in range(16):
            value = self.sample(rng)
            if value != current:
                return value
        if self.kind == "bool":
            return not current
        return self.sample(rng)


_DEFAULT_POOL = (
    "report.doc", "draft.doc", "notes.txt", "thesis.pdf", "budget.xls",
    "photo.png", "scan.jpg", "letter.doc", "slides.ppt", "paper.pdf",
    "memo.txt", "archive.zip", "track.mp3", "clip.avi", "readme.md",
)

BOOL = ValueDomain("bool")
SMALL_INT = ValueDomain("int", lo=0, hi=30)
PERCENT = ValueDomain("int", lo=0, hi=100)
FRACTION = ValueDomain("float", lo=0.0, hi=4.0)
FILENAME = ValueDomain("string")
FILELIST = ValueDomain("strlist")


@dataclass(frozen=True)
class SettingSpec:
    """One configuration setting in an application's schema."""

    name: str
    domain: ValueDomain = field(default=BOOL)
    default: Any = None
    visible: bool = False
    volatility: str = VOLATILITY_CONFIG

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("setting name cannot be empty")
        if self.volatility not in (VOLATILITY_CONFIG, VOLATILITY_STATE):
            raise SchemaError(f"unknown volatility {self.volatility!r}")


class DependencyGroup:
    """Base class: a named set of mutually related settings."""

    #: filler groups (schema padding) share preference-dialog pages with
    #: other settings; hand-authored feature groups live on their own
    #: page/dialog, like real applications' dedicated editors.
    is_filler = False

    def __init__(self, name: str, member_names: list[str]) -> None:
        if len(member_names) != len(set(member_names)):
            raise SchemaError(f"group {name!r} has duplicate members")
        self.name = name
        self._members = tuple(member_names)

    def keys(self) -> frozenset[str]:
        """Member setting names (local, un-prefixed)."""
        return frozenset(self._members)

    # Behavioural hooks; implemented by archetypes.  ``app`` is a
    # SimulatedApplication — typed loosely to avoid an import cycle.

    def coherent_update(self, app: Any, rng: random.Random) -> None:
        """A user preference change updating the group consistently."""
        raise NotImplementedError

    def partial_update(self, app: Any, rng: random.Random) -> None:
        """A legal update touching only part of the group (if any)."""
        self.coherent_update(app, rng)

    def render(self, app: Any) -> list[tuple[str, Any]]:
        """Visible screen elements this group contributes."""
        return []


class GenericGroup(DependencyGroup):
    """Settings the application always writes together."""

    def coherent_update(self, app: Any, rng: random.Random) -> None:
        for name in self._members:
            app.user_set(name, app.spec(name).domain.perturb(rng, app.value(name)))

    def render(self, app: Any) -> list[tuple[str, Any]]:
        return [
            (f"{self.name}/{name}", app.value(name))
            for name in self._members
            if app.spec(name).visible
        ]


class LimiterListGroup(DependencyGroup):
    """A dominant limiter setting plus the item settings it governs.

    MS Word's recently-used list: "the number of Item settings should never
    exceed the value of Max Display"; reducing the limit deletes extra
    items.  Items churn frequently (every document open), the limiter
    rarely — the exact structure behind the paper's error #2.
    """

    def __init__(
        self,
        name: str,
        limiter: str,
        item_prefix: str,
        max_items: int,
        item_domain: ValueDomain = FILENAME,
    ) -> None:
        if max_items < 1:
            raise SchemaError("limiter list needs at least one item slot")
        self.limiter = limiter
        self.item_prefix = item_prefix
        self.max_items = max_items
        self.item_domain = item_domain
        items = [f"{item_prefix}{i}" for i in range(1, max_items + 1)]
        super().__init__(name, [limiter] + items)

    def item_name(self, index: int) -> str:
        return f"{self.item_prefix}{index}"

    def current_limit(self, app: Any) -> int:
        value = app.value(self.limiter)
        return int(value) if value is not None else self.max_items

    def current_items(self, app: Any) -> list[Any]:
        items = []
        for i in range(1, self.max_items + 1):
            value = app.value(self.item_name(i))
            if value is None:
                break
            items.append(value)
        return items

    def push_item(self, app: Any, value: Any) -> None:
        """MRU push: new head item, others shift down, honours the limit.

        This is *application* behaviour triggered by normal use (state
        volatility): the limiter is not rewritten.
        """
        limit = max(0, min(self.current_limit(app), self.max_items))
        items = [value] + [v for v in self.current_items(app) if v != value]
        items = items[:limit]
        for i, item in enumerate(items, start=1):
            app.app_set(self.item_name(i), item)
        for i in range(len(items) + 1, self.max_items + 1):
            app.app_delete(self.item_name(i))

    def set_limit(self, app: Any, new_limit: int) -> None:
        """Preference change: writes the limiter AND maintains the items.

        Like MS Word, the application rewrites the whole MRU block when
        the limit changes: surviving items are re-written, items beyond
        the new limit are deleted.  (Re-writing survivors is what makes
        the limiter/item correlation reach 1 — the paper recovered error
        #2 by lowering the threshold to 1 and widening the window.)
        """
        new_limit = max(0, min(new_limit, self.max_items))
        survivors = self.current_items(app)[:new_limit]
        app.user_set(self.limiter, new_limit)
        for i, item in enumerate(survivors, start=1):
            app.app_set(self.item_name(i), item)
        for i in range(max(new_limit, len(survivors)) + 1, self.max_items + 1):
            app.app_delete(self.item_name(i))

    def coherent_update(self, app: Any, rng: random.Random) -> None:
        # The limiter is the paper's "rarely-changing dominant setting":
        # ordinary preference activity does not resize the recent list
        # (that is precisely the rare deliberate act behind error #2), so
        # a random preference edit near this group just churns the list.
        # A lone mid-trace ``set_limit`` while the list is short would
        # leave limiter write-groups missing some item slots, capping the
        # limiter/item correlation below 1 and making the paper's tuned
        # recovery (threshold 1) seed-dependent.
        self.push_item(app, self.item_domain.sample(rng))

    def partial_update(self, app: Any, rng: random.Random) -> None:
        self.push_item(app, self.item_domain.sample(rng))

    def render(self, app: Any) -> list[tuple[str, Any]]:
        limit = max(0, self.current_limit(app))
        shown = tuple(self.current_items(app)[:limit])
        return [(f"{self.name}/list", shown)]


class EnablerParamsGroup(DependencyGroup):
    """A boolean enabler controlling the meaning of parameter settings.

    Evolution's ``mark_seen``/``mark_seen_timeout``; Acrobat's auto-complete
    family.  The feature's visible behaviour depends on the parameters only
    while enabled.
    """

    def __init__(
        self,
        name: str,
        enabler: str,
        params: list[str],
        visible: bool = True,
    ) -> None:
        if not params:
            raise SchemaError("enabler group needs at least one parameter")
        self.enabler = enabler
        self.params = tuple(params)
        self.visible = visible
        super().__init__(name, [enabler] + list(params))

    def enable(self, app: Any, rng: random.Random) -> None:
        """Turn the feature on and (re)configure its parameters together."""
        app.user_set(self.enabler, True)
        for param in self.params:
            app.user_set(
                param, app.spec(param).domain.perturb(rng, app.value(param))
            )

    def coherent_update(self, app: Any, rng: random.Random) -> None:
        if rng.random() < 0.7:
            self.enable(app, rng)
        else:
            # Disabling rewrites the whole family back to a consistent
            # "off" state, the way preference dialogs apply a page at once.
            app.user_set(self.enabler, False)
            for param in self.params:
                app.user_set(param, app.value(param))

    def partial_update(self, app: Any, rng: random.Random) -> None:
        """Enabler families are applied as a whole preference page.

        The paper's two undersized-cluster failures (errors #2 and #4) are
        the limiter-list and mode-list archetypes; its enabler families
        clustered correctly at the default threshold, which requires that
        ordinary traces not contain lone-enabler writes.  The dialog-apply
        behaviour modelled here produces exactly that.
        """
        self.coherent_update(app, rng)

    def render(self, app: Any) -> list[tuple[str, Any]]:
        if not self.visible:
            return []
        if bool(app.value(self.enabler)):
            behaviour = tuple(app.value(p) for p in self.params)
        else:
            behaviour = "disabled"
        return [(f"feature/{self.name}", behaviour)]


class ModeListGroup(DependencyGroup):
    """An ordered list setting naming companion entry settings.

    Explorer's "Open with" menu (error #4): one setting stores an ordered
    list of names of settings that store application commands.  The list
    changes even when the entries do not.
    """

    def __init__(
        self,
        name: str,
        list_key: str,
        entry_keys: list[str],
        entry_domain: ValueDomain = FILENAME,
    ) -> None:
        if not entry_keys:
            raise SchemaError("mode list group needs at least one entry")
        self.list_key = list_key
        self.entry_keys = tuple(entry_keys)
        self.entry_domain = entry_domain
        super().__init__(name, [list_key] + list(entry_keys))

    def coherent_update(self, app: Any, rng: random.Random) -> None:
        """Rewrite entries and the ordering list together."""
        order = list(self.entry_keys)
        rng.shuffle(order)
        cut = rng.randint(1, len(order))
        for entry in self.entry_keys:
            app.user_set(
                entry, app.spec(entry).domain.perturb(rng, app.value(entry))
            )
        app.user_set(self.list_key, [e.rsplit("/", 1)[-1] for e in order[:cut]])

    def partial_update(self, app: Any, rng: random.Random) -> None:
        """Reorder/trim the list without touching the entries."""
        current = app.value(self.list_key) or []
        universe = [e.rsplit("/", 1)[-1] for e in self.entry_keys]
        rng.shuffle(universe)
        cut = rng.randint(1, len(universe))
        new = universe[:cut]
        if new == current:
            new = list(reversed(new)) if len(new) > 1 else universe[: cut + 1]
        app.user_set(self.list_key, new)

    def render(self, app: Any) -> list[tuple[str, Any]]:
        order = app.value(self.list_key) or []
        suffix_to_entry = {e.rsplit("/", 1)[-1]: e for e in self.entry_keys}
        menu = tuple(
            app.value(suffix_to_entry[suffix])
            for suffix in order
            if suffix in suffix_to_entry and app.value(suffix_to_entry[suffix])
        )
        return [(f"menu/{self.name}", menu)]


class ConfigSchema:
    """All settings and dependency groups of one application."""

    def __init__(
        self, settings: list[SettingSpec], groups: list[DependencyGroup]
    ) -> None:
        self._specs: dict[str, SettingSpec] = {}
        for spec in settings:
            if spec.name in self._specs:
                raise SchemaError(f"duplicate setting {spec.name!r}")
            self._specs[spec.name] = spec
        claimed: set[str] = set()
        for group in groups:
            for key in group.keys():
                if key not in self._specs:
                    raise SchemaError(
                        f"group {group.name!r} references unknown setting {key!r}"
                    )
                if key in claimed:
                    raise SchemaError(
                        f"setting {key!r} belongs to more than one group"
                    )
                claimed.add(key)
        self.groups = list(groups)
        self._claimed = claimed

    @property
    def settings(self) -> list[SettingSpec]:
        return list(self._specs.values())

    def names(self) -> list[str]:
        return list(self._specs)

    def spec(self, name: str) -> SettingSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise SchemaError(f"unknown setting {name!r}") from None

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def group(self, name: str) -> DependencyGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise SchemaError(f"unknown group {name!r}")

    def independent_settings(self) -> list[str]:
        """Settings outside every dependency group."""
        return [name for name in self._specs if name not in self._claimed]

    def ground_truth_groups(self) -> list[frozenset[str]]:
        """Dependency groups as local-name key sets (for accuracy scoring)."""
        return [group.keys() for group in self.groups]

"""Simulated desktop applications.

One module per application in the paper's Table II.  Each application has a
configuration schema whose *dependency groups* are the ground truth for the
clustering accuracy evaluation, user-visible behaviour (``render()`` returns
a screenshot abstraction) and UI actions that update related settings
together the way the real applications do.
"""

from repro.apps.schema import (
    ConfigSchema,
    DependencyGroup,
    EnablerParamsGroup,
    GenericGroup,
    LimiterListGroup,
    ModeListGroup,
    SettingSpec,
    ValueDomain,
)
from repro.apps.base import SimulatedApplication, Screenshot
from repro.apps.catalog import APP_FACTORIES, create_app, app_names

__all__ = [
    "ConfigSchema",
    "DependencyGroup",
    "EnablerParamsGroup",
    "GenericGroup",
    "LimiterListGroup",
    "ModeListGroup",
    "SettingSpec",
    "ValueDomain",
    "SimulatedApplication",
    "Screenshot",
    "APP_FACTORIES",
    "create_app",
    "app_names",
]

"""MS Word simulation.

The paper's Fig. 1a application: ``Max Display`` limits how many
``Item N`` settings of the recently-opened-documents list are valid, and
Word maintains the relationship automatically.  Error #2 ("user loses the
list of recently accessed documents") lives here.
"""

from __future__ import annotations

from repro.apps.base import STORE_REGISTRY, SimulatedApplication
from repro.apps.build import mru_group, pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    PERCENT,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "MS Word"
TOTAL_KEYS = 143  # Table II
MRU_LIMITER = "Options/MaxDisplay"
MRU_ITEM_PREFIX = "RecentFiles/Item"
MRU_MAX_ITEMS = 9
MRU_GROUP = "RecentDocuments"


def _build_schema():
    mru_specs, mru = mru_group(
        name=MRU_GROUP,
        limiter=MRU_LIMITER,
        item_prefix=MRU_ITEM_PREFIX,
        max_items=MRU_MAX_ITEMS,
        default_limit=9,
    )
    settings = list(mru_specs)
    settings += [
        SettingSpec("Options/AutoSave", BOOL, default=True),
        SettingSpec(
            "Options/AutoSaveInterval",
            ValueDomain("int", lo=1, hi=60),
            default=10,
        ),
        SettingSpec("View/Ruler", BOOL, default=True, visible=True),
        SettingSpec("View/Zoom", PERCENT, default=100, visible=True),
    ]
    groups = [
        mru,
        EnablerParamsGroup(
            name="AutoSave",
            enabler="Options/AutoSave",
            params=["Options/AutoSaveInterval"],
        ),
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0x3057)


class MSWord(SimulatedApplication):
    """Word processor with the Fig. 1a recently-used-documents coupling."""

    trial_cost_seconds = 14.0
    pref_burst_prob = 0.10
    page_apply_prob = 0.05

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_REGISTRY,
            config_path="Microsoft\\Office\\Word",
            clock=clock,
        )
        self.register_action("set_max_display", self.set_max_display)

    def set_max_display(self, limit: int) -> None:
        """Preference change: Word trims extra Items itself (Fig. 1a)."""
        group = self.schema.group(MRU_GROUP)
        group.set_limit(self, int(limit))

    def derived_elements(self):
        # The File-menu recent list is the group's rendered list; expose a
        # user-facing summary element the error predicates read.
        group = self.schema.group(MRU_GROUP)
        limit = max(0, group.current_limit(self))
        shown = tuple(group.current_items(self)[:limit])
        return [("recent_documents_menu", shown)]


def create(clock: SimClock | None = None) -> MSWord:
    return MSWord(clock=clock)

"""Evolution Mail simulation.

The paper's Fig. 1c application: ``mark_seen_timeout`` only has meaning
while ``mark_seen`` is true.  Hosts errors #8 ("starts in offline mode
unexpectedly"), #9 ("does not mark read mail automatically") and #10
("does not start a reply at the top of an e-mail").

Evolution is also Table II's least accurately clustered application
(38.9%): its preference dialog applies several groups in the same second,
which the 1-second trace granularity merges into oversized clusters.  The
high ``pref_burst_prob`` reproduces that behaviour.
"""

from __future__ import annotations

from repro.apps.base import STORE_GCONF, SimulatedApplication
from repro.apps.build import pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    GenericGroup,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "Evolution Mail"
TOTAL_KEYS = 183  # Table II

START_OFFLINE = "shell/start_offline"
OFFLINE_SYNC = "shell/offline_sync"
MARK_SEEN = "mail/mark_seen"
MARK_SEEN_TIMEOUT = "mail/mark_seen_timeout"
REPLY_STYLE = "mail/reply_style"
REPLY_QUOTE = "mail/reply_quote"


def _build_schema():
    settings = [
        SettingSpec(START_OFFLINE, BOOL, default=False),
        SettingSpec(OFFLINE_SYNC, BOOL, default=True),
        SettingSpec(MARK_SEEN, BOOL, default=True),
        SettingSpec(
            MARK_SEEN_TIMEOUT,
            ValueDomain("int", lo=100, hi=5000),
            default=1500,
        ),
        SettingSpec(
            REPLY_STYLE,
            ValueDomain("enum", options=("top", "bottom", "inline")),
            default="top",
        ),
        SettingSpec(REPLY_QUOTE, BOOL, default=True),
        SettingSpec("mail/show_preview", BOOL, default=True, visible=True),
    ]
    groups = [
        EnablerParamsGroup(
            name="OfflineMode",
            enabler=START_OFFLINE,
            params=[OFFLINE_SYNC],
        ),
        EnablerParamsGroup(
            name="MarkSeen",
            enabler=MARK_SEEN,
            params=[MARK_SEEN_TIMEOUT],
        ),
        GenericGroup("ReplyStyle", [REPLY_STYLE, REPLY_QUOTE]),
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0xE701)


class EvolutionMail(SimulatedApplication):
    """E-mail client with the Fig. 1c mark-seen coupling."""

    trial_cost_seconds = 13.0
    pref_burst_prob = 0.60
    page_apply_prob = 0.92

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_GCONF,
            config_path="/apps/evolution",
            clock=clock,
        )
        self.register_action("read_email", self.read_email)
        self.register_action("compose_reply", self.compose_reply)

    def read_email(self, message: str = "inbox/1") -> None:
        """Open a message and leave it open past the mark-seen timeout."""
        self._session["reading"] = message

    def compose_reply(self) -> None:
        self._session["composing_reply"] = True

    def derived_elements(self):
        elements = [
            (
                "connection_mode",
                "offline" if self.value(START_OFFLINE) else "online",
            )
        ]
        if "reading" in self._session:
            timeout = self.value(MARK_SEEN_TIMEOUT)
            auto = (
                bool(self.value(MARK_SEEN))
                and isinstance(timeout, int)
                and timeout > 0
            )
            elements.append(
                ("mark_read", "automatic" if auto else "manual-only")
            )
        if self._session.get("composing_reply"):
            elements.append(("reply_cursor", self.value(REPLY_STYLE)))
        return elements


def create(clock: SimClock | None = None) -> EvolutionMail:
    return EvolutionMail(clock=clock)

"""Chrome Browser simulation.

A file-backed application: preferences live in a JSON file the logger
diffs across flushes.  Hosts errors #13 ("bookmark bar is missing") and
#14 ("home button is missing from the tool bar").
"""

from __future__ import annotations

from repro.apps.base import STORE_FILE, SimulatedApplication
from repro.apps.build import pad_schema
from repro.apps.schema import (
    BOOL,
    EnablerParamsGroup,
    SettingSpec,
    ValueDomain,
)
from repro.common.clock import SimClock

APP_NAME = "Chrome Browser"
TOTAL_KEYS = 35  # Table II
CONFIG_PATH = "/home/user/.config/google-chrome/Preferences"

BOOKMARK_BAR = "bookmark_bar/show_on_all_tabs"
HOME_BUTTON = "browser/show_home_button"
HOMEPAGE_IS_NEWTAB = "homepage/is_newtabpage"
HOMEPAGE_URL = "homepage/url"


def _build_schema():
    settings = [
        SettingSpec(BOOKMARK_BAR, BOOL, default=True),
        SettingSpec(HOME_BUTTON, BOOL, default=True),
        SettingSpec(HOMEPAGE_IS_NEWTAB, BOOL, default=True),
        SettingSpec(
            HOMEPAGE_URL,
            ValueDomain(
                "string",
                pool=("chrome://newtab", "news.site", "mail.site", "wiki.site"),
            ),
            default="chrome://newtab",
        ),
        SettingSpec(
            "profile/default_zoom",
            ValueDomain("float", lo=0.5, hi=3.0),
            default=1.0,
            visible=True,
        ),
    ]
    groups = [
        EnablerParamsGroup(
            name="Homepage",
            enabler=HOMEPAGE_IS_NEWTAB,
            params=[HOMEPAGE_URL],
        ),
    ]
    return pad_schema(settings, groups, TOTAL_KEYS, seed=0xC407)


class ChromeBrowser(SimulatedApplication):
    """Web browser storing its preferences in a JSON file."""

    trial_cost_seconds = 8.0
    pref_burst_prob = 0.10
    page_apply_prob = 0.3

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(
            name=APP_NAME,
            schema=_build_schema(),
            store_kind=STORE_FILE,
            config_path=CONFIG_PATH,
            clock=clock,
            file_format="json",
        )
        self.register_action("browse", self.browse)

    def browse(self, url: str = "news.site") -> None:
        self._session["url"] = url

    def derived_elements(self):
        elements = [
            ("bookmark_bar", "shown" if self.value(BOOKMARK_BAR) else "missing"),
            ("home_button", "shown" if self.value(HOME_BUTTON) else "missing"),
        ]
        if "url" in self._session:
            elements.append(("page", self._session["url"]))
        return elements


def create(clock: SimClock | None = None) -> ChromeBrowser:
    return ChromeBrowser(clock=clock)

"""Trace rewriting: inject configuration errors into a recorded TTKV.

"We simulate configuration errors by injecting a write into the trace at
the point in time at which we want the error to occur, that changes the
offending setting to the erroneous value.  If the configuration error is
caused by presence or absence of the offending setting, we insert or
delete the setting in the trace."  (§VI-B)

TTKV histories are append-only and time-ordered, so injection rebuilds the
store from the merged event stream.  Modifications of the offending keys
*after* the injection point are dropped: the error persisted until the
user noticed it — a later legitimate rewrite would have cured it, which is
not the scenario being evaluated.  Read counters are carried over.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.apps.base import SimulatedApplication
from repro.exceptions import InjectionError
from repro.ttkv.store import DELETED, MISSING, TTKV


def inject_events(
    store: TTKV,
    new_events: Iterable[tuple[float, str, Any]],
    drop_after: dict[str, float] | None = None,
) -> TTKV:
    """Rebuild ``store`` with ``new_events`` merged into its history.

    ``drop_after`` maps keys to cut-off times: recorded modifications of
    those keys strictly after their cut-off are removed.  Values of
    :data:`DELETED` in events record deletions.
    """
    drop_after = drop_after or {}
    merged: list[tuple[float, str, Any]] = []
    for timestamp, key, value in store.write_events():
        cutoff = drop_after.get(key)
        if cutoff is not None and timestamp > cutoff:
            continue
        merged.append((timestamp, key, value))
    merged.extend(new_events)
    rebuilt = TTKV.from_events(merged)
    # Preserve read counters: clustering ignores them but Table I's
    # statistics and the sort's notion of "modification" vs "read" don't.
    for key in store.keys():
        reads = store.record_for(key).reads
        if reads:
            rebuilt.record_reads(key, reads)
    return rebuilt


def rebuild_with_error(
    store: TTKV,
    assignments: dict[str, Any],
    at_time: float,
    seed_events: Iterable[tuple[float, str, Any]] = (),
) -> TTKV:
    """Inject an error (canonical-key ``assignments``) at ``at_time``.

    ``seed_events`` are optional earlier good-value writes guaranteeing
    the offending keys have a recorded history (the paper's precondition:
    "any configuration key that is misconfigured must have a modification
    history on a particular system").
    """
    if not assignments:
        raise InjectionError("an error needs at least one offending setting")
    try:
        start, _end = store.span()
    except Exception as exc:
        raise InjectionError("cannot inject into an empty trace") from exc
    if at_time < start:
        raise InjectionError(
            f"injection time {at_time} precedes the trace start {start}"
        )
    events = list(seed_events)
    events.extend(
        (at_time, key, value) for key, value in assignments.items()
    )
    drop_after = {key: at_time for key in assignments}
    return inject_events(store, events, drop_after=drop_after)


def sync_app_store(app: SimulatedApplication, store: TTKV) -> None:
    """Silently set the app's live configuration to the TTKV's final state.

    Used after injection so the running application actually exhibits the
    error.  Only this app's keys are touched; nothing is logged.
    """
    prefix = app.key_prefix
    for canonical in store.keys():
        if not canonical.startswith(prefix):
            continue
        value = store.current_value(canonical)
        store_key = app.store_key(app.setting_name(canonical))
        if value is DELETED or value is MISSING:
            # Direct, observer-silent removal.
            app.store._data.pop(store_key, None)
        else:
            app.store.load_dict({store_key: value}, notify=False)

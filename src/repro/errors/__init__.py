"""Configuration-error scenarios.

``injection`` rewrites a recorded trace to contain a configuration error
at a chosen point in time (plus optional spurious fix attempts), exactly
as §VI-B of the paper does; ``cases`` defines the 16 real-world errors of
Table III against the simulated applications; ``scenario`` assembles a
generated trace and an error case into a ready-to-repair environment.
"""

from repro.errors.injection import (
    inject_events,
    rebuild_with_error,
    sync_app_store,
)
from repro.errors.cases import ERROR_CASES, ErrorCase, case_by_id
from repro.errors.scenario import ErrorScenario, prepare_scenario

__all__ = [
    "inject_events",
    "rebuild_with_error",
    "sync_app_store",
    "ERROR_CASES",
    "ErrorCase",
    "case_by_id",
    "ErrorScenario",
    "prepare_scenario",
]

"""Scenario assembly: a generated trace plus one Table III error case.

``prepare_scenario`` reproduces §VI-B's experimental setup:

1. take a generated trace for the case's machine profile;
2. guarantee the offending settings have a pre-error modification history
   (the paper's traces guarantee this by case selection; the synthetic
   equivalent seeds coherent good-value writes when the random workload
   happened not to touch a key);
3. inject the erroneous values ``days_before_end`` days before the end of
   the trace (14 in the paper), dropping later legitimate writes of those
   keys so the error persists;
4. optionally add spurious wrong-value writes after the error (the user's
   failed fix attempts, Fig. 2b);
5. sync the application's live store to the trace's final state so the
   symptom actually shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.apps.base import SimulatedApplication
from repro.common.format import SECONDS_PER_DAY, quantize_timestamp
from repro.common.hashing import stable_hash
from repro.core.pipeline import DEFAULT_CORRELATION_THRESHOLD, DEFAULT_WINDOW
from repro.errors.cases import ErrorCase
from repro.errors.injection import inject_events, sync_app_store
from repro.exceptions import InjectionError
from repro.repair.trial import Trial
from repro.ttkv.store import TTKV
from repro.workload.tracegen import GeneratedTrace


@dataclass
class ErrorScenario:
    """A ready-to-repair environment for one error case."""

    case: ErrorCase
    app: SimulatedApplication
    ttkv: TTKV
    injection_time: float
    end_time: float
    trial: Trial

    @property
    def window(self) -> float:
        """Effective clustering window for this case (tuned where needed)."""
        return self.case.tuned_window or DEFAULT_WINDOW

    @property
    def correlation_threshold(self) -> float:
        return self.case.tuned_threshold or DEFAULT_CORRELATION_THRESHOLD

    def is_fixed(self, screenshot) -> bool:
        return self.case.fixed(screenshot)


def _related_group_keys(app: SimulatedApplication, local_key: str) -> frozenset[str]:
    """The dependency group containing ``local_key`` (or the key alone)."""
    for group in app.schema.groups:
        if local_key in group.keys():
            return group.keys()
    return frozenset((local_key,))


def _seed_events(
    app: SimulatedApplication,
    store: TTKV,
    offending_locals: list[str],
    injection_time: float,
    precision: float,
    seed: int | None = None,
) -> list[tuple[float, str, Any]]:
    """Good-value writes for offending-group keys lacking history.

    Each seeding round co-writes the whole group inside one quantised
    second, so the clustering pipeline sees the same signal a real
    preference change would have produced.  Values are the keys' current
    good values (the schema defaults the live app still holds).
    """
    groups_to_seed: list[frozenset[str]] = []
    seen: set[frozenset[str]] = set()
    for local in offending_locals:
        group_keys = _related_group_keys(app, local)
        if group_keys in seen:
            continue
        seen.add(group_keys)
        missing = any(
            app.canonical_key(member) not in store
            or store.record_for(app.canonical_key(member)).modifications == 0
            for member in group_keys
        )
        if missing:
            groups_to_seed.append(group_keys)
    if not groups_to_seed:
        return []

    # Seed the *whole* group coherently: a lone write of one member would
    # itself destroy the always-modified-together signal the clustering
    # relies on.  Values are the keys' historical values at the seed time
    # (falling back to defaults / sampled values for unborn keys).
    events: list[tuple[float, str, Any]] = []
    for fraction in (0.25, 0.5, 0.75):
        base = quantize_timestamp(injection_time * fraction, precision)
        for group_keys in groups_to_seed:
            for offset, member in enumerate(sorted(group_keys)):
                canonical = app.canonical_key(member)
                value = None
                if canonical in store:
                    from repro.ttkv.store import DELETED, MISSING

                    historical = store.value_at(canonical, base)
                    if historical is not MISSING and historical is not DELETED:
                        value = historical
                if value is None:
                    value = app.spec(member).default
                if value is None:
                    # Sampling falls back to a per-key RNG so repeated
                    # preparations agree; when the caller provides a
                    # scenario seed it participates in the derivation so
                    # distinct scenarios draw distinct values (and a
                    # fixed seed stays byte-reproducible).
                    token = (
                        member if seed is None else f"{seed}:{member}"
                    )
                    value = app.spec(member).domain.sample(
                        random.Random(stable_hash(token, mask=0xFFFF))
                    )
                events.append((base + offset * 0.01, canonical, value))
    return events


def member_canonical(app: SimulatedApplication, local: str) -> str:
    return app.canonical_key(local)


def prepare_scenario(
    trace: GeneratedTrace,
    case: ErrorCase,
    days_before_end: float = 14.0,
    spurious_writes: int = 0,
    precision: float = 1.0,
    seed: int | None = None,
) -> ErrorScenario:
    """Assemble the repair environment for ``case`` on ``trace``.

    ``days_before_end`` positions the injection (the paper uses 14);
    ``spurious_writes`` (0–2) adds the user's failed fix attempts from the
    case's ``spurious_options``.  ``seed`` scopes the (rare) sampled
    seed-event values to the caller's scenario so every random choice in
    an assembled scenario derives from one configured seed; ``None``
    keeps the legacy per-key derivation byte-for-byte.
    """
    if case.app_name not in trace.apps:
        raise InjectionError(
            f"trace {trace.profile.name!r} does not run {case.app_name!r}"
        )
    if spurious_writes > len(case.spurious_options):
        raise InjectionError(
            f"case #{case.case_id} defines only "
            f"{len(case.spurious_options)} spurious options"
        )
    app = trace.apps[case.app_name]
    end_time = trace.end_time
    injection_time = quantize_timestamp(
        max(1.0, end_time - days_before_end * SECONDS_PER_DAY), precision
    )

    offending_locals = list(case.injection)
    canonical_assignments = {
        app.canonical_key(local): value for local, value in case.injection.items()
    }

    events: list[tuple[float, str, Any]] = _seed_events(
        app, trace.ttkv, offending_locals, injection_time, precision, seed
    )

    # The application worked until the error occurred: write the case's
    # known-good values shortly before the injection.  This is the state
    # the successful rollback restores.
    good_time = quantize_timestamp(max(0.0, injection_time - 120.0), precision)
    good_canonical = {
        app.canonical_key(local): value
        for local, value in case.good_values.items()
    }
    events.extend(
        (good_time + index * 0.01, key, value)
        for index, (key, value) in enumerate(good_canonical.items())
    )

    events.extend(
        (injection_time, key, value)
        for key, value in canonical_assignments.items()
    )
    for index in range(spurious_writes):
        at = quantize_timestamp(
            injection_time + (index + 1) * 6 * 3600, precision
        )
        if at >= end_time:
            at = quantize_timestamp(end_time - (spurious_writes - index), precision)
        for local, value in case.spurious_options[index].items():
            events.append((at, app.canonical_key(local), value))

    # Keep both the offending keys and their good-value companions stable
    # after the error: the user stopped (successfully) touching the broken
    # feature, and a later legitimate rewrite would have cured the error.
    drop_after = {key: injection_time for key in canonical_assignments}
    for key in good_canonical:
        drop_after.setdefault(key, injection_time)
    ttkv = inject_events(trace.ttkv, events, drop_after=drop_after)
    sync_app_store(app, ttkv)

    trial = Trial.record(case.app_name, list(case.trial_actions))
    return ErrorScenario(
        case=case,
        app=app,
        ttkv=ttkv,
        injection_time=injection_time,
        end_time=end_time,
        trial=trial,
    )

"""The 16 real-world configuration errors of Table III.

Each case names its trace (Table I machine), application, offending
settings with their erroneous values, the user-recorded trial that makes
the symptom visible, and the predicates deciding whether a screenshot
shows the symptom or the fix.  ``multi_key`` marks the five errors that
require rolling back more than one setting together — the ones
Ocasta-NoClust cannot fix (Table IV).

Cases #2 and #4 additionally carry tuned clustering parameters: with the
defaults (window 1 s, threshold 2) their offending settings split across
clusters, exactly as §VI-A(b) reports; the tuned values are the ones the
paper used to fix them (threshold 1, and window 30 s for #2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps import acrobat, chrome, eog, evolution, explorer
from repro.apps import gnome_edit, iexplore, mspaint, outlook, wmp, word
from repro.apps.base import Screenshot
from repro.ttkv.store import DELETED

Predicate = Callable[[Screenshot], bool]
Action = tuple[str, dict[str, Any]]


@dataclass(frozen=True)
class ErrorCase:
    """One row of Table III, executable."""

    case_id: int
    trace_name: str
    app_name: str
    logger: str
    description: str
    #: local setting name -> erroneous value (or DELETED)
    injection: dict[str, Any]
    #: the trial: UI actions that make the symptom visible
    trial_actions: tuple[Action, ...]
    #: screenshot shows a fixed application
    fixed: Predicate
    #: known-good values for the offending settings and their companions;
    #: the scenario writes these shortly before the injection, modelling
    #: the paper's precondition that the application worked until the
    #: error occurred
    good_values: dict[str, Any] = field(default_factory=dict)
    #: the five Table IV errors Ocasta-NoClust fails on
    multi_key: bool = False
    #: tuned parameters for the two undersized-cluster cases (#2, #4)
    tuned_window: float | None = None
    tuned_threshold: float | None = None
    #: up to two "user tried to fix it" wrong-value variants (Fig. 2b)
    spurious_options: tuple[dict[str, Any], ...] = field(default=())

    def symptomatic(self, shot: Screenshot) -> bool:
        return not self.fixed(shot)


def _element_is(name: str, expected: Any) -> Predicate:
    def check(shot: Screenshot) -> bool:
        return shot.has_element(name) and shot.element(name) == expected

    return check


def _element_not(name: str, rejected: Any) -> Predicate:
    def check(shot: Screenshot) -> bool:
        return shot.has_element(name) and shot.element(name) != rejected

    return check


def _word_good_values() -> dict[str, Any]:
    # A full recently-used list: the good state co-writes the limiter with
    # every item slot, which is what lets the tuned clustering (threshold
    # 1) pull the dominant setting into the items' cluster, as §VI-A(b)
    # describes for this error.
    docs = (
        "report.doc", "notes.txt", "draft.doc", "thesis.pdf", "budget.xls",
        "letter.doc", "slides.ppt", "memo.txt", "readme.md",
    )
    good: dict[str, Any] = {word.MRU_LIMITER: 9}
    for i, doc in enumerate(docs[: word.MRU_MAX_ITEMS], start=1):
        good[f"{word.MRU_ITEM_PREFIX}{i}"] = doc
    return good


def _word_injection() -> dict[str, Any]:
    # The Fig. 1a scenario: MaxDisplay reduced to 0, Word deletes every
    # Item setting; recovering needs the old limit AND the deleted items.
    bad: dict[str, Any] = {word.MRU_LIMITER: 0}
    for i in range(1, word.MRU_MAX_ITEMS + 1):
        bad[f"{word.MRU_ITEM_PREFIX}{i}"] = DELETED
    return bad


ERROR_CASES: tuple[ErrorCase, ...] = (
    ErrorCase(
        case_id=1,
        trace_name="Windows 7",
        app_name="MS Outlook",
        logger="Registry",
        description="User is unable to use Navigation Panel.",
        injection={outlook.NAV_ENABLER: False},
        trial_actions=(("launch", {}), ("click_nav_pane", {})),
        fixed=_element_not("navigation_pane", "unusable"),
        good_values={
            outlook.NAV_ENABLER: True,
            outlook.NAV_MODULES: ["Mail", "Calendar"],
            outlook.NAV_WIDTH: 200,
        },
        spurious_options=(
            {outlook.NAV_WIDTH: 83},
            {outlook.NAV_MODULES: ["Mail"]},
        ),
    ),
    ErrorCase(
        case_id=2,
        trace_name="Windows 7",
        app_name="MS Word",
        logger="Registry",
        description="User loses the list of recently accessed documents.",
        injection=_word_injection(),
        trial_actions=(("launch", {}),),
        fixed=_element_not("recent_documents_menu", ()),
        good_values=_word_good_values(),
        multi_key=True,
        tuned_window=30.0,
        tuned_threshold=1.0,
        spurious_options=(
            {word.MRU_LIMITER: 1},
            {word.MRU_LIMITER: 3},
        ),
    ),
    ErrorCase(
        case_id=3,
        trace_name="Windows 7",
        app_name="Internet Explorer",
        logger="Registry",
        description="Dialog to disable add-ons always pops up.",
        injection={iexplore.ADDON_DIALOG: True},
        trial_actions=(("launch", {}), ("browse", {"url": "news.site"})),
        fixed=_element_is("addon_dialog", "hidden"),
        good_values={iexplore.ADDON_DIALOG: False},
        spurious_options=(
            {iexplore.ADDON_THRESHOLD: 11.5},
            {iexplore.ADDON_THRESHOLD: 12.25},
        ),
    ),
    ErrorCase(
        case_id=4,
        trace_name="Windows Vista",
        app_name="Explorer",
        logger="Registry",
        description=(
            '"Open with" menu does not show installed applications that '
            "can open .flv file."
        ),
        injection={
            explorer.FLV_MRU_LIST: [],
            explorer.FLV_APP_A: "",
            explorer.FLV_APP_B: "",
            explorer.FLV_APP_C: "",
        },
        trial_actions=(
            ("launch", {}),
            ("open_context_menu", {"doc": "video.flv"}),
        ),
        fixed=_element_not("open_with_flv", "no applications"),
        good_values={
            explorer.FLV_MRU_LIST: ["a", "b"],
            explorer.FLV_APP_A: "wmplayer.exe",
            explorer.FLV_APP_B: "vlc.exe",
            explorer.FLV_APP_C: "mplayer.exe",
        },
        multi_key=True,
        tuned_threshold=1.0,
        spurious_options=(
            {explorer.FLV_MRU_LIST: ["c"]},
            {explorer.FLV_APP_A: "openwith.exe"},
        ),
    ),
    ErrorCase(
        case_id=5,
        trace_name="Windows XP",
        app_name="Windows Media Player",
        logger="Registry",
        description="Caption is not shown while playing video.",
        injection={wmp.CAPTIONS_ENABLED: False},
        trial_actions=(("launch", {}), ("play_video", {"doc": "clip.avi"})),
        fixed=_element_not("captions", "no captions"),
        good_values={
            wmp.CAPTIONS_ENABLED: True,
            wmp.CAPTIONS_LANG: "en",
            wmp.CAPTIONS_SIZE: 14,
            wmp.CAPTIONS_POS: "bottom",
        },
        spurious_options=(
            {wmp.CAPTIONS_LANG: "fi"},
            {wmp.CAPTIONS_SIZE: 33},
        ),
    ),
    ErrorCase(
        case_id=6,
        trace_name="Windows XP",
        app_name="MS Paint",
        logger="Registry",
        description=(
            "Text tool bar does not pop up automatically when entering text."
        ),
        injection={
            mspaint.TOOLBAR_ENABLED: False,
            mspaint.TOOLBAR_MODE: "manual",
        },
        trial_actions=(("launch", {}), ("enter_text", {})),
        fixed=_element_is("text_toolbar", "pops-up"),
        good_values={
            mspaint.TOOLBAR_ENABLED: True,
            mspaint.TOOLBAR_MODE: "auto",
            mspaint.TOOLBAR_X: 480,
            mspaint.TOOLBAR_Y: 120,
        },
        multi_key=True,
        spurious_options=(
            {mspaint.TOOLBAR_X: 1601, mspaint.TOOLBAR_Y: 1201},
            {mspaint.TOOLBAR_X: 1602},
        ),
    ),
    ErrorCase(
        case_id=7,
        trace_name="Windows XP",
        app_name="Explorer",
        logger="Registry",
        description="Image files are always opened in a maximized window.",
        injection={
            explorer.IMAGE_WINDOW_STATE: "maximized",
            explorer.IMAGE_WINDOW_POS: "",
        },
        trial_actions=(("launch", {}), ("open_image", {"doc": "photo.png"})),
        fixed=_element_is("image_window", "normal"),
        good_values={
            explorer.IMAGE_WINDOW_STATE: "normal",
            explorer.IMAGE_WINDOW_POS: "100,100",
        },
        multi_key=True,
        spurious_options=(
            {explorer.IMAGE_WINDOW_POS: "-5,-5"},
            {explorer.IMAGE_WINDOW_POS: "-7,-7"},
        ),
    ),
    ErrorCase(
        case_id=8,
        trace_name="Linux-1",
        app_name="Evolution Mail",
        logger="GConf",
        description="Evolution Mail starts in offline mode unexpectedly.",
        injection={evolution.START_OFFLINE: True},
        trial_actions=(("launch", {}),),
        fixed=_element_is("connection_mode", "online"),
        good_values={evolution.START_OFFLINE: False, evolution.OFFLINE_SYNC: True},
        spurious_options=(
            {evolution.OFFLINE_SYNC: False},
            {evolution.OFFLINE_SYNC: True},
        ),
    ),
    ErrorCase(
        case_id=9,
        trace_name="Linux-1",
        app_name="Evolution Mail",
        logger="GConf",
        description="Evolution Mail does not mark read mail automatically.",
        injection={
            evolution.MARK_SEEN: False,
            evolution.MARK_SEEN_TIMEOUT: 0,
        },
        trial_actions=(("launch", {}), ("read_email", {"message": "inbox/1"})),
        fixed=_element_is("mark_read", "automatic"),
        good_values={evolution.MARK_SEEN: True, evolution.MARK_SEEN_TIMEOUT: 1500},
        multi_key=True,
        spurious_options=(
            {evolution.MARK_SEEN_TIMEOUT: 51},
            {evolution.MARK_SEEN_TIMEOUT: 99},
        ),
    ),
    ErrorCase(
        case_id=10,
        trace_name="Linux-1",
        app_name="Evolution Mail",
        logger="GConf",
        description=(
            "Evolution Mail does not start a reply at the top of an e-mail."
        ),
        injection={evolution.REPLY_STYLE: "bottom"},
        trial_actions=(("launch", {}), ("compose_reply", {})),
        fixed=_element_is("reply_cursor", "top"),
        good_values={evolution.REPLY_STYLE: "top", evolution.REPLY_QUOTE: True},
        spurious_options=(
            {evolution.REPLY_STYLE: "inline"},
            {evolution.REPLY_QUOTE: False},
        ),
    ),
    ErrorCase(
        case_id=11,
        trace_name="Linux-1",
        app_name="Eye of GNOME",
        logger="GConf",
        description="User is unable to print image files.",
        injection={eog.PRINT_BACKEND: "gnomeprint"},
        trial_actions=(
            ("launch", {}),
            ("open_document", {"doc": "photo.png"}),
            ("print_image", {}),
        ),
        fixed=_element_is("print_result", "printed"),
        good_values={eog.PRINT_BACKEND: "cups"},
        spurious_options=(
            {eog.PRINT_BACKEND: "gnomeprint2"},
            {eog.PRINT_BACKEND: "parallel0"},
        ),
    ),
    ErrorCase(
        case_id=12,
        trace_name="Linux-1",
        app_name="GNOME Edit",
        logger="GConf",
        description="User is unable to save any document.",
        injection={gnome_edit.BACKUP_SCHEME: "gvfs-obsolete"},
        trial_actions=(
            ("launch", {}),
            ("open_document", {"doc": "notes.txt"}),
            ("save_document", {}),
        ),
        fixed=_element_is("save_result", "saved"),
        good_values={gnome_edit.BACKUP_SCHEME: "local"},
        spurious_options=(
            {gnome_edit.BACKUP_SCHEME: "gvfs"},
            {gnome_edit.BACKUP_SCHEME: "remote"},
        ),
    ),
    ErrorCase(
        case_id=13,
        trace_name="Linux-2",
        app_name="Chrome Browser",
        logger="File",
        description="Bookmark bar is missing.",
        injection={chrome.BOOKMARK_BAR: False},
        trial_actions=(("launch", {}), ("browse", {"url": "news.site"})),
        fixed=_element_is("bookmark_bar", "shown"),
        good_values={chrome.BOOKMARK_BAR: True},
        spurious_options=(
            {chrome.HOMEPAGE_URL: "help.site/missing-bookmark-bar"},
            {chrome.HOMEPAGE_URL: "forum.site/chrome-bookmarks"},
        ),
    ),
    ErrorCase(
        case_id=14,
        trace_name="Linux-2",
        app_name="Chrome Browser",
        logger="File",
        description="Home button is missing from the tool bar.",
        injection={chrome.HOME_BUTTON: False},
        trial_actions=(("launch", {}), ("browse", {"url": "news.site"})),
        fixed=_element_is("home_button", "shown"),
        good_values={chrome.HOME_BUTTON: True},
        spurious_options=(
            {chrome.HOMEPAGE_URL: "help.site/missing-home-button"},
            {chrome.HOMEPAGE_URL: "forum.site/chrome-toolbar"},
        ),
    ),
    ErrorCase(
        case_id=15,
        trace_name="Linux-3",
        app_name="Acrobat Reader",
        logger="File",
        description="Menu bar disappears for certain PDF document.",
        injection={acrobat.MENU_HIDDEN_DOCS: ["thesis.pdf"]},
        trial_actions=(
            ("launch", {}),
            ("open_document", {"doc": "thesis.pdf"}),
        ),
        fixed=_element_is("menu_bar", "shown"),
        good_values={acrobat.MENU_HIDDEN_DOCS: []},
        spurious_options=(
            {acrobat.MENU_HIDDEN_DOCS: ["thesis.pdf", "paper.pdf"]},
            {acrobat.MENU_HIDDEN_DOCS: ["thesis.pdf", "form.pdf"]},
        ),
    ),
    ErrorCase(
        case_id=16,
        trace_name="Linux-4",
        app_name="Acrobat Reader",
        logger="File",
        description="Find box is missing from the tool bar.",
        injection={acrobat.FIND_BOX: False},
        trial_actions=(("launch", {}),),
        fixed=_element_is("find_box", "shown"),
        good_values={acrobat.FIND_BOX: True},
        spurious_options=(
            {"AVGeneral/Zoom": 5.55},
            {"AVGeneral/Zoom": 7.77},
        ),
    ),
)


def case_by_id(case_id: int) -> ErrorCase:
    for case in ERROR_CASES:
        if case.case_id == case_id:
            return case
    raise ValueError(f"no error case #{case_id}; valid ids are 1..16")

"""Three-layer scenario configuration: YAML → pydantic → env overrides.

A *scenario* declaratively composes a machine population (heterogeneous
Table-I profiles, join/leave schedules), one hostile workload regime and
its fault injections into a runnable fleet experiment.  Configuration
follows the three-layer idiom:

1. **YAML file** — the committed, reviewable base (``scenarios/*.yaml``);
2. **pydantic validation** — every field is type-checked and
   range-checked at load time; invalid configs fail with field-level
   messages (``population.0.machines: Input should be ...``) instead of
   misbehaving mid-run;
3. **environment overrides** — variables prefixed ``REPRO__`` override
   YAML values, nesting on double underscores:
   ``REPRO__FLEET__MAX_LAG=50`` beats ``fleet: {max_lag: ...}`` beats
   the model default.  List entries are indexed by position
   (``REPRO__POPULATION__0__MACHINES=3``), which is how the quick-mode
   benchmarks shrink the committed scenarios without forking them.

Every random decision a scenario makes derives from its ``seed`` (via
:func:`repro.common.hashing.stable_hash`, never the salted builtin
``hash``), so two loads of the same YAML build byte-identical machine
streams — pinned by ``tests/scenarios/test_determinism.py``.

pydantic and PyYAML are **soft dependencies**
(``pip install repro-ocasta[scenarios]``); importing this module without
them raises ``ImportError`` — go through :mod:`repro.scenarios` (lazy
exports) for a guarded error message.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Literal, Mapping, Union

import yaml
from pydantic import (
    BaseModel,
    ConfigDict,
    Field,
    ValidationError,
    field_validator,
    model_validator,
)

from repro.workload.machines import profile_by_name

#: Environment-variable prefix of the override layer; path segments are
#: separated by double underscores (``REPRO__FLEET__MAX_LAG``).
ENV_PREFIX = "REPRO__"


class ScenarioConfigError(ValueError):
    """A scenario config failed to load or validate.

    ``str(error)`` carries one ``path.to.field: message`` line per
    problem, so CI logs point at the offending YAML key directly.
    """


def _validation_message(source: str, error: ValidationError) -> str:
    lines = [f"{source}: {error.error_count()} invalid field(s)"]
    for item in error.errors():
        path = ".".join(str(part) for part in item["loc"]) or "<root>"
        lines.append(f"  {path}: {item['msg']}")
    return "\n".join(lines)


# -- sections -----------------------------------------------------------------


class PipelineSection(BaseModel):
    """Per-machine clustering parameters (mirrors ``ShardedPipeline``)."""

    model_config = ConfigDict(extra="forbid")

    window: float = Field(default=1.0, gt=0)
    correlation_threshold: float = Field(default=2.0, gt=0)
    linkage: Literal["complete", "single", "average"] = "complete"
    kernel: Literal["auto", "numpy", "python"] = "auto"
    journal_backend: Literal["auto", "list", "columnar"] = "auto"


class FleetSection(BaseModel):
    """Fleet-driver parameters (rounds, backpressure)."""

    model_config = ConfigDict(extra="forbid")

    rounds: int = Field(default=6, ge=1)
    max_lag: int | None = Field(default=None, ge=1)


class PopulationGroup(BaseModel):
    """One homogeneous slice of the machine population.

    ``activity_scale`` multiplies the profile's activity volume;
    ``activity_skew`` applies a Zipf-style per-machine decay on top
    (machine ``rank`` in the group runs at
    ``scale * (rank + 1) ** -skew``), so one group models a few hot
    machines and a long quiet tail.  ``join_round``/``leave_round``
    schedule fleet membership: the machine's feed starts at
    ``join_round`` and it is detached after ``leave_round`` completes.
    """

    model_config = ConfigDict(extra="forbid")

    profile: str
    machines: int = Field(default=1, ge=1)
    days: float | None = Field(default=None, gt=0)
    activity_scale: float = Field(default=1.0, gt=0, le=10)
    activity_skew: float = Field(default=0.0, ge=0, le=4)
    join_round: int = Field(default=1, ge=1)
    leave_round: int | None = Field(default=None, ge=1)

    @field_validator("profile")
    @classmethod
    def _known_profile(cls, value: str) -> str:
        profile_by_name(value)  # raises ValueError with the known names
        return value

    @model_validator(mode="after")
    def _leave_after_join(self) -> "PopulationGroup":
        if self.leave_round is not None and self.leave_round <= self.join_round:
            raise ValueError(
                f"leave_round {self.leave_round} must be after "
                f"join_round {self.join_round}"
            )
        return self


class FlashCrowdRegime(BaseModel):
    """A rollout makes many machines rewrite the same app-config keys.

    Every covered machine running ``app`` co-writes the same ``keys``
    settings inside one ``window_seconds`` burst per wave — the
    fleet-level evidence for those keys spikes across the whole
    population at once.
    """

    model_config = ConfigDict(extra="forbid")

    kind: Literal["flash_crowd"]
    app: str
    keys: int = Field(default=8, ge=1)
    waves: int = Field(default=1, ge=1)
    start_fraction: float = Field(default=0.6, gt=0, lt=1)
    window_seconds: float = Field(default=30.0, gt=0)
    coverage: float = Field(default=1.0, gt=0, le=1)


class ChurnStormRegime(BaseModel):
    """Malware-like scatter writes across a registry-scale key pool.

    ``keys`` synthetic keys (default 10⁴; go to 10⁵ for the full
    registry-scale regime) are written in short bursts.  Each burst
    co-writes a random subset of one ``bucket_size`` family, so the
    correlation components stay bounded while the *key population*
    explodes — the regime stresses matrix and journal growth, not HAC
    on one giant component.  Bursts are spaced ``min_gap_seconds``
    apart (keep it above the clustering window or bursts chain into
    one endless write group).
    """

    model_config = ConfigDict(extra="forbid")

    kind: Literal["churn_storm"]
    keys: int = Field(default=10_000, ge=1)
    writes_per_machine: int = Field(default=2_000, ge=1)
    bucket_size: int = Field(default=20, ge=1)
    key_prefix: str = "scatter/"
    start_fraction: float = Field(default=0.4, gt=0, lt=1)
    duration_fraction: float = Field(default=0.5, gt=0, le=1)
    min_gap_seconds: float = Field(default=3.0, gt=0)

    @model_validator(mode="after")
    def _pool_holds_a_bucket(self) -> "ChurnStormRegime":
        if self.keys < self.bucket_size:
            raise ValueError(
                f"keys {self.keys} must be at least bucket_size "
                f"{self.bucket_size}"
            )
        return self


class ClockSkewRegime(BaseModel):
    """Skewed clocks plus duplicate/late event floods.

    Each machine's clock is offset by up to ``max_skew_seconds``;
    delivery then re-orders a bounded window of the stream:
    ``late_fraction`` of events are withheld and re-delivered up to
    ``max_displacement`` arrivals later, ``duplicate_fraction`` are
    delivered twice.  Per-key timestamp order is preserved (loggers
    guarantee it), so the chaos lands exactly where it does in
    production: the journal's reorder buffer and cursor paths.
    """

    model_config = ConfigDict(extra="forbid")

    kind: Literal["clock_skew"]
    max_skew_seconds: float = Field(default=45.0, ge=0)
    duplicate_fraction: float = Field(default=0.05, ge=0, le=1)
    late_fraction: float = Field(default=0.10, ge=0, le=1)
    max_displacement: int = Field(default=12, ge=1)


class CorrelatedFaultsRegime(BaseModel):
    """The same Table III error on many machines, plus machine crashes.

    Every covered machine running the case's app gets the *same*
    configuration error injected into its trace
    (:func:`repro.errors.scenario.prepare_scenario`), so the fleet-level
    evidence for the error's keys is correlated across the population.
    On top, ``crash_coverage`` of the machines suffer an injected crash
    in round ``crash_round`` — the runner drives the fleet under
    supervised recovery (:mod:`repro.fleet.resilience`) and the equality
    gate proves the recovered fleet model still ≡ the concatenated
    batch reference.
    """

    model_config = ConfigDict(extra="forbid")

    kind: Literal["correlated_faults"]
    case_id: int = Field(ge=1, le=16)
    coverage: float = Field(default=1.0, gt=0, le=1)
    days_before_end: float = Field(default=1.0, gt=0)
    spurious_writes: int = Field(default=0, ge=0, le=2)
    crash_round: int = Field(default=2, ge=1)
    crash_coverage: float = Field(default=0.5, gt=0, le=1)


class HeterogeneousRegime(BaseModel):
    """A mixed-profile population with skewed activity, no extra faults.

    The hostility is the population itself: several Table-I profiles
    side by side, machine activity decaying per ``activity_skew``, and
    membership churning on the join/leave schedule.  Requires at least
    ``min_profiles`` distinct profiles so a homogeneous population is
    rejected at load time.
    """

    model_config = ConfigDict(extra="forbid")

    kind: Literal["heterogeneous"]
    min_profiles: int = Field(default=2, ge=1)


Regime = Union[
    FlashCrowdRegime,
    ChurnStormRegime,
    ClockSkewRegime,
    CorrelatedFaultsRegime,
    HeterogeneousRegime,
]


class InjectCaseSection(BaseModel):
    """Optionally bury one Table III configuration error in the fleet.

    The case is injected into machine ``machine_index``'s trace via
    :func:`repro.errors.scenario.prepare_scenario` *before* the regime
    transform, so hostile scenarios can carry a real, recoverable error
    under the noise.
    """

    model_config = ConfigDict(extra="forbid")

    case_id: int = Field(ge=1, le=16)
    machine_index: int = Field(default=0, ge=0)
    days_before_end: float = Field(default=14.0, gt=0)
    spurious_writes: int = Field(default=0, ge=0, le=2)


class ScenarioConfig(BaseModel):
    """A complete, validated fleet scenario."""

    model_config = ConfigDict(extra="forbid")

    name: str = Field(min_length=1)
    description: str = ""
    seed: int = 0
    population: list[PopulationGroup] = Field(min_length=1)
    regime: Regime = Field(discriminator="kind")
    fleet: FleetSection = FleetSection()
    pipeline: PipelineSection = PipelineSection()
    inject_case: InjectCaseSection | None = None

    @property
    def total_machines(self) -> int:
        return sum(group.machines for group in self.population)

    @model_validator(mode="after")
    def _coherent_schedule_and_regime(self) -> "ScenarioConfig":
        if not any(group.join_round == 1 for group in self.population):
            raise ValueError(
                "at least one population group must join at round 1 "
                "(the fleet driver needs a live feed from the start)"
            )
        for index, group in enumerate(self.population):
            if group.join_round > self.fleet.rounds:
                raise ValueError(
                    f"population.{index}: join_round {group.join_round} "
                    f"exceeds fleet.rounds {self.fleet.rounds}"
                )
            if (
                group.leave_round is not None
                and group.leave_round > self.fleet.rounds
            ):
                raise ValueError(
                    f"population.{index}: leave_round {group.leave_round} "
                    f"exceeds fleet.rounds {self.fleet.rounds}"
                )
        if isinstance(self.regime, FlashCrowdRegime):
            runs_app = any(
                self.regime.app in profile_by_name(group.profile).apps
                for group in self.population
            )
            if not runs_app:
                raise ValueError(
                    f"regime.app {self.regime.app!r} is not run by any "
                    "population profile — the flash crowd would be empty"
                )
        if isinstance(self.regime, CorrelatedFaultsRegime):
            from repro.errors.cases import case_by_id

            app_name = case_by_id(self.regime.case_id).app_name
            runs_app = any(
                app_name in profile_by_name(group.profile).apps
                for group in self.population
            )
            if not runs_app:
                raise ValueError(
                    f"regime.case_id {self.regime.case_id} needs "
                    f"{app_name!r}, which no population profile runs — "
                    "the correlated error would land nowhere"
                )
            if self.regime.crash_round > self.fleet.rounds:
                raise ValueError(
                    f"regime.crash_round {self.regime.crash_round} exceeds "
                    f"fleet.rounds {self.fleet.rounds}"
                )
        if isinstance(self.regime, HeterogeneousRegime):
            distinct = {group.profile for group in self.population}
            if len(distinct) < self.regime.min_profiles:
                raise ValueError(
                    f"heterogeneous regime needs at least "
                    f"{self.regime.min_profiles} distinct profiles, "
                    f"population has {len(distinct)}"
                )
        if self.inject_case is not None:
            if self.inject_case.machine_index >= self.total_machines:
                raise ValueError(
                    f"inject_case.machine_index "
                    f"{self.inject_case.machine_index} exceeds the "
                    f"{self.total_machines}-machine population"
                )
        return self


# -- the three layers ---------------------------------------------------------


def apply_env_overrides(
    data: dict,
    env: Mapping[str, str] | None = None,
    prefix: str = ENV_PREFIX,
) -> dict:
    """Fold ``REPRO__``-prefixed variables into a raw config mapping.

    Double underscores separate path segments; segments are lowercased
    to match the YAML field names; an all-digits segment indexes into a
    list.  Values are parsed as YAML scalars (``"50"`` → 50, ``"null"``
    → None, ``"[1, 2]"`` → list), falling back to the raw string.
    Paths that do not name a model field survive this merge and are
    rejected by validation with a field-level message.
    """
    if env is None:
        env = os.environ
    merged = dict(data)
    for variable in sorted(env):
        if not variable.startswith(prefix):
            continue
        raw_path = variable[len(prefix):]
        if not raw_path:
            continue
        segments = [part.lower() for part in raw_path.split("__")]
        try:
            value = yaml.safe_load(env[variable])
        except yaml.YAMLError:
            value = env[variable]
        merged = _set_path(merged, variable, segments, value)
    return merged


def _set_path(node, variable: str, segments: list[str], value):
    """Return ``node`` with ``value`` placed at ``segments`` (copy-on-write)."""
    head, rest = segments[0], segments[1:]
    if isinstance(node, list):
        if not head.isdigit():
            raise ScenarioConfigError(
                f"{variable}: segment {head!r} must be a list index"
            )
        index = int(head)
        if index >= len(node):
            raise ScenarioConfigError(
                f"{variable}: index {index} is out of range "
                f"(list has {len(node)} entries)"
            )
        copy = list(node)
        copy[index] = (
            value if not rest else _set_path(copy[index], variable, rest, value)
        )
        return copy
    if not isinstance(node, dict):
        # an env path descends through a YAML scalar: replace it with a
        # fresh mapping so defaults-plus-env works without the section
        node = {}
    copy = dict(node)
    if not rest:
        copy[head] = value
    else:
        copy[head] = _set_path(copy.get(head, {}), variable, rest, value)
    return copy


def scenario_from_dict(
    data: dict,
    env: Mapping[str, str] | None = None,
    *,
    source: str = "<dict>",
) -> ScenarioConfig:
    """Validate a raw mapping (YAML layer already parsed) into a config."""
    if not isinstance(data, dict):
        raise ScenarioConfigError(
            f"{source}: scenario config must be a mapping, "
            f"got {type(data).__name__}"
        )
    merged = apply_env_overrides(data, env)
    try:
        return ScenarioConfig.model_validate(merged)
    except ValidationError as error:
        raise ScenarioConfigError(_validation_message(source, error)) from error


def load_scenario(
    path: str | Path,
    env: Mapping[str, str] | None = None,
) -> ScenarioConfig:
    """Load one scenario YAML through all three layers.

    ``env`` defaults to ``os.environ``; pass ``{}`` to validate the
    file exactly as committed (the CI schema-validation step does).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ScenarioConfigError(f"{path}: {error}") from error
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise ScenarioConfigError(f"{path}: invalid YAML: {error}") from error
    return scenario_from_dict(data, env, source=str(path))

"""Hostile workload regimes as pure, seeded event-stream transforms.

Each function either *generates* adversarial modification events (flash
crowds, churn storms) or *transforms* an existing journal-ordered stream
(clock skew, duplicate/late delivery floods).  All randomness flows
through an explicit ``random.Random`` seeded by the caller (the scenario
builder derives per-machine seeds from the config seed via
:func:`repro.common.hashing.stable_hash`), so regimes are byte-stable
across runs and platforms.

Two invariants every producer here maintains, because the TTKV enforces
them at append time:

- **per-key monotonic timestamps** — a key's events never go back in
  time (equal timestamps are legal: that is what a duplicate delivery
  looks like);
- **bounded correlation components** — scatter regimes confine each
  burst to one small key *bucket* and space bursts further apart than
  the clustering window, so a registry-scale key population stresses
  matrix and journal growth without chaining into one giant component
  that would make agglomeration quadratic in 10⁴ keys.

This module deliberately has no pydantic dependency: the reorder-flood
property tests drive :func:`flooded_delivery` directly even when the
``scenarios`` extra is not installed.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

Event = tuple[float, str, Any]

#: Spacing between flash-crowd waves; comfortably beyond any sane
#: clustering window so consecutive waves form distinct write groups.
WAVE_SPACING_SECONDS = 4 * 3600.0


def zipf_activity_scale(rank: int, skew: float) -> float:
    """Zipf-style per-machine activity decay: ``(rank + 1) ** -skew``.

    Rank 0 is the group's hottest machine; ``skew`` 0 keeps the group
    homogeneous.  Scenario population groups multiply this into their
    ``activity_scale`` so a group models a few busy machines and a long
    quiet tail.
    """
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    return float(rank + 1) ** -skew


def flash_crowd_events(
    *,
    keys: Sequence[str],
    start_time: float,
    waves: int,
    window_seconds: float,
    rng: random.Random,
    value_range: int = 1 << 16,
) -> list[Event]:
    """One machine's writes for a rollout-driven flash crowd.

    Every wave rewrites all ``keys`` (canonical app-config keys, shared
    across the whole population) inside a single ``window_seconds``
    burst, jittered per machine so the fleet's writes land scattered
    *within* the window rather than on one identical instant.  Waves are
    :data:`WAVE_SPACING_SECONDS` apart, so each forms its own write
    group on every machine and the fleet evidence for the rollout keys
    spikes once per wave.
    """
    if not keys:
        raise ValueError("a flash crowd needs at least one key")
    events: list[Event] = []
    for wave in range(waves):
        wave_start = start_time + wave * WAVE_SPACING_SECONDS
        burst = wave_start + rng.uniform(0.0, max(window_seconds - 1.0, 0.0))
        for offset, key in enumerate(keys):
            events.append((burst + offset * 0.01, key, rng.randrange(value_range)))
    return events


def churn_storm_keys(pool_size: int, prefix: str = "scatter/") -> list[str]:
    """The registry-scale synthetic key pool for a churn storm.

    Keys are disjoint from every app's canonical prefix, so a storm
    inflates the key population without perturbing the clusters the
    Table-I workloads produce.
    """
    if pool_size < 1:
        raise ValueError(f"pool_size must be positive, got {pool_size}")
    width = max(6, len(str(pool_size - 1)))
    return [f"{prefix}key{index:0{width}d}" for index in range(pool_size)]


def churn_storm_events(
    *,
    keys: Sequence[str],
    writes: int,
    bucket_size: int,
    start_time: float,
    end_time: float,
    min_gap_seconds: float,
    rng: random.Random,
    value_range: int = 1 << 16,
) -> list[Event]:
    """One machine's malware-like scatter writes over a huge key pool.

    The pool is partitioned into ``bucket_size`` families; each burst
    co-writes a random handful of keys from *one* bucket, with at least
    ``min_gap_seconds`` between bursts.  Writes stop when the budget or
    the time range runs out, whichever first — callers sizing a storm
    should keep ``min_gap_seconds`` above the clustering window
    (otherwise consecutive bursts chain into one endless write group)
    and expect roughly ``writes`` events when the range is long enough
    to hold ``writes / 4`` gaps.
    """
    if writes < 1:
        raise ValueError(f"writes must be positive, got {writes}")
    if bucket_size < 1 or bucket_size > len(keys):
        raise ValueError(
            f"bucket_size {bucket_size} must be in [1, {len(keys)}]"
        )
    if end_time <= start_time:
        raise ValueError("end_time must be after start_time")
    buckets = [
        keys[offset : offset + bucket_size]
        for offset in range(0, len(keys), bucket_size)
    ]
    events: list[Event] = []
    now = start_time
    while len(events) < writes and now < end_time:
        bucket = buckets[rng.randrange(len(buckets))]
        burst_size = min(
            rng.randint(2, max(2, min(6, len(bucket)))),
            len(bucket),
            writes - len(events),
        )
        for offset, key in enumerate(sorted(rng.sample(list(bucket), burst_size))):
            events.append((now + offset * 0.01, key, rng.randrange(value_range)))
        now += min_gap_seconds * rng.uniform(1.0, 1.5)
    return events


def skew_timestamps(
    events: Sequence[Event],
    *,
    max_skew_seconds: float,
    rng: random.Random,
) -> list[Event]:
    """Shift a machine's whole stream by one sampled clock offset.

    A machine's clock error is (to first order) constant over a trace,
    so the offset is sampled once per machine from
    ``[-max_skew_seconds, +max_skew_seconds]`` and applied uniformly —
    preserving per-key order by construction.  Timestamps are floored at
    zero (a monotone map, so per-key order still holds) to keep early
    events inside the collector's epoch.
    """
    if max_skew_seconds < 0:
        raise ValueError(
            f"max_skew_seconds must be non-negative, got {max_skew_seconds}"
        )
    offset = rng.uniform(-max_skew_seconds, max_skew_seconds)
    return [
        (max(0.0, timestamp + offset), key, value)
        for timestamp, key, value in events
    ]


def flooded_delivery(
    events: Sequence[Event],
    *,
    duplicate_fraction: float,
    late_fraction: float,
    max_displacement: int,
    rng: random.Random,
) -> list[Event]:
    """Re-order a journal-ordered stream into a hostile delivery order.

    Models a lossy collection path: ``late_fraction`` of events are
    withheld and re-delivered up to ``max_displacement`` arrivals later;
    ``duplicate_fraction`` are delivered a second time (same timestamp —
    a retransmission, not a new write).  Per-key timestamp order is
    preserved — before any event of key *k* is delivered, every withheld
    event of *k* is flushed first — because the loggers guarantee that
    order and the TTKV enforces it at append time.  Everything else may
    arrive arbitrarily shuffled within the displacement bound, which is
    precisely the regime the journal's reorder buffer and the engines'
    absorb-vs-rebuild cursor logic exist for.

    The result is a permutation of ``events`` plus duplicates; feeding
    it to :meth:`repro.ttkv.store.TTKV.record_events` yields a journal
    equivalent to the original stream (duplicates collapse into the
    same write groups), which is what the flood property suite pins.
    """
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError(f"duplicate_fraction out of [0, 1]: {duplicate_fraction}")
    if not 0.0 <= late_fraction <= 1.0:
        raise ValueError(f"late_fraction out of [0, 1]: {late_fraction}")
    if max_displacement < 1:
        raise ValueError(f"max_displacement must be >= 1, got {max_displacement}")

    delivered: list[Event] = []
    pending: list[tuple[int, Event]] = []  # (release_at_index, event)

    def flush(due_index: int | None = None, key: str | None = None) -> None:
        """Deliver withheld events that are due or collide on ``key``."""
        kept: list[tuple[int, Event]] = []
        for release_at, withheld in pending:
            due = due_index is not None and release_at <= due_index
            collides = key is not None and withheld[1] == key
            if due or collides:
                delivered.append(withheld)
            else:
                kept.append((release_at, withheld))
        pending[:] = kept

    for index, event in enumerate(events):
        flush(due_index=index)
        flush(key=event[1])
        if rng.random() < late_fraction:
            pending.append((index + 1 + rng.randint(1, max_displacement), event))
            continue
        delivered.append(event)
        if rng.random() < duplicate_fraction:
            pending.append((index + 1 + rng.randint(1, max_displacement), event))
    # drain the tail in release order (stable for equal release indices)
    for _, withheld in sorted(pending, key=lambda item: item[0]):
        delivered.append(withheld)
    return delivered

"""Declarative hostile-workload scenarios (``pip install repro[scenarios]``).

The scenario subsystem composes machine populations, workload regimes and
fault injections into runnable fleet experiments, configured through
three layers: committed YAML, pydantic validation, ``REPRO__``-prefixed
environment overrides.  See ``docs/ARCHITECTURE.md`` ("Scenario
configs") and the committed regimes under ``scenarios/``.

pydantic and PyYAML are optional extras; this package keeps the core
import-clean by resolving its exports lazily (PEP 562) and translating a
missing dependency into one actionable error.  The pure regime
generators (:mod:`repro.scenarios.regimes`) never need the extras and
may be imported directly.
"""

from __future__ import annotations

_CONFIG_EXPORTS = {
    "ENV_PREFIX",
    "ScenarioConfig",
    "ScenarioConfigError",
    "PopulationGroup",
    "FleetSection",
    "PipelineSection",
    "InjectCaseSection",
    "FlashCrowdRegime",
    "ChurnStormRegime",
    "ClockSkewRegime",
    "CorrelatedFaultsRegime",
    "HeterogeneousRegime",
    "apply_env_overrides",
    "load_scenario",
    "scenario_from_dict",
}
_BUILD_EXPORTS = {
    "BuiltMachine",
    "BuiltScenario",
    "build_scenario",
    "correlated_crash_machines",
    "derive_seed",
}
_RUNNER_EXPORTS = {
    "FleetScenarioResult",
    "ScenarioGateError",
    "StreamScenarioResult",
    "run_fleet_scenario",
    "run_stream_scenario",
    "scenario_resilience",
}
#: Pure generators — importable without the extras installed.
_REGIME_EXPORTS = {
    "churn_storm_events",
    "churn_storm_keys",
    "flash_crowd_events",
    "flooded_delivery",
    "skew_timestamps",
    "zipf_activity_scale",
}

__all__ = sorted(
    _CONFIG_EXPORTS
    | _BUILD_EXPORTS
    | _RUNNER_EXPORTS
    | _REGIME_EXPORTS
    | {"scenarios_available"}
)


def scenarios_available() -> bool:
    """True when the ``scenarios`` extra (pydantic + PyYAML) is installed."""
    try:
        import pydantic  # noqa: F401
        import yaml  # noqa: F401
    except ImportError:
        return False
    return True


def _module_for(name: str) -> str | None:
    if name in _CONFIG_EXPORTS:
        return "repro.scenarios.config"
    if name in _BUILD_EXPORTS:
        return "repro.scenarios.build"
    if name in _RUNNER_EXPORTS:
        return "repro.scenarios.runner"
    if name in _REGIME_EXPORTS:
        return "repro.scenarios.regimes"
    return None


def __getattr__(name: str):
    module_name = _module_for(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise RuntimeError(
            "the scenario subsystem needs the optional 'scenarios' extra "
            "(pydantic + PyYAML); install it with "
            "'pip install repro-ocasta[scenarios]'"
        ) from error
    return getattr(module, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))

"""Scenario builder: a validated config → per-machine event streams.

The builder expands the population groups into concrete machines, each
with its own seeded Table-I trace, applies the scenario's hostile regime
(generated fault events merged via :mod:`repro.errors.injection`, or a
delivery-order transform for the flood regimes), and returns a
:class:`BuiltScenario` — plain per-machine event lists plus the shard
prefixes and join/leave schedule the fleet runner needs.

Every random decision derives from ``config.seed`` through
:func:`~repro.common.hashing.stable_hash` (CRC-based, immune to
``PYTHONHASHSEED``): per-machine trace seeds, regime participation,
per-machine clock offsets, delivery shuffles.  Building the same config
twice therefore produces byte-identical streams — the determinism test
pins this end to end through the journal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.format import SECONDS_PER_DAY
from repro.common.hashing import stable_hash
from repro.errors.cases import case_by_id
from repro.errors.injection import inject_events
from repro.errors.scenario import prepare_scenario
from repro.exceptions import InjectionError
from repro.scenarios.config import (
    ChurnStormRegime,
    ClockSkewRegime,
    CorrelatedFaultsRegime,
    FlashCrowdRegime,
    ScenarioConfig,
    ScenarioConfigError,
)
from repro.scenarios.regimes import (
    Event,
    churn_storm_events,
    churn_storm_keys,
    flash_crowd_events,
    flooded_delivery,
    skew_timestamps,
    zipf_activity_scale,
)
from repro.workload.machines import profile_by_name
from repro.workload.tracegen import generate_trace

#: Mask for derived RNG seeds (full 32-bit CRC).
_SEED_MASK = 0xFFFFFFFF


def derive_seed(config_seed: int, *parts: object) -> int:
    """A stable child seed for one named random decision.

    ``stable_hash`` over the joined path keeps derived seeds independent
    of each other and identical across processes and platforms.
    """
    path = ":".join(str(part) for part in (config_seed, *parts))
    return stable_hash(path, mask=_SEED_MASK)


def derive_rng(config_seed: int, *parts: object) -> random.Random:
    return random.Random(derive_seed(config_seed, *parts))


@dataclass
class BuiltMachine:
    """One concrete machine of a built scenario."""

    machine_id: str
    profile_name: str
    #: Canonical journal-ordered modification stream (timestamp-sorted).
    events: list[Event]
    #: The order events are *delivered* to the pipeline.  Identical to
    #: ``events`` except under flood regimes, where it is a per-key-order-
    #: preserving shuffle with duplicates — the store's journal absorbs
    #: the difference, which is the point.
    delivery: list[Event]
    shard_prefixes: tuple[str, ...]
    join_round: int = 1
    leave_round: int | None = None
    notes: dict = field(default_factory=dict)

    @property
    def end_time(self) -> float:
        return self.events[-1][0] if self.events else 0.0


@dataclass
class BuiltScenario:
    """A fully expanded scenario, ready for the fleet or stream runners."""

    config: ScenarioConfig
    machines: list[BuiltMachine]

    def machine(self, machine_id: str) -> BuiltMachine:
        for machine in self.machines:
            if machine.machine_id == machine_id:
                return machine
        raise KeyError(
            f"no machine {machine_id!r}; machines: "
            f"{[m.machine_id for m in self.machines]}"
        )

    @property
    def total_events(self) -> int:
        return sum(len(machine.delivery) for machine in self.machines)


def _effective_days(config: ScenarioConfig) -> list[float]:
    return [
        float(group.days if group.days is not None else
              profile_by_name(group.profile).days)
        for group in config.population
    ]


def _flash_crowd_keys(config: ScenarioConfig) -> list[str]:
    """The rollout's canonical target keys, shared fleet-wide.

    Canonical keys depend only on the app (store path + setting name),
    so one machine's throwaway app instances name them for everyone.
    """
    regime = config.regime
    assert isinstance(regime, FlashCrowdRegime)
    from repro.apps.catalog import create_app
    from repro.common.clock import SimClock

    app = create_app(regime.app, clock=SimClock(0.0))
    names = sorted(app.schema.names())
    rng = derive_rng(config.seed, "flash-crowd-keys")
    chosen = (
        names
        if regime.keys >= len(names)
        else sorted(rng.sample(names, regime.keys))
    )
    return [app.canonical_key(name) for name in chosen]


def build_scenario(config: ScenarioConfig) -> BuiltScenario:
    """Expand ``config`` into concrete per-machine event streams."""
    regime = config.regime
    days_by_group = _effective_days(config)
    # Regimes anchor on the *shortest* machine's span so every machine
    # is still alive when the hostile phase starts.
    min_span = min(days_by_group) * SECONDS_PER_DAY

    crowd_keys: list[str] = []
    crowd_start = 0.0
    if isinstance(regime, FlashCrowdRegime):
        crowd_keys = _flash_crowd_keys(config)
        crowd_start = regime.start_fraction * min_span
    scatter_pool: list[str] = []
    if isinstance(regime, ChurnStormRegime):
        scatter_pool = churn_storm_keys(regime.keys, regime.key_prefix)

    machines: list[BuiltMachine] = []
    global_index = 0
    for group_index, group in enumerate(config.population):
        profile = profile_by_name(group.profile)
        days = days_by_group[group_index]
        for rank in range(group.machines):
            machine_id = f"m{global_index:03d}"
            scale = group.activity_scale * zipf_activity_scale(
                rank, group.activity_skew
            )
            scale = min(10.0, max(scale, 1e-3))
            trace = generate_trace(
                profile,
                days=days,
                scale=scale,
                seed=derive_seed(config.seed, "trace", machine_id),
            )
            notes: dict = {"scale": scale}

            if isinstance(regime, CorrelatedFaultsRegime):
                case = case_by_id(regime.case_id)
                covered = case.app_name in profile.apps and (
                    regime.coverage >= 1.0
                    or derive_rng(
                        config.seed, "fault-coverage", machine_id
                    ).random()
                    < regime.coverage
                )
                if covered:
                    # the *same* Table III error on every covered
                    # machine: fleet evidence for its keys correlates
                    # across the population
                    try:
                        error = prepare_scenario(
                            trace,
                            case,
                            days_before_end=regime.days_before_end,
                            spurious_writes=regime.spurious_writes,
                            seed=derive_seed(
                                config.seed, "correlated-inject", machine_id
                            ),
                        )
                    except InjectionError as exc:
                        raise ScenarioConfigError(
                            f"correlated_faults: {exc}"
                        ) from exc
                    trace.ttkv = error.ttkv
                    notes["injected_case"] = case.case_id

            if (
                config.inject_case is not None
                and config.inject_case.machine_index == global_index
            ):
                case = case_by_id(config.inject_case.case_id)
                if case.app_name not in profile.apps:
                    raise ScenarioConfigError(
                        f"inject_case: case #{case.case_id} needs "
                        f"{case.app_name!r}, but machine {machine_id} "
                        f"({profile.name}) runs {list(profile.apps)}"
                    )
                try:
                    error = prepare_scenario(
                        trace,
                        case,
                        days_before_end=config.inject_case.days_before_end,
                        spurious_writes=config.inject_case.spurious_writes,
                        seed=derive_seed(config.seed, "inject", machine_id),
                    )
                except InjectionError as exc:
                    raise ScenarioConfigError(f"inject_case: {exc}") from exc
                trace.ttkv = error.ttkv
                notes["injected_case"] = case.case_id

            events, delivery, regime_notes = _apply_regime(
                config,
                trace,
                machine_id=machine_id,
                profile_apps=profile.apps,
                crowd_keys=crowd_keys,
                crowd_start=crowd_start,
                scatter_pool=scatter_pool,
                span=days * SECONDS_PER_DAY,
            )
            notes.update(regime_notes)

            machines.append(
                BuiltMachine(
                    machine_id=machine_id,
                    profile_name=profile.name,
                    events=events,
                    delivery=delivery,
                    shard_prefixes=tuple(
                        trace.apps[name].key_prefix for name in profile.apps
                    ),
                    join_round=group.join_round,
                    leave_round=group.leave_round,
                    notes=notes,
                )
            )
            global_index += 1
    return BuiltScenario(config=config, machines=machines)


def correlated_crash_machines(built: BuiltScenario) -> list[str]:
    """Which machines the correlated-faults regime crashes (seeded).

    Each machine flips a ``crash_coverage`` coin derived from the
    scenario seed; when every coin misses, the first machine crashes
    anyway so the regime always exercises recovery.
    """
    regime = built.config.regime
    if not isinstance(regime, CorrelatedFaultsRegime):
        raise ScenarioConfigError(
            f"scenario {built.config.name!r} has no correlated_faults regime"
        )
    chosen = [
        machine.machine_id
        for machine in built.machines
        if regime.crash_coverage >= 1.0
        or derive_rng(
            built.config.seed, "crash-coverage", machine.machine_id
        ).random()
        < regime.crash_coverage
    ]
    if not chosen and built.machines:
        chosen = [built.machines[0].machine_id]
    return chosen


def _apply_regime(
    config: ScenarioConfig,
    trace,
    *,
    machine_id: str,
    profile_apps: tuple[str, ...],
    crowd_keys: list[str],
    crowd_start: float,
    scatter_pool: list[str],
    span: float,
) -> tuple[list[Event], list[Event], dict]:
    """Apply the scenario regime to one machine's trace.

    Returns ``(events, delivery, notes)`` — the canonical journal-ordered
    stream, the delivery order to feed, and bookkeeping for reports.
    """
    regime = config.regime
    seed = config.seed

    if isinstance(regime, FlashCrowdRegime):
        participates = regime.app in profile_apps and (
            regime.coverage >= 1.0
            or derive_rng(seed, "coverage", machine_id).random()
            < regime.coverage
        )
        if participates:
            crowd = flash_crowd_events(
                keys=crowd_keys,
                start_time=crowd_start,
                waves=regime.waves,
                window_seconds=regime.window_seconds,
                rng=derive_rng(seed, "crowd", machine_id),
            )
            store = inject_events(trace.ttkv, crowd)
            events = store.write_events()
        else:
            events = trace.ttkv.write_events()
        return events, events, {"flash_crowd": participates}

    if isinstance(regime, ChurnStormRegime):
        start = regime.start_fraction * span
        end = min(span, start + regime.duration_fraction * span)
        scatter = churn_storm_events(
            keys=scatter_pool,
            writes=regime.writes_per_machine,
            bucket_size=regime.bucket_size,
            start_time=start,
            end_time=end,
            min_gap_seconds=regime.min_gap_seconds,
            rng=derive_rng(seed, "storm", machine_id),
        )
        store = inject_events(trace.ttkv, scatter)
        events = store.write_events()
        return events, events, {"scatter_writes": len(scatter)}

    if isinstance(regime, ClockSkewRegime):
        skewed = skew_timestamps(
            trace.ttkv.write_events(),
            max_skew_seconds=regime.max_skew_seconds,
            rng=derive_rng(seed, "skew", machine_id),
        )
        delivery = flooded_delivery(
            skewed,
            duplicate_fraction=regime.duplicate_fraction,
            late_fraction=regime.late_fraction,
            max_displacement=regime.max_displacement,
            rng=derive_rng(seed, "flood", machine_id),
        )
        return skewed, delivery, {
            "duplicates": len(delivery) - len(skewed),
        }

    # heterogeneous: the population mix *is* the regime
    events = trace.ttkv.write_events()
    return events, events, {}

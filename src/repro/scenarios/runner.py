"""Scenario runners: built scenarios → fleet / single-machine executions.

:func:`run_fleet_scenario` drives a :class:`~repro.fleet.FleetPipeline`
with the scenario's per-machine feeds, honouring the population's
join/leave schedule via the driver's ``schedule`` hook, and (by default)
gates the run on the fleet model equalling the independent
concatenated-batch reference — the same bit-identical guarantee every
other tier ships with, extended to hostile regimes.

:func:`run_stream_scenario` runs one machine of the scenario through a
single :class:`~repro.core.sharded.ShardedPipeline` incrementally and
gates on incremental ≡ batch.  Both back the CLI's ``--scenario`` flag.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.cluster_model import ClusterSet
from repro.core.sharded import ShardedPipeline
from repro.fleet.merge import concatenated_batch_clusters
from repro.fleet.pipeline import FleetPipeline, FleetRound
from repro.fleet.resilience import (
    POINT_UPDATE_CRASH,
    FaultInjector,
    FaultSpec,
    FleetResilience,
    ResilienceConfig,
    ScheduledFault,
)
from repro.scenarios.build import (
    BuiltMachine,
    BuiltScenario,
    correlated_crash_machines,
    derive_seed,
)
from repro.scenarios.config import CorrelatedFaultsRegime
from repro.ttkv.store import TTKV


class ScenarioGateError(AssertionError):
    """An equality gate failed: the scenario eroded a guarantee."""


def _chunked(events: Sequence, pieces: int) -> list[list]:
    """Split ``events`` into up to ``pieces`` contiguous, non-empty chunks."""
    if not events:
        return []
    pieces = max(1, min(pieces, len(events)))
    size = -(-len(events) // pieces)
    return [
        list(events[offset : offset + size])
        for offset in range(0, len(events), size)
    ]


def _key_sets(cluster_set: ClusterSet) -> list[tuple[str, ...]]:
    return sorted(tuple(cluster.sorted_keys()) for cluster in cluster_set)


def _reference_key_sets(
    machines: Iterable[BuiltMachine],
    stores: dict[str, TTKV],
    config,
) -> list[tuple[str, ...]]:
    machine_events = {}
    machine_prefixes = {}
    for machine in machines:
        machine_events[machine.machine_id] = stores[
            machine.machine_id
        ].write_events()
        machine_prefixes[machine.machine_id] = machine.shard_prefixes
    return sorted(
        tuple(sorted(keys))
        for keys in concatenated_batch_clusters(
            machine_events,
            machine_prefixes,
            window=config.pipeline.window,
            correlation_threshold=config.pipeline.correlation_threshold,
            linkage=config.pipeline.linkage,
        )
    )


@dataclass
class FleetScenarioResult:
    """Outcome of one scenario-driven fleet run."""

    scenario_name: str
    rounds: list[FleetRound]
    clusters: ClusterSet
    machines_final: tuple[str, ...]
    events_fed: int
    events_consumed: int
    #: ``None`` when the gate was skipped, else the verdict (a failed
    #: gate raises :class:`ScenarioGateError` instead of returning).
    equal_to_batch: bool | None
    #: Injected faults / supervised restarts across the drive (0 when
    #: the scenario ran without a resilience bundle).
    faults_injected: int = 0
    machines_restarted: int = 0


def scenario_resilience(built: BuiltScenario) -> FleetResilience | None:
    """The resilience bundle a scenario's regime implies (``None``: none).

    The correlated-faults regime schedules one injected crash per
    covered machine (:func:`~repro.scenarios.build.
    correlated_crash_machines`) in its ``crash_round``, with a
    failure-threshold-1 circuit breaker so every crash exercises the
    full restart-and-retract recovery path.  All decisions derive from
    the scenario seed, so two runs inject byte-identical schedules.
    """
    regime = built.config.regime
    if not isinstance(regime, CorrelatedFaultsRegime):
        return None
    scheduled = tuple(
        ScheduledFault(
            round_index=regime.crash_round,
            machine_id=machine_id,
            point=POINT_UPDATE_CRASH,
        )
        for machine_id in correlated_crash_machines(built)
    )
    spec = FaultSpec(
        seed=derive_seed(built.config.seed, "fault-injector"),
        scheduled=scheduled,
    )
    return FleetResilience(
        injector=FaultInjector(spec),
        config=ResilienceConfig(failure_threshold=1),
    )


def run_fleet_scenario(
    built: BuiltScenario,
    *,
    executor=None,
    on_round: Callable[[FleetRound], None] | None = None,
    check_equality: bool = True,
    resilience: FleetResilience | None = None,
) -> FleetScenarioResult:
    """Drive the full fleet scenario; gate against the batch reference.

    Machines join and leave on the population schedule: a group with
    ``join_round`` *n* is attached (and its feed started) when round *n*
    begins; a group with ``leave_round`` *m* is detached — evidence
    retired from the fleet model — once round *m* has completed.  The
    equality gate compares the final fleet model against
    :func:`~repro.fleet.merge.concatenated_batch_clusters` over the
    machines still attached (departed machines' evidence is gone from
    both sides, which is the semantics of ``retire``).

    ``resilience`` defaults to whatever the regime implies
    (:func:`scenario_resilience`) — for the correlated-faults regime the
    drive therefore runs under supervised recovery with the scheduled
    machine crashes injected, and the unchanged equality gate is the
    proof that recovery lost nothing.
    """
    config = built.config
    if resilience is None:
        resilience = scenario_resilience(built)
    stores: dict[str, TTKV] = {}
    feeds_by_machine: dict[str, list[list]] = {}
    for machine in built.machines:
        last_round = (
            machine.leave_round
            if machine.leave_round is not None
            else config.fleet.rounds
        )
        feeds_by_machine[machine.machine_id] = _chunked(
            machine.delivery, last_round - machine.join_round + 1
        )

    fleet = FleetPipeline(
        window=config.pipeline.window,
        correlation_threshold=config.pipeline.correlation_threshold,
        linkage=config.pipeline.linkage,
        kernel=config.pipeline.kernel,
        journal_backend=config.pipeline.journal_backend,
        executor=executor,
        max_lag=config.fleet.max_lag,
    )

    def attach(machine: BuiltMachine) -> None:
        store = TTKV()
        stores[machine.machine_id] = store
        fleet.add_machine(machine.machine_id, store, machine.shard_prefixes)

    initial_feeds: dict[str, list[list]] = {}
    for machine in built.machines:
        if machine.join_round == 1:
            attach(machine)
            initial_feeds[machine.machine_id] = feeds_by_machine[
                machine.machine_id
            ]

    # The last round at which the schedule still has something to do.
    last_scheduled = max(
        [machine.join_round for machine in built.machines]
        + [
            machine.leave_round + 1
            for machine in built.machines
            if machine.leave_round is not None
        ]
    )

    def schedule(round_index: int):
        if round_index > last_scheduled:
            return None
        for machine in built.machines:
            if (
                machine.leave_round is not None
                and round_index == machine.leave_round + 1
                and machine.machine_id in fleet.machine_ids
            ):
                fleet.remove_machine(machine.machine_id)
        joins = {}
        for machine in built.machines:
            if machine.join_round == round_index and round_index > 1:
                attach(machine)
                joins[machine.machine_id] = feeds_by_machine[
                    machine.machine_id
                ]
        return joins

    try:
        rounds = asyncio.run(
            fleet.drive(
                initial_feeds,
                on_round=on_round,
                schedule=schedule,
                resilience=resilience,
            )
        )
        clusters = fleet.clusters()
        machines_final = fleet.machine_ids
        equal: bool | None = None
        if check_equality:
            live = [
                machine
                for machine in built.machines
                if machine.machine_id in machines_final
            ]
            equal = _key_sets(clusters) == _reference_key_sets(
                live, stores, config
            )
            if not equal:
                raise ScenarioGateError(
                    f"scenario {config.name!r}: fleet merge diverged from "
                    "the concatenated-batch reference"
                )
    finally:
        fleet.close()

    return FleetScenarioResult(
        scenario_name=config.name,
        rounds=rounds,
        clusters=clusters,
        machines_final=machines_final,
        events_fed=sum(r.events_fed for r in rounds),
        events_consumed=sum(r.events_consumed for r in rounds),
        equal_to_batch=equal,
        faults_injected=sum(r.faults_injected for r in rounds),
        machines_restarted=sum(r.machines_restarted for r in rounds),
    )


@dataclass
class StreamScenarioResult:
    """Outcome of one scenario machine run through a single pipeline."""

    scenario_name: str
    machine_id: str
    events: int
    updates: int
    reorders_absorbed: int
    rebuilds: int
    clusters: ClusterSet
    equal_to_batch: bool | None


def run_stream_scenario(
    built: BuiltScenario,
    machine_id: str | None = None,
    *,
    chunk_events: int = 500,
    executor=None,
    check_equality: bool = True,
    on_update: Callable[[int, int], None] | None = None,
) -> StreamScenarioResult:
    """Run one scenario machine incrementally; gate incremental ≡ batch.

    Feeds the machine's *delivery* stream (hostile order, duplicates and
    all) in ``chunk_events`` slices through a
    :class:`~repro.core.sharded.ShardedPipeline`, updating after each
    slice, then compares the final model against the batch reference
    over the store's journal.  ``on_update(events_so_far, clusters)`` is
    called after every update for progress reporting.
    """
    machine = (
        built.machines[0] if machine_id is None else built.machine(machine_id)
    )
    config = built.config
    store = TTKV()
    pipeline = ShardedPipeline(
        store,
        shard_prefixes=machine.shard_prefixes,
        window=config.pipeline.window,
        correlation_threshold=config.pipeline.correlation_threshold,
        linkage=config.pipeline.linkage,
        kernel=config.pipeline.kernel,
        journal_backend=config.pipeline.journal_backend,
        executor=executor,
    )
    updates = reorders = rebuilds = fed = 0
    try:
        for chunk in _chunked(
            machine.delivery,
            max(1, -(-len(machine.delivery) // max(1, chunk_events))),
        ):
            store.record_events(chunk)
            fed += len(chunk)
            pipeline.update()
            updates += 1
            stats = pipeline.last_stats
            if stats is not None:
                reorders += stats.reorders_absorbed
                rebuilds += int(stats.rebuilt)
            if on_update is not None:
                clusters = pipeline.cluster_set
                on_update(fed, 0 if clusters is None else len(clusters))
        clusters = pipeline.update()
        equal: bool | None = None
        if check_equality:
            equal = _key_sets(clusters) == _reference_key_sets(
                [machine], {machine.machine_id: store}, config
            )
            if not equal:
                raise ScenarioGateError(
                    f"scenario {config.name!r} machine "
                    f"{machine.machine_id}: incremental clusters diverged "
                    "from the batch reference"
                )
    finally:
        pipeline.close()

    return StreamScenarioResult(
        scenario_name=config.name,
        machine_id=machine.machine_id,
        events=len(machine.delivery),
        updates=updates,
        reorders_absorbed=reorders,
        rebuilds=rebuilds,
        clusters=clusters,
        equal_to_batch=equal,
    )

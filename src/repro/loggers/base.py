"""Logger base: event filtering, timestamp quantisation, TTKV recording."""

from __future__ import annotations

from repro.common.format import quantize_timestamp
from repro.stores.events import AccessEvent, AccessKind
from repro.ttkv.store import TTKV

#: The paper's trace collector records modification times "to the precision
#: of the nearest second".
TIMESTAMP_PRECISION = 1.0


class Logger:
    """Records access events into a TTKV with quantised timestamps.

    Parameters
    ----------
    ttkv:
        Destination store.
    precision:
        Timestamp quantisation in seconds; ``0`` records exact times.
        The default reproduces the paper's 1-second collector.
    record_reads:
        Whether read accesses are counted.  Registry and GConf loggers see
        reads; the file logger cannot (it only sees flushes), so it disables
        this.
    """

    def __init__(
        self,
        ttkv: TTKV,
        precision: float = TIMESTAMP_PRECISION,
        record_reads: bool = True,
    ) -> None:
        self.ttkv = ttkv
        self.precision = precision
        self.record_reads = record_reads
        self.events_recorded = 0

    def __call__(self, event: AccessEvent) -> None:
        """Observer entry point: record one access event."""
        timestamp = quantize_timestamp(event.timestamp, self.precision)
        if event.kind is AccessKind.READ:
            if self.record_reads:
                self.ttkv.record_read(event.key, timestamp)
                self.events_recorded += 1
        elif event.kind is AccessKind.WRITE:
            self.ttkv.record_write(event.key, event.value, timestamp)
            self.events_recorded += 1
        else:
            self.ttkv.record_delete(event.key, timestamp)
            self.events_recorded += 1

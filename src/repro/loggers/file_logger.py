"""Application-file logger: diffs configuration files across flushes.

File-backed applications give the logger strictly coarser information than
registry/GConf applications:

* only *flushes* are visible, so several in-memory writes to the same key
  between flushes collapse into one observed change;
* reads are invisible (the application reads its own in-memory copy);
* a key's change is observed at the flush timestamp, not the write time.

Canonical TTKV key names are ``<file path>:<key>``, so settings from
different configuration files never collide.
"""

from __future__ import annotations

from typing import Any

from repro.common.format import quantize_timestamp
from repro.exceptions import ParseError
from repro.loggers.base import Logger, TIMESTAMP_PRECISION
from repro.stores.filestore import VirtualFile
from repro.stores.parsers import get_parser
from repro.ttkv.store import TTKV


def file_key(path: str, key: str) -> str:
    """Canonical TTKV key for a setting stored in a configuration file."""
    return f"{path}:{key}"


class FileLogger(Logger):
    """Watches configuration files and records flush-level diffs."""

    def __init__(
        self,
        ttkv: TTKV,
        format_name: str,
        precision: float = TIMESTAMP_PRECISION,
    ) -> None:
        super().__init__(ttkv, precision=precision, record_reads=False)
        self.format_name = format_name
        self._parser = get_parser(format_name)
        self._watched: list[VirtualFile] = []
        self.parse_failures = 0

    def attach(self, file: VirtualFile) -> None:
        """Start watching ``file`` for flushes."""
        file.watch(self._on_flush)
        self._watched.append(file)

    def detach(self, file: VirtualFile) -> None:
        file.unwatch(self._on_flush)
        self._watched.remove(file)

    @property
    def watched_paths(self) -> list[str]:
        return [f.path for f in self._watched]

    # -- flush handling -----------------------------------------------------

    def _on_flush(
        self, path: str, old_text: str, new_text: str, timestamp: float
    ) -> None:
        try:
            before = self._parser.loads(old_text)
            after = self._parser.loads(new_text)
        except ParseError:
            # A half-written or foreign-format file: skip this flush rather
            # than corrupt the trace.  Counted so tests can assert on it.
            self.parse_failures += 1
            return
        quantized = quantize_timestamp(timestamp, self.precision)
        for key, old_value, new_value in diff_flush(before, after):
            canonical = file_key(path, key)
            if new_value is _ABSENT:
                self.ttkv.record_delete(canonical, quantized)
            else:
                self.ttkv.record_write(canonical, new_value, quantized)
            self.events_recorded += 1


_ABSENT = object()


def diff_flush(
    before: dict[str, Any], after: dict[str, Any]
) -> list[tuple[str, Any, Any]]:
    """Key-level diff between two parsed file states.

    Returns ``(key, old_value, new_value)`` triples for changed keys, with
    ``new_value`` set to an absent marker for deletions.  Keys present with
    equal values in both states produce nothing — the logger cannot know a
    key was rewritten with the same value.
    """
    changes: list[tuple[str, Any, Any]] = []
    for key, new_value in after.items():
        if key not in before:
            changes.append((key, _ABSENT, new_value))
        elif before[key] != new_value:
            changes.append((key, before[key], new_value))
    for key, old_value in before.items():
        if key not in after:
            changes.append((key, old_value, _ABSENT))
    return changes

"""Windows-registry logger.

The paper injects a shared library into Explorer and hooks the registry
API (Detours-style) so every application started through the shell is
monitored.  The emulator equivalent is an observer subscribed to a
:class:`~repro.stores.registry.RegistryStore`; the ``attach``/``detach``
pair models injection and removal of the hook library.
"""

from __future__ import annotations

from repro.loggers.base import Logger, TIMESTAMP_PRECISION
from repro.stores.registry import RegistryStore
from repro.ttkv.store import TTKV


class RegistryLogger(Logger):
    """Hooks a registry store and records its accesses."""

    def __init__(
        self, ttkv: TTKV, precision: float = TIMESTAMP_PRECISION
    ) -> None:
        super().__init__(ttkv, precision=precision, record_reads=True)
        self._store: RegistryStore | None = None

    def attach(self, store: RegistryStore) -> None:
        """Inject the hook: start observing ``store``."""
        if self._store is not None:
            raise RuntimeError("logger is already attached")
        store.subscribe(self)
        self._store = store

    def detach(self) -> None:
        """Remove the hook."""
        if self._store is None:
            raise RuntimeError("logger is not attached")
        self._store.unsubscribe(self)
        self._store = None

    @property
    def attached(self) -> bool:
        return self._store is not None

"""GConf logger.

The paper interposes on the GConf client library with ``LD_PRELOAD``; every
process loads the shim, which forwards calls to the real library after
logging.  The emulator equivalent observes a
:class:`~repro.stores.gconf.GConfStore`.
"""

from __future__ import annotations

from repro.loggers.base import Logger, TIMESTAMP_PRECISION
from repro.stores.gconf import GConfStore
from repro.ttkv.store import TTKV


class GConfLogger(Logger):
    """Preload shim equivalent: observes a GConf store."""

    def __init__(
        self, ttkv: TTKV, precision: float = TIMESTAMP_PRECISION
    ) -> None:
        super().__init__(ttkv, precision=precision, record_reads=True)
        self._store: GConfStore | None = None

    def attach(self, store: GConfStore) -> None:
        if self._store is not None:
            raise RuntimeError("logger is already attached")
        store.subscribe(self)
        self._store = store

    def detach(self) -> None:
        if self._store is None:
            raise RuntimeError("logger is not attached")
        self._store.unsubscribe(self)
        self._store = None

    @property
    def attached(self) -> bool:
        return self._store is not None

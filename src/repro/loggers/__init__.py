"""Loggers: intercept configuration accesses and record them in the TTKV.

The paper implements three interception mechanisms — Detours-style API
hooking for the Windows registry, an ``LD_PRELOAD`` shim for GConf, and a
file watcher that diffs configuration files across flushes.  Here each is an
observer attached to the corresponding store emulator.  All loggers share
the trace collector's timestamp quantisation (1-second precision by
default), which the paper identifies as the main source of oversized
clusters.
"""

from repro.loggers.base import Logger, TIMESTAMP_PRECISION
from repro.loggers.registry_logger import RegistryLogger
from repro.loggers.gconf_logger import GConfLogger
from repro.loggers.file_logger import FileLogger

__all__ = [
    "Logger",
    "TIMESTAMP_PRECISION",
    "RegistryLogger",
    "GConfLogger",
    "FileLogger",
]

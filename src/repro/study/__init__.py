"""Simulated user study (§VI-D, Fig. 4).

The paper's 19-participant study cannot be rerun offline, so this package
models the participants: per-error distributions for trial creation time,
screenshot selection time, difficulty ratings and manual-fix behaviour
(capped at 5 minutes, as the study protocol was).
"""

from repro.study.participants import Participant, make_participants
from repro.study.user_study import StudyResult, run_user_study, STUDY_CASE_IDS

__all__ = [
    "Participant",
    "make_participants",
    "StudyResult",
    "run_user_study",
    "STUDY_CASE_IDS",
]

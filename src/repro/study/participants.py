"""Participant models for the simulated user study.

The paper's cohort: 2 faculty, 13 graduate students (4 departments), a
system administrator, an administrative assistant and 2 software engineers;
6 of 19 are non-technical.  Technical proficiency scales how fast a
participant creates trials, scans screenshots and troubleshoots manually.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

ROLE_FACULTY = "faculty"
ROLE_GRAD = "graduate student"
ROLE_SYSADMIN = "system administrator"
ROLE_ADMIN = "administrative assistant"
ROLE_ENGINEER = "software engineer"


@dataclass(frozen=True)
class Participant:
    """One study participant."""

    participant_id: int
    role: str
    technical: bool
    #: multiplicative speed factor (lower = faster), ~1.0 for the median
    speed: float
    #: manual troubleshooting skill in [0, 1]
    troubleshooting: float

    def familiarity(self, rng: random.Random) -> int:
        """Self-reported familiarity with an application (1-5)."""
        base = 3 if self.technical else 2
        return max(1, min(5, base + rng.randint(-1, 2)))


_COHORT: tuple[tuple[str, bool], ...] = (
    (ROLE_FACULTY, True),
    (ROLE_FACULTY, True),
    *[(ROLE_GRAD, True)] * 9,
    *[(ROLE_GRAD, False)] * 4,
    (ROLE_SYSADMIN, True),
    (ROLE_ADMIN, False),
    (ROLE_ENGINEER, True),
    (ROLE_ENGINEER, False),
)


def make_participants(rng: random.Random) -> list[Participant]:
    """The 19-person cohort with individually sampled speed/skill."""
    participants = []
    for index, (role, technical) in enumerate(_COHORT, start=1):
        speed = rng.uniform(0.7, 1.3) * (1.0 if technical else 1.4)
        troubleshooting = (
            rng.uniform(0.5, 0.9) if technical else rng.uniform(0.1, 0.4)
        )
        participants.append(
            Participant(
                participant_id=index,
                role=role,
                technical=technical,
                speed=speed,
                troubleshooting=troubleshooting,
            )
        )
    return participants

"""The simulated user study (Fig. 4).

Reproduces the protocol of §VI-D on errors #11, #13, #15 and #16:

1. the participant creates the trial (time recorded, difficulty rated);
2. the participant scans the screenshot gallery Ocasta produced and picks
   the fixed one (time recorded, correctness recorded);
3. the system is reset and the participant fixes the error manually, cut
   off at 5 minutes.

Ocasta time = trial creation + screenshot selection.  Calibration targets
the paper's aggregate observations: trial creation rated "easiest" 74% of
the time, screenshot selection 80%; manual fixing usually hits the cut-off
except error #16, where most participants succeed quickly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors.cases import case_by_id
from repro.study.participants import Participant, make_participants

#: the four Table III errors the study used
STUDY_CASE_IDS = (11, 13, 15, 16)

MANUAL_CUTOFF_SECONDS = 300.0

#: per-case calibration: (manual success probability for a median
#: technical participant, manual base time in seconds, trial base time)
_CASE_PARAMS: dict[int, tuple[float, float, float]] = {
    11: (0.30, 210.0, 35.0),
    13: (0.45, 180.0, 25.0),
    15: (0.30, 220.0, 30.0),
    16: (0.85, 90.0, 20.0),
}

#: seconds a participant spends judging one screenshot
_PER_SCREENSHOT_SECONDS = 6.0


@dataclass
class CaseStudyResult:
    """Aggregates for one error case across all participants."""

    case_id: int
    ocasta_times: list[float] = field(default_factory=list)
    trial_times: list[float] = field(default_factory=list)
    selection_times: list[float] = field(default_factory=list)
    manual_times: list[float] = field(default_factory=list)
    manual_fixed: int = 0
    correct_selection: int = 0
    trial_difficulty: list[int] = field(default_factory=list)
    selection_difficulty: list[int] = field(default_factory=list)

    @property
    def avg_ocasta_time(self) -> float:
        return sum(self.ocasta_times) / len(self.ocasta_times)

    @property
    def avg_manual_time(self) -> float:
        return sum(self.manual_times) / len(self.manual_times)

    @property
    def manual_fix_rate(self) -> float:
        return self.manual_fixed / len(self.manual_times)


@dataclass
class StudyResult:
    """The whole study: per-case aggregates plus cohort-level ratings."""

    cases: dict[int, CaseStudyResult]
    participants: list[Participant]

    def rating_distribution(self, which: str) -> dict[int, float]:
        """Fraction of ratings at each difficulty level (1=easiest)."""
        ratings: list[int] = []
        for case in self.cases.values():
            ratings.extend(
                case.trial_difficulty if which == "trial" else case.selection_difficulty
            )
        total = len(ratings)
        return {
            level: sum(1 for r in ratings if r == level) / total
            for level in range(1, 6)
        }


def _difficulty_from_time(seconds: float, easy_below: float, rng: random.Random) -> int:
    """Map task duration to a 1-5 difficulty self-rating."""
    ratio = seconds / easy_below
    if ratio < 1.0:
        return 1
    if ratio < 1.6:
        return 1 if rng.random() < 0.5 else 2
    if ratio < 2.4:
        return 2 if rng.random() < 0.7 else 3
    return 3 if rng.random() < 0.8 else 4


def run_user_study(
    screenshots_per_case: dict[int, int] | None = None,
    seed: int = 19,
) -> StudyResult:
    """Run the 19-participant simulation.

    ``screenshots_per_case`` is how many unique screenshots Ocasta's search
    produced for each error (from a Table IV run); defaults approximate
    the paper's gallery sizes.
    """
    screenshots = {11: 1, 13: 2, 15: 2, 16: 4}
    if screenshots_per_case:
        screenshots.update(screenshots_per_case)
    rng = random.Random(seed)
    participants = make_participants(rng)
    cases: dict[int, CaseStudyResult] = {
        case_id: CaseStudyResult(case_id=case_id) for case_id in STUDY_CASE_IDS
    }

    for participant in participants:
        for case_id in STUDY_CASE_IDS:
            case_def = case_by_id(case_id)  # validates the id is real
            manual_p, manual_base, trial_base = _CASE_PARAMS[case_id]
            result = cases[case_id]

            # 1. trial creation: a couple of UI actions, scaled by speed.
            n_actions = len(case_def.trial_actions)
            trial_time = (
                trial_base
                * (0.6 + 0.2 * n_actions)
                * participant.speed
                * rng.uniform(0.7, 1.6)
            )
            result.trial_times.append(trial_time)
            result.trial_difficulty.append(
                _difficulty_from_time(trial_time, easy_below=90.0, rng=rng)
            )

            # 2. screenshot selection from the de-duplicated gallery.
            gallery = screenshots[case_id]
            examined = rng.randint(max(1, gallery // 2), gallery)
            selection_time = (
                (8.0 + examined * _PER_SCREENSHOT_SECONDS)
                * participant.speed
                * rng.uniform(0.7, 1.4)
            )
            result.selection_times.append(selection_time)
            result.selection_difficulty.append(
                _difficulty_from_time(selection_time, easy_below=45.0, rng=rng)
            )
            # Selecting the wrong screenshot was rare in the paper.
            correct = rng.random() < (0.97 if participant.technical else 0.92)
            result.correct_selection += int(correct)

            result.ocasta_times.append(trial_time + selection_time)

            # 3. manual repair, cut off at 5 minutes.
            success_p = min(
                0.98, manual_p * (0.4 + participant.troubleshooting)
            )
            if rng.random() < success_p:
                manual_time = min(
                    MANUAL_CUTOFF_SECONDS,
                    manual_base * participant.speed * rng.uniform(0.5, 1.8),
                )
                fixed = manual_time < MANUAL_CUTOFF_SECONDS
            else:
                manual_time = MANUAL_CUTOFF_SECONDS
                fixed = False
            result.manual_times.append(manual_time)
            result.manual_fixed += int(fixed)

    return StudyResult(cases=cases, participants=participants)

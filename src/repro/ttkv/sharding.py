"""Prefix-sharded view over a TTKV's modification journal.

Ocasta records every application on a machine into one store, but clusters
*per application* — the repair tool always restricts the trace to one
``key_prefix``.  With a single global journal each per-application consumer
re-reads (and re-filters) the whole stream.  A :class:`ShardedJournal`
routes the store's append-ordered stream into one :class:`EventJournal`
per application prefix instead, so

- each shard is consumed with its own cursor and only advances when *its*
  application wrote something;
- an out-of-order append disturbs only the shard it routes to — the other
  applications' cursors stay valid;
- a clustering session over a shard sees exactly the events a batch run
  with ``key_filter=prefix`` would see, in the same order, which is what
  keeps the sharded pipeline bit-identical to the batch reference.

Routing is longest-prefix-wins.  Events matching no configured prefix go
to the *catch-all* shard (id :data:`CATCH_ALL`, the empty string) when one
is enabled, and are dropped otherwise — dropping reproduces the semantics
of a ``key_filter`` restricted deployment.

The view attaches to a live journal by subscribing to its appends; call
:meth:`ShardedJournal.detach` before abandoning one, or the source journal
keeps feeding it.
"""

from __future__ import annotations

from typing import Iterable

from repro.ttkv.columnar import BACKEND_LIST, make_journal
from repro.ttkv.journal import Event, EventJournal

#: Shard id of the catch-all shard (routes keys matching no other prefix).
CATCH_ALL = ""


class ShardedJournal:
    """Partition an :class:`EventJournal` by key prefix, with live routing.

    Parameters
    ----------
    source:
        The journal to shard (normally ``store.journal``).  Events already
        in it are routed immediately; future appends are routed as they
        happen.
    prefixes:
        Application key prefixes, e.g. ``("/apps/gedit/", "/apps/eog/")``.
        Longest match wins, so nested prefixes behave intuitively.
    catch_all:
        Route events matching no prefix to the :data:`CATCH_ALL` shard
        (default).  With ``catch_all=False`` such events are dropped.
    key_filter:
        Optional global prefix filter applied *before* routing, mirroring
        the batch pipeline's ``key_filter`` parameter.
    backend:
        Journal backend for the per-shard journals (``"list"``,
        ``"columnar"`` or ``"auto"`` — see
        :func:`repro.ttkv.columnar.make_journal`).  The *source* journal's
        backend is the caller's choice and is independent.
    """

    def __init__(
        self,
        source: EventJournal,
        prefixes: Iterable[str] = (),
        *,
        catch_all: bool = True,
        key_filter: str | None = None,
        backend: str = BACKEND_LIST,
    ) -> None:
        ordered = sorted(set(prefixes), key=lambda p: (-len(p), p))
        if CATCH_ALL in ordered:
            raise ValueError(
                "the empty prefix is reserved for the catch-all shard; "
                "pass catch_all=True instead"
            )
        if not ordered and not catch_all:
            raise ValueError("a sharded journal needs prefixes or a catch-all")
        self._source = source
        self._key_filter = key_filter
        self._route_order: tuple[str, ...] = tuple(ordered)
        self._catch_all = catch_all
        self._backend = backend
        self._shards = {prefix: make_journal(backend) for prefix in sorted(ordered)}
        if catch_all:
            self._shards[CATCH_ALL] = make_journal(backend)
        self._route_cache: dict[str, str | None] = {}
        self._attached = False
        for event in source.events():
            self._ingest(event)
        source.subscribe(self._ingest)
        self._attached = True

    # -- routing -------------------------------------------------------------

    def route(self, key: str) -> str | None:
        """Shard id for ``key`` (``None`` when the key is dropped).

        Decisions are cached per key: config keys repeat for months, so
        the prefix scan runs once per *distinct* key, not once per event
        (the cache is bounded by the key universe, which the store already
        holds in full).
        """
        try:
            return self._route_cache[key]
        except KeyError:
            pass
        shard: str | None
        if self._key_filter is not None and not key.startswith(self._key_filter):
            shard = None
        else:
            for prefix in self._route_order:
                if key.startswith(prefix):
                    shard = prefix
                    break
            else:
                shard = CATCH_ALL if self._catch_all else None
        self._route_cache[key] = shard
        return shard

    def _ingest(self, event: Event) -> None:
        shard = self.route(event[1])
        if shard is not None:
            self._shards[shard].append_event(event)

    # -- access --------------------------------------------------------------

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """All shard ids: the sorted prefixes, plus ``""`` for the catch-all."""
        return tuple(self._shards)

    @property
    def prefixes(self) -> tuple[str, ...]:
        """The configured application prefixes (catch-all excluded)."""
        return tuple(p for p in self._shards if p != CATCH_ALL)

    @property
    def has_catch_all(self) -> bool:
        return self._catch_all

    @property
    def key_filter(self) -> str | None:
        return self._key_filter

    @property
    def backend(self) -> str:
        """The configured per-shard journal backend name."""
        return self._backend

    def shard(self, shard_id: str):
        """The journal of one shard (:data:`CATCH_ALL` for the catch-all)."""
        try:
            return self._shards[shard_id]
        except KeyError:
            raise KeyError(
                f"no shard {shard_id!r}; shards: {list(self._shards)}"
            ) from None

    def positions(self) -> dict[str, int]:
        """Current length of every shard journal (JSON-safe)."""
        return {shard_id: len(journal) for shard_id, journal in self._shards.items()}

    def detach(self) -> None:
        """Stop routing future appends of the source journal."""
        if self._attached:
            self._source.unsubscribe(self._ingest)
            self._attached = False

    def __len__(self) -> int:
        """Total routed events across all shards (dropped events excluded)."""
        return sum(len(journal) for journal in self._shards.values())

"""The time-travel key-value store.

A :class:`TTKV` records configuration accesses as they are intercepted by
the loggers.  Each key maps to a :class:`KeyRecord` that keeps the number of
reads, writes and deletions, and an ordered history of
:class:`VersionedValue` entries.  Deletions appear in the history as the
:data:`DELETED` sentinel, mirroring the paper's "special type of value ...
used to represent deletions".

Timestamps are floats (seconds since the trace epoch).  History entries are
kept sorted by timestamp; appends must be monotonic per key, which matches
how loggers feed events (a real deployment's clock never runs backwards).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.exceptions import KeyNotTrackedError, NoValueError
from repro.ttkv.journal import EventJournal


class _Sentinel:
    """A unique, self-describing sentinel value."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return f"<{self._name}>"

    def __deepcopy__(self, memo: dict) -> "_Sentinel":
        return self


#: History marker for a deletion of the key.
DELETED = _Sentinel("DELETED")

#: Returned by lookups when a key has never been written (distinct from a
#: key that currently holds the value ``None``).
MISSING = _Sentinel("MISSING")


@dataclass(frozen=True, order=True)
class VersionedValue:
    """One entry in a key's history: a value (or DELETED) and its time."""

    timestamp: float
    value: Any = field(compare=False)

    @property
    def is_deletion(self) -> bool:
        return self.value is DELETED


class KeyRecord:
    """Per-key record: counters plus the timestamped value history."""

    __slots__ = ("key", "reads", "writes", "deletes", "_history", "_times")

    def __init__(self, key: str) -> None:
        self.key = key
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        self._history: list[VersionedValue] = []
        self._times: list[float] = []  # parallel array for bisect

    # -- recording ---------------------------------------------------------

    def record_write(self, value: Any, timestamp: float) -> None:
        """Append a write of ``value`` at ``timestamp``."""
        self._append(VersionedValue(timestamp, value))
        self.writes += 1

    def record_delete(self, timestamp: float) -> None:
        """Append a deletion marker at ``timestamp``."""
        self._append(VersionedValue(timestamp, DELETED))
        self.deletes += 1

    def record_read(self, timestamp: float) -> None:
        """Count a read; reads are counted but not stored in the history."""
        del timestamp  # reads carry no payload worth storing
        self.reads += 1

    def record_reads(self, count: int) -> None:
        """Bulk-count ``count`` reads (trace generation shortcut)."""
        if count < 0:
            raise ValueError("read count cannot be negative")
        self.reads += count

    def _append(self, entry: VersionedValue) -> None:
        if self._times and entry.timestamp < self._times[-1]:
            raise ValueError(
                f"history for {self.key!r} must be appended in time order: "
                f"{entry.timestamp} < {self._times[-1]}"
            )
        self._history.append(entry)
        self._times.append(entry.timestamp)

    # -- queries -----------------------------------------------------------

    @property
    def history(self) -> tuple[VersionedValue, ...]:
        """The full history, oldest first."""
        return tuple(self._history)

    @property
    def modifications(self) -> int:
        """Total writes + deletions (the paper's 'modification' count)."""
        return self.writes + self.deletes

    def value_at(self, timestamp: float) -> Any:
        """Return the live value as of ``timestamp`` (inclusive).

        Returns :data:`MISSING` if the key had not been written yet and
        :data:`DELETED` if the most recent modification was a deletion.
        """
        idx = bisect.bisect_right(self._times, timestamp)
        if idx == 0:
            return MISSING
        return self._history[idx - 1].value

    def versions_between(
        self, start: float | None = None, end: float | None = None
    ) -> list[VersionedValue]:
        """History entries with ``start <= t <= end`` (either bound optional)."""
        lo = 0 if start is None else bisect.bisect_left(self._times, start)
        hi = len(self._times) if end is None else bisect.bisect_right(self._times, end)
        return self._history[lo:hi]

    def last_modified(self) -> float:
        """Timestamp of the most recent modification."""
        if not self._times:
            raise NoValueError(self.key, float("inf"))
        return self._times[-1]

    def estimated_size_bytes(self) -> int:
        """Rough storage footprint of this record (for Table I's Size column)."""
        size = 64 + len(self.key.encode("utf-8", errors="replace"))
        for entry in self._history:
            size += 16  # timestamp + tag
            value = entry.value
            if value is DELETED:
                size += 8
            elif isinstance(value, str):
                size += len(value.encode("utf-8", errors="replace"))
            elif isinstance(value, (list, tuple)):
                size += 8 * len(value) + sum(
                    len(str(item)) for item in value
                )
            else:
                size += len(str(value))
        return size


class TTKV:
    """The time-travel key-value store.

    The store is written to by loggers (``record_*`` methods) and read by
    the clustering pipeline (``write_events``) and the repair tool
    (``value_at`` / ``versions_between``).
    """

    def __init__(self, *, journal_backend: str = "list") -> None:
        from repro.ttkv.columnar import make_journal  # local to avoid cycle

        self._records: dict[str, KeyRecord] = {}
        self._journal = make_journal(journal_backend)

    # -- recording ---------------------------------------------------------

    def record_write(self, key: str, value: Any, timestamp: float) -> None:
        self._record(key).record_write(value, timestamp)
        self._journal.append(timestamp, key, value)

    def record_delete(self, key: str, timestamp: float) -> None:
        self._record(key).record_delete(timestamp)
        self._journal.append(timestamp, key, DELETED)

    def record_read(self, key: str, timestamp: float) -> None:
        self._record(key).record_read(timestamp)

    def record_events(self, events: Iterable[tuple[float, str, Any]]) -> None:
        """Replay ``(timestamp, key, value)`` modifications in stream order.

        ``value is DELETED`` records a deletion; anything else is a write.
        Events must respect per-key time order, as all record_* calls do.
        """
        for timestamp, key, value in events:
            if value is DELETED:
                self.record_delete(key, timestamp)
            else:
                self.record_write(key, value, timestamp)

    def record_reads(self, key: str, count: int) -> None:
        """Bulk-count reads of ``key`` without per-event overhead.

        The paper's Windows traces contain tens of millions of reads
        (Table I); reads only ever feed counters, so the trace generator
        accounts for them in bulk rather than event-by-event.
        """
        self._record(key).record_reads(count)

    def _record(self, key: str) -> KeyRecord:
        record = self._records.get(key)
        if record is None:
            record = KeyRecord(key)
            self._records[key] = record
        return record

    # -- queries -----------------------------------------------------------

    def keys(self) -> list[str]:
        """All tracked keys, in first-seen order."""
        return list(self._records)

    def modified_keys(self) -> list[str]:
        """Keys with at least one write or deletion.

        The paper excludes never-modified keys from the search: "any key
        that has not been modified from its initial value cannot cause a
        configuration error".
        """
        return [k for k, r in self._records.items() if r.modifications > 0]

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def record_for(self, key: str) -> KeyRecord:
        try:
            return self._records[key]
        except KeyError:
            raise KeyNotTrackedError(key) from None

    def value_at(self, key: str, timestamp: float) -> Any:
        """Live value of ``key`` as of ``timestamp`` (MISSING/DELETED aware)."""
        return self.record_for(key).value_at(timestamp)

    def current_value(self, key: str) -> Any:
        return self.record_for(key).value_at(float("inf"))

    def history(self, key: str) -> tuple[VersionedValue, ...]:
        return self.record_for(key).history

    def write_count(self, key: str) -> int:
        return self.record_for(key).writes

    def modification_count(self, key: str) -> int:
        return self.record_for(key).modifications

    def write_events(self) -> list[tuple[float, str, Any]]:
        """Every modification (write or delete) as ``(t, key, value)``.

        Sorted by timestamp, with ties kept in the order loggers recorded
        them.  This is the input to the sliding-window write-group
        extraction.  The list is served from the append-ordered journal, so
        the call is O(n) copy with no re-sort.
        """
        return self._journal.events()

    @property
    def journal(self) -> EventJournal:
        """The append-ordered modification journal (cursor-based consumption)."""
        return self._journal

    def total_reads(self) -> int:
        return sum(r.reads for r in self._records.values())

    def total_writes(self) -> int:
        return sum(r.writes for r in self._records.values())

    def total_deletes(self) -> int:
        return sum(r.deletes for r in self._records.values())

    def estimated_size_bytes(self) -> int:
        """Approximate store footprint (Table I's Size column).

        Counts the per-key histories only, mirroring what the paper's
        logger persists.  The in-memory journal is an acceleration
        structure (one tuple per modification, sharing the history's key
        and value objects) and is deliberately excluded so Table I numbers
        stay comparable with the paper's.
        """
        return sum(r.estimated_size_bytes() for r in self._records.values())

    def span(self) -> tuple[float, float]:
        """(earliest, latest) modification timestamps across all keys."""
        times = [
            t
            for record in self._records.values()
            for t in (e.timestamp for e in record.history)
        ]
        if not times:
            raise NoValueError("<any>", 0.0)
        return min(times), max(times)

    # -- bulk construction ---------------------------------------------------

    @classmethod
    def from_events(
        cls, events: Iterable[tuple[float, str, Any]]
    ) -> "TTKV":
        """Build a store from ``(timestamp, key, value)`` modification events.

        ``value is DELETED`` records a deletion.  Events may be supplied in
        any order; they are sorted by ``(timestamp, input order)`` — the
        explicit input-order tiebreak keeps equal-timestamp events in the
        order the caller supplied them, independent of how the surrounding
        sort is implemented, and never compares (possibly unorderable)
        values.
        """
        store = cls()
        indexed = sorted(
            enumerate(events), key=lambda pair: (pair[1][0], pair[0])
        )
        store.record_events(event for _, event in indexed)
        return store

    def iter_records(self) -> Iterator[KeyRecord]:
        return iter(self._records.values())

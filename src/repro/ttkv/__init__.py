"""Time-travel key-value store (TTKV).

The paper implements its TTKV on Redis; here it is a pure-Python store with
the same observable behaviour: every key maps to a record holding its write
and deletion counts plus a timestamped history of values, with deletions
recorded in the history via a special sentinel value.
"""

from repro.ttkv.store import DELETED, MISSING, KeyRecord, TTKV, VersionedValue
from repro.ttkv.journal import (
    EventJournal,
    EventSliceView,
    JournalCursor,
    decode_event,
    decode_event_batch,
    encode_event,
    encode_event_batch,
)
from repro.ttkv.columnar import (
    BACKEND_AUTO,
    BACKEND_COLUMNAR,
    BACKEND_LIST,
    BACKEND_NAMES,
    ColumnarJournal,
    ColumnarView,
    columnar_available,
    journal_backend,
    load_columnar,
    make_journal,
    resolve_backend,
    save_columnar,
)
from repro.ttkv.sharding import CATCH_ALL, ShardedJournal
from repro.ttkv.snapshot import RollbackPlan, SnapshotView, rollback_plan
from repro.ttkv.persistence import load_ttkv, save_ttkv

__all__ = [
    "DELETED",
    "MISSING",
    "KeyRecord",
    "TTKV",
    "VersionedValue",
    "EventJournal",
    "EventSliceView",
    "JournalCursor",
    "decode_event",
    "decode_event_batch",
    "encode_event",
    "encode_event_batch",
    "BACKEND_AUTO",
    "BACKEND_COLUMNAR",
    "BACKEND_LIST",
    "BACKEND_NAMES",
    "ColumnarJournal",
    "ColumnarView",
    "columnar_available",
    "journal_backend",
    "load_columnar",
    "make_journal",
    "resolve_backend",
    "save_columnar",
    "CATCH_ALL",
    "ShardedJournal",
    "RollbackPlan",
    "SnapshotView",
    "rollback_plan",
    "load_ttkv",
    "save_ttkv",
]

"""Time-travel key-value store (TTKV).

The paper implements its TTKV on Redis; here it is a pure-Python store with
the same observable behaviour: every key maps to a record holding its write
and deletion counts plus a timestamped history of values, with deletions
recorded in the history via a special sentinel value.
"""

from repro.ttkv.store import DELETED, MISSING, KeyRecord, TTKV, VersionedValue
from repro.ttkv.journal import (
    EventJournal,
    JournalCursor,
    decode_event,
    encode_event,
)
from repro.ttkv.sharding import CATCH_ALL, ShardedJournal
from repro.ttkv.snapshot import RollbackPlan, SnapshotView, rollback_plan
from repro.ttkv.persistence import load_ttkv, save_ttkv

__all__ = [
    "DELETED",
    "MISSING",
    "KeyRecord",
    "TTKV",
    "VersionedValue",
    "EventJournal",
    "JournalCursor",
    "decode_event",
    "encode_event",
    "CATCH_ALL",
    "ShardedJournal",
    "RollbackPlan",
    "SnapshotView",
    "rollback_plan",
    "load_ttkv",
    "save_ttkv",
]

"""Point-in-time views of a TTKV and rollback plans.

The repair tool rolls back *an entire cluster of configuration settings at a
time* to a historical point.  A :class:`RollbackPlan` is the materialised
set of per-key assignments (value, deletion or removal) that brings a live
configuration store to the state the TTKV records for a chosen timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.exceptions import KeyNotTrackedError
from repro.ttkv.store import DELETED, MISSING, TTKV


class SnapshotView(Mapping[str, Any]):
    """Read-only mapping of key -> live value as of a fixed timestamp.

    Keys that were missing or deleted at the snapshot time are absent from
    the mapping, so iteration yields exactly the keys that were live.
    """

    def __init__(self, store: TTKV, timestamp: float) -> None:
        self._store = store
        self._timestamp = timestamp

    @property
    def timestamp(self) -> float:
        return self._timestamp

    def __getitem__(self, key: str) -> Any:
        value = self._store.value_at(key, self._timestamp)
        if value is MISSING or value is DELETED:
            raise KeyError(key)
        return value

    def __iter__(self) -> Iterator[str]:
        for key in self._store.keys():
            value = self._store.value_at(key, self._timestamp)
            if value is not MISSING and value is not DELETED:
                yield key

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def state_of(self, key: str) -> Any:
        """Like ``[]`` but returns the MISSING/DELETED sentinels instead of
        raising, for callers that need to distinguish the two."""
        return self._store.value_at(key, self._timestamp)


@dataclass(frozen=True)
class RollbackPlan:
    """Assignments restoring a set of keys to a historical state.

    ``assignments`` maps each key to either a plain value (write it), the
    :data:`DELETED` sentinel (delete it from the live store) or the
    :data:`MISSING` sentinel (the key did not exist yet; delete it too).
    """

    timestamp: float
    assignments: dict[str, Any]

    def keys(self) -> list[str]:
        return list(self.assignments)

    def apply_to(self, store: "_WritableStore") -> None:
        """Apply the plan to any object exposing ``set``/``delete``."""
        for key, value in self.assignments.items():
            if value is DELETED or value is MISSING:
                store.delete(key)
            else:
                store.set(key, value)

    def __len__(self) -> int:
        return len(self.assignments)


class _WritableStore:
    """Structural protocol for :meth:`RollbackPlan.apply_to` targets."""

    def set(self, key: str, value: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def delete(self, key: str) -> None:  # pragma: no cover
        raise NotImplementedError


def rollback_plan(
    store: TTKV, keys: Iterable[str], timestamp: float
) -> RollbackPlan:
    """Build the plan restoring ``keys`` to their state at ``timestamp``.

    Raises
    ------
    KeyNotTrackedError
        If any requested key has no history in the store at all.
    """
    assignments: dict[str, Any] = {}
    for key in keys:
        if key not in store:
            raise KeyNotTrackedError(key)
        assignments[key] = store.value_at(key, timestamp)
    return RollbackPlan(timestamp=timestamp, assignments=assignments)

"""Append-only JSONL persistence for the TTKV.

The on-disk format is one JSON object per line::

    {"t": 12.0, "k": "apps/word/max_display", "op": "w", "v": 9}
    {"t": 13.0, "k": "apps/word/item_9",      "op": "d"}
    {"t": 13.0, "k": "apps/word/item_1",      "op": "r"}

``op`` is ``w`` (write, with value ``v``), ``d`` (delete) or ``r`` (read).
Values must be JSON-serialisable; the configuration stores only produce
strings, numbers, booleans, ``None`` and lists/dicts thereof, which all are.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

from repro.exceptions import PersistenceError
from repro.ttkv.store import TTKV


def _iter_log_entries(store: TTKV) -> Iterable[dict]:
    for timestamp, key, value in store.write_events():
        from repro.ttkv.store import DELETED  # local to avoid cycle at import

        if value is DELETED:
            yield {"t": timestamp, "k": key, "op": "d"}
        else:
            yield {"t": timestamp, "k": key, "op": "w", "v": value}


def save_ttkv(store: TTKV, path: str | Path) -> int:
    """Write the store's modification log to ``path``; return entry count.

    Read counts are not persisted: the clustering and repair algorithms only
    consume modifications, and the paper's Redis TTKV likewise records reads
    as counters rather than history.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for entry in _iter_log_entries(store):
            fh.write(json.dumps(entry, separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def _parse_line(line: str, lineno: int) -> dict:
    try:
        entry = json.loads(line)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"line {lineno}: invalid JSON: {exc}") from exc
    if not isinstance(entry, dict):
        raise PersistenceError(
            f"line {lineno}: expected object, got {type(entry).__name__}"
        )
    for field in ("t", "k", "op"):
        if field not in entry:
            raise PersistenceError(f"line {lineno}: missing field {field!r}")
    if entry["op"] not in ("w", "d", "r"):
        raise PersistenceError(f"line {lineno}: unknown op {entry['op']!r}")
    if entry["op"] == "w" and "v" not in entry:
        raise PersistenceError(f"line {lineno}: write entry missing value")
    return entry


def load_entries(source: TextIO) -> Iterable[dict]:
    """Parse and validate log entries from an open text stream."""
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        yield _parse_line(line, lineno)


def load_ttkv(path: str | Path) -> TTKV:
    """Rebuild a TTKV by replaying the append-only log at ``path``."""
    path = Path(path)
    store = TTKV()
    with path.open("r", encoding="utf-8") as fh:
        for entry in load_entries(fh):
            op = entry["op"]
            if op == "w":
                store.record_write(entry["k"], entry["v"], float(entry["t"]))
            elif op == "d":
                store.record_delete(entry["k"], float(entry["t"]))
            else:
                store.record_read(entry["k"], float(entry["t"]))
    return store

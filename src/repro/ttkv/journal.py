"""Append-ordered modification journal backing :meth:`TTKV.write_events`.

The clustering pipeline consumes the store's modifications as a single
time-sorted stream.  Historically :meth:`TTKV.write_events` materialised and
re-sorted every event on each call — O(n log n) per clustering run, which
defeats continuous clustering.  The journal keeps the stream sorted as it is
appended instead:

- loggers append in (almost always) non-decreasing time order, which is an
  O(1) amortised list append; events sharing a timestamp stay in arrival
  order — with the collector's 1-second quantisation same-tick writes are
  routine, and their relative order can never change write-group
  extraction, which only cares about the *set* of keys per group;
- a rare append with a strictly older timestamp (e.g. two loggers racing
  across a quantisation boundary) is placed with a bisect insertion; the
  journal remembers where each such insertion landed;
- consumers hold a :class:`JournalCursor` and fetch only the suffix appended
  since their last read.  A cursor raises
  :class:`~repro.exceptions.StaleCursorError` only when an insertion landed
  *inside its consumed prefix* — the consumer's view of history changed and
  it must rebuild from scratch.  Insertions in the unread suffix leave
  cursors valid.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any

from repro.exceptions import StaleCursorError

#: One journal event: ``(timestamp, key, value)`` — value is the DELETED
#: sentinel for deletions, mirroring :meth:`TTKV.write_events`.
Event = tuple[float, str, Any]


@dataclass(frozen=True)
class JournalCursor:
    """Opaque consumption point: events before ``position`` have been read.

    ``epoch`` records how many out-of-order insertions the consumer had
    observed when the cursor was issued; at the next read the journal
    checks only the insertions that happened since, and only those landing
    before ``position`` invalidate the cursor.
    """

    position: int
    epoch: int


class EventJournal:
    """A sorted, append-mostly log of modification events.

    The journal maintains the invariant that ``events()`` is sorted by
    timestamp, with arrival order breaking ties; appends that respect the
    order cost O(1), out-of-order appends cost an insertion and invalidate
    any cursor whose consumed prefix they landed in.

    Each event tuple holds references to the same key and value objects the
    per-key :class:`~repro.ttkv.store.KeyRecord` histories hold, so the
    journal's overhead is one small tuple per modification, not a second
    copy of the payloads.
    """

    __slots__ = ("_events", "_times", "_insertions")

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._times: list[float] = []
        self._insertions: list[int] = []  # where each out-of-order append landed

    def append(self, timestamp: float, key: str, value: Any) -> None:
        """Record one modification."""
        if not self._times or timestamp >= self._times[-1]:
            self._times.append(timestamp)
            self._events.append((timestamp, key, value))
        else:
            # bisect_right keeps arrival order among equal timestamps.
            index = bisect.bisect_right(self._times, timestamp)
            self._times.insert(index, timestamp)
            self._events.insert(index, (timestamp, key, value))
            self._insertions.append(index)

    @property
    def epoch(self) -> int:
        """Total out-of-order insertions so far (0 for a purely ordered log)."""
        return len(self._insertions)

    def events(self) -> list[Event]:
        """The full sorted stream (a fresh list; safe for callers to mutate)."""
        return list(self._events)

    def read(self, cursor: JournalCursor | None = None) -> tuple[list[Event], JournalCursor]:
        """Events appended since ``cursor`` plus the advanced cursor.

        ``None`` reads from the beginning.  Raises
        :class:`~repro.exceptions.StaleCursorError` when an out-of-order
        append has landed inside the cursor's consumed prefix since it was
        issued; the caller should restart with ``cursor=None``.  Insertions
        at or past the cursor's position merely join the unread suffix.
        """
        if cursor is None:
            start = 0
        else:
            for index in self._insertions[cursor.epoch:]:
                if index < cursor.position:
                    raise StaleCursorError(cursor.position)
            start = cursor.position
        return self._events[start:], JournalCursor(
            len(self._events), len(self._insertions)
        )

    def __len__(self) -> int:
        return len(self._events)

"""Append-ordered modification journal backing :meth:`TTKV.write_events`.

The clustering pipeline consumes the store's modifications as a single
time-sorted stream.  Historically :meth:`TTKV.write_events` materialised and
re-sorted every event on each call — O(n log n) per clustering run, which
defeats continuous clustering.  The journal keeps the stream sorted as it is
appended instead:

- loggers append in (almost always) non-decreasing time order, which is an
  O(1) amortised list append; events sharing a timestamp stay in arrival
  order — with the collector's 1-second quantisation same-tick writes are
  routine, and their relative order can never change write-group
  extraction, which only cares about the *set* of keys per group;
- a rare append with a strictly older timestamp (e.g. two loggers racing
  across a quantisation boundary) is placed with a bisect insertion; the
  journal remembers where each such insertion landed;
- consumers hold a :class:`JournalCursor` and fetch only the suffix appended
  since their last read.  A cursor raises
  :class:`~repro.exceptions.StaleCursorError` only when an insertion landed
  *inside its consumed prefix* — the consumer's view of history changed and
  it must rebuild from scratch.  Insertions in the unread suffix leave
  cursors valid;
- consumers that can cheaply undo their most recent work (the streaming
  clustering engine can, for events still inside its provisional trailing
  write group) use :meth:`EventJournal.read_flexible` instead: rather than
  raising, it *re-delivers* the reordered consumed suffix and reports how
  many already-consumed events the caller must first rewind.  This is the
  bounded reorder buffer of ROADMAP.md — a logger race that lands within
  the consumer's trailing window becomes an O(buffer) fixup instead of a
  full rebuild.

Cursors serialise to JSON-safe dicts (:meth:`JournalCursor.to_state`) so a
clustering session can be checkpointed and resumed without re-reading its
consumed prefix; :func:`encode_event`/:func:`decode_event` do the same for
individual events (deletions carried by the DELETED sentinel included).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.exceptions import StaleCursorError

#: One journal event: ``(timestamp, key, value)`` — value is the DELETED
#: sentinel for deletions, mirroring :meth:`TTKV.write_events`.
Event = tuple[float, str, Any]


@dataclass(frozen=True)
class JournalCursor:
    """Opaque consumption point: events before ``position`` have been read.

    ``epoch`` records how many out-of-order insertions the consumer had
    observed when the cursor was issued; at the next read the journal
    checks only the insertions that happened since, and only those landing
    before ``position`` invalidate the cursor.
    """

    position: int
    epoch: int

    def to_state(self) -> dict:
        """JSON-safe representation, for session checkpoints."""
        return {"position": self.position, "epoch": self.epoch}

    @classmethod
    def from_state(cls, state: dict) -> "JournalCursor":
        """Rebuild a cursor from :meth:`to_state` output."""
        position = int(state["position"])
        epoch = int(state["epoch"])
        if position < 0 or epoch < 0:
            raise ValueError(f"cursor state out of range: {state!r}")
        return cls(position=position, epoch=epoch)


def encode_event(event: Event) -> dict:
    """One event as a JSON-safe dict (persistence-log style).

    Deletions (``value is DELETED``) become ``{"t", "k", "op": "d"}``;
    writes carry their value, which must itself be JSON-serialisable — the
    same contract :mod:`repro.ttkv.persistence` imposes on the stores.
    """
    from repro.ttkv.store import DELETED  # local to avoid import cycle

    timestamp, key, value = event
    if value is DELETED:
        return {"t": timestamp, "k": key, "op": "d"}
    return {"t": timestamp, "k": key, "op": "w", "v": value}


def decode_event(state: dict) -> Event:
    """Inverse of :func:`encode_event`."""
    from repro.ttkv.store import DELETED  # local to avoid import cycle

    op = state.get("op")
    if op == "d":
        return (float(state["t"]), state["k"], DELETED)
    if op == "w":
        return (float(state["t"]), state["k"], state["v"])
    raise ValueError(f"unknown event op {op!r}")


def encode_event_batch(events: Sequence[Event]) -> dict:
    """A whole event slice as one columnar, interned hand-off payload.

    The per-event :func:`encode_event` dicts repeat every key string and
    every common value once *per event*; at hand-off volume (a shard slice
    shipped to a worker process each update) that dominates the payload.
    This codec ships each distinct key and value once and refers to them
    by index::

        {"t": [times...], "k": [key idx...], "keys": [distinct keys...],
         "v": [value idx...], "vals": [["d"] | ["w", value], ...]}

    Deletions are carried as ``["d"]`` entries so the DELETED sentinel
    survives the boundary by role, not identity.  Columnar views supply
    the payload straight from their column arrays
    (:meth:`~repro.ttkv.columnar.ColumnarView.batch_payload`); any other
    sequence of events takes the generic interning loop below.
    """
    fast = getattr(events, "batch_payload", None)
    if fast is not None:
        return fast()
    from repro.ttkv.store import DELETED  # local to avoid import cycle

    times: list[float] = []
    key_index: list[int] = []
    val_index: list[int] = []
    keys: list[str] = []
    vals: list[list] = []
    key_ids: dict[str, int] = {}
    val_ids: dict[tuple, int] = {}
    for timestamp, key, value in events:
        kid = key_ids.get(key)
        if kid is None:
            kid = key_ids[key] = len(keys)
            keys.append(key)
        if value is DELETED:
            token: tuple | None = ("d",)
        else:
            # type name disambiguates e.g. True from 1 under dict hashing
            token = ("w", type(value).__name__, value)
        vid = None
        if token is not None:
            try:
                vid = val_ids.get(token)
            except TypeError:  # unhashable value: store uninterned
                token = None
        if vid is None:
            vid = len(vals)
            vals.append(["d"] if value is DELETED else ["w", value])
            if token is not None:
                val_ids[token] = vid
        times.append(timestamp)
        key_index.append(kid)
        val_index.append(vid)
    return {"t": times, "k": key_index, "keys": keys, "v": val_index, "vals": vals}


def decode_event_batch(payload: dict) -> list[Event]:
    """Inverse of :func:`encode_event_batch`."""
    from repro.ttkv.store import DELETED  # local to avoid import cycle

    keys = payload["keys"]
    values = []
    for entry in payload["vals"]:
        if entry[0] == "d":
            values.append(DELETED)
        elif entry[0] == "w":
            values.append(entry[1])
        else:
            raise ValueError(f"unknown event op {entry[0]!r}")
    return [
        (float(timestamp), keys[kid], values[vid])
        for timestamp, kid, vid in zip(payload["t"], payload["k"], payload["v"])
    ]


class EventSliceView(Sequence):
    """Lazy window over a journal's event list — no tail copy.

    ``events_from``/``read``/``read_flexible`` are called once per shard
    per update; copying the tail made every no-op update O(journal).  The
    view pins ``[start, stop)`` positions against the journal's *live*
    list at creation time, so it is free to create and compares equal to
    the list it replaces.  Like its columnar counterpart it is a snapshot
    only until the next out-of-order insertion at or below its range
    (consumers materialise or consume a view within one update).
    """

    __slots__ = ("_events", "_start", "_stop")

    def __init__(self, events: list[Event], start: int, stop: int) -> None:
        self._events = events
        self._start = start
        self._stop = max(start, stop)

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                return self.materialize()[index]
            return EventSliceView(
                self._events, self._start + start, self._start + stop
            )
        i = index
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError("view index out of range")
        return self._events[self._start + i]

    def __iter__(self):
        events = self._events
        for i in range(self._start, self._stop):
            yield events[i]

    def __eq__(self, other):
        if isinstance(other, (str, bytes)) or not isinstance(
            other, (Sequence, list, tuple)
        ):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # views are comparisons-only, like lists

    def __repr__(self) -> str:
        return f"EventSliceView({self.materialize()!r})"

    def materialize(self) -> list[Event]:
        """The window as a plain list (for callers that will mutate it)."""
        return self._events[self._start:self._stop]


class EventJournal:
    """A sorted, append-mostly log of modification events.

    The journal maintains the invariant that ``events()`` is sorted by
    timestamp, with arrival order breaking ties; appends that respect the
    order cost O(1), out-of-order appends cost an insertion and invalidate
    any cursor whose consumed prefix they landed in.

    Each event tuple holds references to the same key and value objects the
    per-key :class:`~repro.ttkv.store.KeyRecord` histories hold, so the
    journal's overhead is one small tuple per modification, not a second
    copy of the payloads.
    """

    __slots__ = ("_events", "_times", "_insertions", "_listeners")

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._times: list[float] = []
        self._insertions: list[int] = []  # where each out-of-order append landed
        self._listeners: list[Callable[[Event], None]] = []

    def append(self, timestamp: float, key: str, value: Any) -> None:
        """Record one modification."""
        self.append_event((timestamp, key, value))

    def append_event(self, event: Event) -> None:
        """Record one modification given as an event tuple.

        Equivalent to :meth:`append` but reuses the caller's tuple, so a
        routing layer fanning one journal out into several does not copy
        every event.
        """
        timestamp = event[0]
        if not self._times or timestamp >= self._times[-1]:
            self._times.append(timestamp)
            self._events.append(event)
        else:
            # bisect_right keeps arrival order among equal timestamps.
            index = bisect.bisect_right(self._times, timestamp)
            self._times.insert(index, timestamp)
            self._events.insert(index, event)
            self._insertions.append(index)
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[Event], None]) -> None:
        """Call ``listener(event)`` after every future append.

        Listeners observe events in arrival order (not sorted order); a
        listener that mirrors events into its own journal reproduces this
        journal's sort by applying the same insertion rule.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[Event], None]) -> None:
        """Detach a listener registered with :meth:`subscribe`."""
        self._listeners.remove(listener)

    @property
    def epoch(self) -> int:
        """Total out-of-order insertions so far (0 for a purely ordered log)."""
        return len(self._insertions)

    def events(self) -> list[Event]:
        """The full sorted stream (a fresh list; safe for callers to mutate)."""
        return list(self._events)

    def events_from(self, position: int) -> EventSliceView:
        """The sorted suffix starting at ``position`` (a zero-copy view).

        This is the "journal slice" a parallel execution layer ships to a
        worker process together with an engine checkpoint: the consumed
        prefix stays behind, only the unread suffix crosses the process
        boundary.  The view is lazy — it is called once per shard per
        update, and copying the tail made every no-op update O(journal).
        """
        if position < 0:
            raise ValueError(f"journal position must be >= 0, got {position}")
        return EventSliceView(self._events, position, len(self._events))

    def reorder_depth(self, cursor: JournalCursor) -> int:
        """How far into ``cursor``'s consumed prefix reorders have reached.

        0 means the consumed prefix is untouched and ``events_from(
        cursor.position)`` is exactly the unread suffix; a positive value
        is the number of consumed events :meth:`read_flexible` would
        re-deliver.  Checkpoint-and-slice protocols use this to detect
        when a plain suffix hand-off is unsound.
        """
        start = cursor.position
        for index in self._insertions[cursor.epoch:]:
            if index < start:
                start = index
        return cursor.position - start

    def event_at(self, index: int) -> Event:
        """The event at one position of the sorted stream (O(1))."""
        return self._events[index]

    def read(
        self, cursor: JournalCursor | None = None
    ) -> tuple[EventSliceView, JournalCursor]:
        """Events appended since ``cursor`` plus the advanced cursor.

        ``None`` reads from the beginning.  Raises
        :class:`~repro.exceptions.StaleCursorError` when an out-of-order
        append has landed inside the cursor's consumed prefix since it was
        issued; the caller should restart with ``cursor=None``.  Insertions
        at or past the cursor's position merely join the unread suffix.
        """
        if cursor is None:
            start = 0
        else:
            for index in self._insertions[cursor.epoch:]:
                if index < cursor.position:
                    raise StaleCursorError(cursor.position)
            start = cursor.position
        return EventSliceView(self._events, start, len(self._events)), JournalCursor(
            len(self._events), len(self._insertions)
        )

    def read_flexible(
        self, cursor: JournalCursor | None = None
    ) -> tuple[int, EventSliceView, JournalCursor]:
        """Reorder-tolerant read: ``(rewound, events, cursor)``.

        Like :meth:`read`, but an out-of-order insertion inside the
        cursor's consumed prefix does not raise.  Instead the read restarts
        at the earliest such insertion point: ``rewound`` counts the
        *previously consumed* events that appear again at the head of
        ``events`` (now re-sorted around the insertions), and the caller
        must first undo whatever it derived from its last ``rewound``
        events.  ``rewound`` is 0 on the ordinary in-order path, so
        ``read_flexible`` is a drop-in replacement for consumers that can
        rewind recent work (the streaming clustering engine can, while the
        affected events still sit in its provisional trailing group).
        """
        if cursor is None:
            start = 0
            rewound = 0
        else:
            start = cursor.position
            for index in self._insertions[cursor.epoch:]:
                if index < start:
                    start = index
            rewound = cursor.position - start
        return rewound, EventSliceView(self._events, start, len(self._events)), (
            JournalCursor(len(self._events), len(self._insertions))
        )

    def __len__(self) -> int:
        return len(self._events)

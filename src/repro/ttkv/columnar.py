"""Columnar event journal: numpy segments, zero-copy slices, mmap resume.

The list-backed :class:`~repro.ttkv.journal.EventJournal` holds one Python
tuple (plus a key string and a value object) per modification.  At fleet
scale — months of events for thousands of machines — that representation
is the memory and (de)serialization wall ROADMAP.md names: every resume
re-decodes the whole history through JSON, every shard slice copies a list
of tuples, and every hand-off pickles the tuples one by one.

:class:`ColumnarJournal` is the array-backed replacement.  Same API, same
observable event stream, different storage:

- **Interned string tables.**  Keys repeat constantly (a config key is
  written many times) and values repeat often (booleans, small enums).
  Each distinct key/value is stored once in a side table; events refer to
  them by ``int32`` id.
- **Sealed segments.**  Events accumulate in a small Python append buffer;
  once it reaches ``segment_size`` entries it is *sealed* into an
  immutable numpy structured array of ``(float64 time, int32 key id,
  int32 value id)`` rows.  Appends therefore stay O(1) amortised, and the
  sealed bulk of the journal is a handful of flat arrays.
- **Zero-copy slices.**  :meth:`ColumnarJournal.events_from` (and
  :meth:`read`/:meth:`read_flexible`) return a :class:`ColumnarView` —
  numpy slice views over the sealed segments plus a snapshot of the
  buffer tail.  Nothing is decoded until a consumer actually touches an
  event, and bulk consumers (windowing, export payloads) use the column
  arrays directly.
- **Memory-mapped persistence.**  :func:`save_columnar` writes the sealed
  columns as one ``.npy`` array plus a JSON side-car for the string
  tables; :func:`load_columnar` memory-maps the array back, so resume is
  an mmap + cursor seek instead of a JSON decode of every event.

**Timestamps are float64**, not the int64 the columnar plan first
sketched: the whole equality contract of this repository compares Python
``float`` timestamps bit-for-bit, and IEEE-754 doubles round-trip those
exactly while int64 would quantise them.

**Out-of-order appends** follow the same bisect rule as the list backend.
An insertion landing in the buffer is a list insert; one landing in a
sealed segment rebuilds just that segment (a rare O(segment) splice —
loggers race across quantisation boundaries occasionally, not often).
Cursor semantics (:class:`~repro.ttkv.journal.JournalCursor`, epochs,
:class:`~repro.exceptions.StaleCursorError`) are identical.  Views are
snapshots: an out-of-order insertion below a view's range leaves the view
showing pre-insertion history, so consumers materialise or consume a view
within the update that produced it (every caller in this repository does).

numpy is a **soft dependency** (``pip install repro-ocasta[fast]``): the
list journal remains the reference implementation and the fallback.
:func:`make_journal` picks the backend — ``"auto"`` silently falls back
to the list journal without numpy, ``"columnar"`` raises a clear error.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import PersistenceError, StaleCursorError
from repro.ttkv.journal import Event, EventJournal, JournalCursor

try:  # soft dependency: the list journal is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via tests' import guard
    _np = None

#: Backend names accepted by :func:`make_journal` and the pipeline layers.
BACKEND_AUTO = "auto"
BACKEND_COLUMNAR = "columnar"
BACKEND_LIST = "list"
BACKEND_NAMES = (BACKEND_AUTO, BACKEND_COLUMNAR, BACKEND_LIST)

#: Events per sealed segment (see :meth:`ColumnarJournal.seal`).
SEGMENT_SIZE = 4096

#: On-disk format version written by :func:`save_columnar`.
COLUMNAR_FORMAT_VERSION = 1


def columnar_available() -> bool:
    """True when numpy is importable and the columnar backend can be used."""
    return _np is not None


def resolve_backend(backend: str) -> str:
    """Normalise a backend name to ``"columnar"`` or ``"list"``.

    ``"auto"`` resolves to columnar when numpy is available and falls back
    to the list journal silently otherwise; an explicit ``"columnar"``
    without numpy raises, mirroring the kernel soft-dep contract.
    """
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown journal backend {backend!r}; expected one of {BACKEND_NAMES}"
        )
    if backend == BACKEND_AUTO:
        return BACKEND_COLUMNAR if columnar_available() else BACKEND_LIST
    if backend == BACKEND_COLUMNAR and not columnar_available():
        raise RuntimeError(
            "journal backend 'columnar' requires numpy; install "
            "repro-ocasta[fast] or use backend='auto'/'list'"
        )
    return backend


def make_journal(
    backend: str = BACKEND_AUTO, *, segment_size: int = SEGMENT_SIZE
):
    """Construct a journal for ``backend`` (see :func:`resolve_backend`)."""
    if resolve_backend(backend) == BACKEND_COLUMNAR:
        return ColumnarJournal(segment_size=segment_size)
    return EventJournal()


def journal_backend(journal: Any) -> str:
    """The backend name of a live journal instance."""
    return (
        BACKEND_COLUMNAR if isinstance(journal, ColumnarJournal) else BACKEND_LIST
    )


def _event_dtype():
    return _np.dtype([("t", "<f8"), ("k", "<i4"), ("v", "<i4")])


class _KeyTable:
    """Append-only str <-> int32 intern table."""

    __slots__ = ("_names", "_ids")

    def __init__(self) -> None:
        self._names: list[str] = []
        self._ids: dict[str, int] = {}

    def intern(self, name: str) -> int:
        ident = self._ids.get(name)
        if ident is None:
            ident = len(self._names)
            self._ids[name] = ident
            self._names.append(name)
        return ident

    def value(self, ident: int) -> str:
        return self._names[ident]

    def to_state(self) -> list[str]:
        return list(self._names)

    @classmethod
    def from_state(cls, names: Iterable[str]) -> "_KeyTable":
        table = cls()
        for name in names:
            table.intern(str(name))
        return table

    def __len__(self) -> int:
        return len(self._names)


class _ValueTable:
    """Append-only value intern table keyed by a JSON canonical token.

    Values follow the persistence contract (JSON-serialisable, plus the
    DELETED sentinel).  Interning preserves the *original* object — a
    decode returns the same object that was appended, so non-JSON types
    that happen to serialise (tuples never do here: the token includes the
    type name) keep their identity.  Objects JSON cannot serialise are
    stored uninterned (identity-keyed) and only fail at :func:`save_columnar`
    time, matching where the list backend's JSON persistence fails.
    """

    __slots__ = ("_objects", "_tokens", "_ids", "_by_identity")

    def __init__(self) -> None:
        self._objects: list[Any] = []
        self._tokens: list[str | None] = []
        self._ids: dict[str, int] = {}
        self._by_identity: dict[int, int] = {}

    @staticmethod
    def _token(value: Any) -> str | None:
        from repro.ttkv.store import DELETED  # local to avoid import cycle

        if value is DELETED:
            return "d"
        try:
            return f"w:{type(value).__name__}:{json.dumps(value, sort_keys=True)}"
        except (TypeError, ValueError):
            return None

    def intern(self, value: Any) -> int:
        token = self._token(value)
        if token is not None:
            ident = self._ids.get(token)
            if ident is not None:
                return ident
        else:
            ident = self._by_identity.get(id(value))
            if ident is not None:
                return ident
        ident = len(self._objects)
        self._objects.append(value)
        self._tokens.append(token)
        if token is not None:
            self._ids[token] = ident
        else:
            # the table holds a reference, so id() stays stable
            self._by_identity[id(value)] = ident
        return ident

    def value(self, ident: int) -> Any:
        return self._objects[ident]

    def to_state(self) -> list[list]:
        from repro.ttkv.store import DELETED  # local to avoid import cycle

        entries: list[list] = []
        for value, token in zip(self._objects, self._tokens):
            if value is DELETED:
                entries.append(["d"])
            elif token is None:
                raise PersistenceError(
                    f"journal value {value!r} is not JSON-serialisable"
                )
            else:
                entries.append(["w", value])
        return entries

    @classmethod
    def from_state(cls, entries: Iterable[Sequence]) -> "_ValueTable":
        from repro.ttkv.store import DELETED  # local to avoid import cycle

        table = cls()
        for entry in entries:
            if entry[0] == "d":
                table.intern(DELETED)
            elif entry[0] == "w":
                table.intern(entry[1])
            else:
                raise PersistenceError(f"unknown value entry op {entry[0]!r}")
        return table

    def __len__(self) -> int:
        return len(self._objects)


class ColumnarView(Sequence):
    """Zero-copy window over a :class:`ColumnarJournal` slice.

    Sealed portions are numpy slice views (no copy); the buffer tail is a
    snapshot of its int-id columns.  Events decode lazily through the
    journal's intern tables.  Compares equal to any sequence holding the
    same event tuples, so view-returning reads stay drop-in for list
    consumers.
    """

    __slots__ = ("_journal", "_chunks", "_offsets", "_length")

    def __init__(self, journal: "ColumnarJournal", chunks: list) -> None:
        self._journal = journal
        self._chunks = chunks
        offsets = []
        total = 0
        for chunk in chunks:
            offsets.append(total)
            total += _chunk_len(chunk)
        self._offsets = offsets
        self._length = total

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                return self.materialize()[index]
            return self._slice(start, stop)
        i = index
        if i < 0:
            i += self._length
        if not 0 <= i < self._length:
            raise IndexError("view index out of range")
        at = bisect.bisect_right(self._offsets, i) - 1
        return self._journal._decode_chunk_row(self._chunks[at], i - self._offsets[at])

    def __iter__(self):
        for chunk in self._chunks:
            yield from self._journal._decode_chunk(chunk)

    def __eq__(self, other):
        if isinstance(other, (str, bytes)) or not isinstance(
            other, (Sequence, list, tuple)
        ):
            return NotImplemented
        if len(other) != self._length:
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # views are comparisons-only, like lists

    def __repr__(self) -> str:
        return f"ColumnarView({self.materialize()!r})"

    def _slice(self, start: int, stop: int) -> "ColumnarView":
        chunks: list = []
        remaining_start, remaining = start, max(0, stop - start)
        for chunk in self._chunks:
            if remaining <= 0:
                break
            size = _chunk_len(chunk)
            if remaining_start >= size:
                remaining_start -= size
                continue
            take = min(size - remaining_start, remaining)
            chunks.append(_chunk_slice(chunk, remaining_start, remaining_start + take))
            remaining -= take
            remaining_start = 0
        return ColumnarView(self._journal, chunks)

    # -- bulk access ---------------------------------------------------------

    def materialize(self) -> list[Event]:
        """The slice as a plain list of event tuples (one bulk decode)."""
        out: list[Event] = []
        for chunk in self._chunks:
            out.extend(self._journal._decode_chunk(chunk))
        return out

    def columnar_parts(self):
        """``(times, key_ids, key_table)`` column arrays for bulk consumers.

        ``times`` is a float64 array and ``key_ids`` an int array covering
        the whole view (concatenated across chunks; single-chunk views pay
        no copy), with ``key_table`` mapping ids to key strings.  Returns
        ``None`` when numpy is unavailable (never, in practice: the view
        exists only with numpy).
        """
        if _np is None:  # pragma: no cover - defensive
            return None
        times, kids = [], []
        for chunk in self._chunks:
            if isinstance(chunk, tuple):
                times.append(_np.asarray(chunk[0], dtype=_np.float64))
                kids.append(_np.asarray(chunk[1], dtype=_np.int64))
            else:
                times.append(chunk["t"])
                kids.append(chunk["k"])
        if not times:
            empty = _np.empty(0, dtype=_np.float64)
            return empty, _np.empty(0, dtype=_np.int64), self._journal._keys
        if len(times) == 1:
            return times[0], kids[0], self._journal._keys
        return (
            _np.concatenate(times),
            _np.concatenate(kids),
            self._journal._keys,
        )

    def batch_payload(self) -> dict:
        """Columnar hand-off payload (see :func:`repro.ttkv.journal.encode_event_batch`).

        Local intern tables are rebuilt over just the slice, so the payload
        ships each distinct key/value once regardless of journal size.
        """
        from repro.ttkv.store import DELETED  # local to avoid import cycle

        times: list[float] = []
        kid_parts = []
        vid_parts = []
        for chunk in self._chunks:
            if isinstance(chunk, tuple):
                times.extend(chunk[0])
                kid_parts.append(_np.asarray(chunk[1], dtype=_np.int64))
                vid_parts.append(_np.asarray(chunk[2], dtype=_np.int64))
            else:
                times.extend(chunk["t"].tolist())
                kid_parts.append(chunk["k"].astype(_np.int64, copy=False))
                vid_parts.append(chunk["v"].astype(_np.int64, copy=False))
        if not kid_parts:
            return {"t": [], "k": [], "keys": [], "v": [], "vals": []}
        kids = kid_parts[0] if len(kid_parts) == 1 else _np.concatenate(kid_parts)
        vids = vid_parts[0] if len(vid_parts) == 1 else _np.concatenate(vid_parts)
        uniq_k, local_k = _np.unique(kids, return_inverse=True)
        uniq_v, local_v = _np.unique(vids, return_inverse=True)
        key_of = self._journal._keys.value
        val_of = self._journal._values.value
        vals: list[list] = []
        for ident in uniq_v.tolist():
            value = val_of(ident)
            vals.append(["d"] if value is DELETED else ["w", value])
        return {
            "t": times,
            "k": local_k.tolist(),
            "keys": [key_of(ident) for ident in uniq_k.tolist()],
            "v": local_v.tolist(),
            "vals": vals,
        }


def _chunk_len(chunk) -> int:
    return len(chunk[0]) if isinstance(chunk, tuple) else len(chunk)


def _chunk_slice(chunk, start: int, stop: int):
    if isinstance(chunk, tuple):
        return (chunk[0][start:stop], chunk[1][start:stop], chunk[2][start:stop])
    return chunk[start:stop]


class ColumnarJournal:
    """Array-backed :class:`~repro.ttkv.journal.EventJournal` drop-in.

    Same API and observable behaviour (see the module docstring for the
    storage model).  ``segment_size`` tunes the append-buffer seal
    threshold; tests shrink it to force multi-segment layouts.
    """

    __slots__ = (
        "_segments",
        "_starts",
        "_seg_last",
        "_sealed_len",
        "_buf_t",
        "_buf_k",
        "_buf_v",
        "_keys",
        "_values",
        "_insertions",
        "_listeners",
        "_last_time",
        "_segment_size",
    )

    def __init__(self, *, segment_size: int = SEGMENT_SIZE) -> None:
        if _np is None:
            raise RuntimeError(
                "ColumnarJournal requires numpy; install repro-ocasta[fast] "
                "or use the list-backed EventJournal"
            )
        if segment_size < 1:
            raise ValueError(f"segment_size must be >= 1, got {segment_size}")
        self._segments: list = []  # sealed structured arrays (immutable)
        self._starts: list[int] = []  # global offset of each segment
        self._seg_last: list[float] = []  # last timestamp per segment
        self._sealed_len = 0
        self._buf_t: list[float] = []
        self._buf_k: list[int] = []
        self._buf_v: list[int] = []
        self._keys = _KeyTable()
        self._values = _ValueTable()
        self._insertions: list[int] = []
        self._listeners: list[Callable[[Event], None]] = []
        self._last_time: float | None = None
        self._segment_size = segment_size

    # -- appends -------------------------------------------------------------

    def append(self, timestamp: float, key: str, value: Any) -> None:
        """Record one modification."""
        self.append_event((timestamp, key, value))

    def append_event(self, event: Event) -> None:
        """Record one modification given as an event tuple."""
        timestamp = event[0]
        kid = self._keys.intern(event[1])
        vid = self._values.intern(event[2])
        if self._last_time is None or timestamp >= self._last_time:
            self._buf_t.append(timestamp)
            self._buf_k.append(kid)
            self._buf_v.append(vid)
            self._last_time = timestamp
            if len(self._buf_t) >= self._segment_size:
                self.seal()
        else:
            self._insert(timestamp, kid, vid)
        for listener in self._listeners:
            listener(event)

    def _insert(self, timestamp: float, kid: int, vid: int) -> None:
        """Out-of-order append: bisect placement, same rule as the list journal."""
        sealed_last = self._seg_last[-1] if self._seg_last else None
        if self._buf_t and (sealed_last is None or timestamp >= sealed_last):
            # lands in the append buffer: a plain list insert
            local = bisect.bisect_right(self._buf_t, timestamp)
            self._buf_t.insert(local, timestamp)
            self._buf_k.insert(local, kid)
            self._buf_v.insert(local, vid)
            self._insertions.append(self._sealed_len + local)
            if len(self._buf_t) >= self._segment_size:
                self.seal()
            return
        # lands in a sealed segment: splice-rebuild just that segment
        at = bisect.bisect_right(self._seg_last, timestamp)
        segment = self._segments[at]
        local = int(_np.searchsorted(segment["t"], timestamp, side="right"))
        row = _np.zeros(1, dtype=_event_dtype())
        row["t"] = timestamp
        row["k"] = kid
        row["v"] = vid
        rebuilt = _np.concatenate((segment[:local], row, segment[local:]))
        rebuilt.setflags(write=False)
        self._segments[at] = rebuilt
        self._seg_last[at] = float(rebuilt["t"][-1])
        for later in range(at + 1, len(self._starts)):
            self._starts[later] += 1
        self._insertions.append(self._starts[at] + local)
        self._sealed_len += 1

    def seal(self) -> None:
        """Freeze the append buffer into an immutable sealed segment."""
        if not self._buf_t:
            return
        count = len(self._buf_t)
        segment = _np.empty(count, dtype=_event_dtype())
        segment["t"] = self._buf_t
        segment["k"] = self._buf_k
        segment["v"] = self._buf_v
        segment.setflags(write=False)
        self._starts.append(self._sealed_len)
        self._segments.append(segment)
        self._seg_last.append(float(segment["t"][-1]))
        self._sealed_len += count
        self._buf_t.clear()
        self._buf_k.clear()
        self._buf_v.clear()

    # -- listeners -----------------------------------------------------------

    def subscribe(self, listener: Callable[[Event], None]) -> None:
        """Call ``listener(event)`` after every future append (arrival order)."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[Event], None]) -> None:
        """Detach a listener registered with :meth:`subscribe`."""
        self._listeners.remove(listener)

    # -- reads ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Total out-of-order insertions so far (0 for a purely ordered log)."""
        return len(self._insertions)

    @property
    def segment_count(self) -> int:
        """Sealed segments so far (excludes the append buffer)."""
        return len(self._segments)

    def events(self) -> list[Event]:
        """The full sorted stream (a fresh list; safe for callers to mutate)."""
        return self._view(0, len(self)).materialize()

    def events_from(self, position: int) -> ColumnarView:
        """The sorted suffix starting at ``position`` as a zero-copy view."""
        if position < 0:
            raise ValueError(f"journal position must be >= 0, got {position}")
        return self._view(position, len(self))

    def reorder_depth(self, cursor: JournalCursor) -> int:
        """How far into ``cursor``'s consumed prefix reorders have reached."""
        start = cursor.position
        for index in self._insertions[cursor.epoch:]:
            if index < start:
                start = index
        return cursor.position - start

    def event_at(self, index: int) -> Event:
        """The event at one position of the sorted stream (O(log segments))."""
        total = len(self)
        if index < 0:
            index += total
        if not 0 <= index < total:
            raise IndexError("journal index out of range")
        if index >= self._sealed_len:
            local = index - self._sealed_len
            return (
                self._buf_t[local],
                self._keys.value(self._buf_k[local]),
                self._values.value(self._buf_v[local]),
            )
        at = bisect.bisect_right(self._starts, index) - 1
        return self._decode_row(self._segments[at][index - self._starts[at]])

    def read(
        self, cursor: JournalCursor | None = None
    ) -> tuple[ColumnarView, JournalCursor]:
        """Events appended since ``cursor`` plus the advanced cursor."""
        if cursor is None:
            start = 0
        else:
            for index in self._insertions[cursor.epoch:]:
                if index < cursor.position:
                    raise StaleCursorError(cursor.position)
            start = cursor.position
        total = len(self)
        return self._view(start, total), JournalCursor(total, len(self._insertions))

    def read_flexible(
        self, cursor: JournalCursor | None = None
    ) -> tuple[int, ColumnarView, JournalCursor]:
        """Reorder-tolerant read: ``(rewound, events, cursor)``."""
        if cursor is None:
            start = 0
            rewound = 0
        else:
            start = cursor.position
            for index in self._insertions[cursor.epoch:]:
                if index < start:
                    start = index
            rewound = cursor.position - start
        total = len(self)
        return (
            rewound,
            self._view(start, total),
            JournalCursor(total, len(self._insertions)),
        )

    def __len__(self) -> int:
        return self._sealed_len + len(self._buf_t)

    # -- decoding helpers (shared with ColumnarView) -------------------------

    def _decode_row(self, row) -> Event:
        return (
            float(row["t"]),
            self._keys.value(int(row["k"])),
            self._values.value(int(row["v"])),
        )

    def _decode_chunk(self, chunk) -> list[Event]:
        key_of = self._keys.value
        val_of = self._values.value
        if isinstance(chunk, tuple):
            times, kids, vids = chunk
            return [
                (t, key_of(k), val_of(v)) for t, k, v in zip(times, kids, vids)
            ]
        return [
            (t, key_of(k), val_of(v))
            for t, k, v in zip(
                chunk["t"].tolist(), chunk["k"].tolist(), chunk["v"].tolist()
            )
        ]

    def _decode_chunk_row(self, chunk, local: int) -> Event:
        if isinstance(chunk, tuple):
            return (
                chunk[0][local],
                self._keys.value(chunk[1][local]),
                self._values.value(chunk[2][local]),
            )
        return self._decode_row(chunk[local])

    def _view(self, start: int, stop: int) -> ColumnarView:
        chunks: list = []
        stop = min(stop, len(self))
        if start < self._sealed_len:
            first = bisect.bisect_right(self._starts, start) - 1
            for at in range(max(first, 0), len(self._segments)):
                seg_start = self._starts[at]
                segment = self._segments[at]
                seg_stop = seg_start + len(segment)
                if seg_start >= stop:
                    break
                lo = max(start, seg_start) - seg_start
                hi = min(stop, seg_stop) - seg_start
                if lo < hi:
                    chunks.append(segment[lo:hi])
        if stop > self._sealed_len:
            lo = max(start - self._sealed_len, 0)
            hi = stop - self._sealed_len
            if lo < hi:
                chunks.append(
                    (
                        self._buf_t[lo:hi],
                        self._buf_k[lo:hi],
                        self._buf_v[lo:hi],
                    )
                )
        return ColumnarView(self, chunks)


# -- persistence --------------------------------------------------------------


def save_columnar(journal, path: str) -> None:
    """Persist a journal's event stream as columnar files.

    Writes the sealed column array to ``path`` (``.npy`` format) and the
    intern tables plus reorder history to ``path + ".meta"`` (JSON).
    Accepts either backend: a list journal is converted on the way out, a
    :class:`ColumnarJournal` is sealed and written directly.  Values must
    be JSON-serialisable — the same contract
    :mod:`repro.ttkv.persistence` imposes.
    """
    if _np is None:
        raise RuntimeError(
            "columnar persistence requires numpy; install repro-ocasta[fast]"
        )
    if not isinstance(journal, ColumnarJournal):
        converted = ColumnarJournal()
        for event in journal.events():
            converted.append_event(event)
        converted._insertions = list(journal._insertions)
        journal = converted
    journal.seal()
    if journal._segments:
        data = (
            journal._segments[0]
            if len(journal._segments) == 1
            else _np.concatenate(journal._segments)
        )
    else:
        data = _np.empty(0, dtype=_event_dtype())
    meta = {
        "version": COLUMNAR_FORMAT_VERSION,
        "count": int(len(data)),
        "keys": journal._keys.to_state(),
        "vals": journal._values.to_state(),
        "insertions": list(journal._insertions),
    }
    with open(path, "wb") as handle:
        _np.save(handle, data)
    with open(path + ".meta", "w", encoding="utf-8") as handle:
        json.dump(meta, handle, separators=(",", ":"))


def load_columnar(
    path: str, *, mmap: bool = True, segment_size: int = SEGMENT_SIZE
) -> ColumnarJournal:
    """Reopen a journal written by :func:`save_columnar`.

    With ``mmap=True`` (default) the event columns stay on disk and are
    memory-mapped — resume touches only the pages a cursor seek needs,
    instead of JSON-decoding every event.  The loaded array becomes one
    sealed read-only segment; future appends buffer and seal as usual.
    """
    if _np is None:
        raise RuntimeError(
            "columnar persistence requires numpy; install repro-ocasta[fast]"
        )
    try:
        with open(path + ".meta", "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, ValueError) as error:
        raise PersistenceError(f"unreadable columnar metadata: {error}") from error
    if meta.get("version") != COLUMNAR_FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported columnar format version {meta.get('version')!r}"
        )
    try:
        data = _np.load(path, mmap_mode="r" if mmap else None)
    except (OSError, ValueError) as error:
        raise PersistenceError(f"unreadable columnar data: {error}") from error
    expected = {"t", "k", "v"}
    if data.dtype.names is None or set(data.dtype.names) != expected:
        raise PersistenceError(
            f"columnar data has unexpected dtype {data.dtype!r}"
        )
    if len(data) != int(meta.get("count", -1)):
        raise PersistenceError(
            f"columnar data length {len(data)} does not match metadata "
            f"count {meta.get('count')!r}"
        )
    if not mmap:
        data = data.copy()
        data.setflags(write=False)
    journal = ColumnarJournal(segment_size=segment_size)
    journal._keys = _KeyTable.from_state(meta["keys"])
    journal._values = _ValueTable.from_state(meta["vals"])
    journal._insertions = [int(index) for index in meta["insertions"]]
    if len(data):
        journal._segments = [data]
        journal._starts = [0]
        journal._seg_last = [float(data["t"][-1])]
        journal._sealed_len = len(data)
        journal._last_time = journal._seg_last[0]
    return journal

"""Exception hierarchy for the Ocasta reproduction.

All library-specific errors derive from :class:`OcastaError` so callers can
catch one base type at API boundaries.
"""

from __future__ import annotations


class OcastaError(Exception):
    """Base class for all errors raised by this library."""


class KeyNotTrackedError(OcastaError, KeyError):
    """A TTKV operation referenced a key with no recorded history."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key {key!r} has no recorded history")
        self.key = key


class NoValueError(OcastaError, LookupError):
    """A key has no live value at the requested point in time."""

    def __init__(self, key: str, timestamp: float) -> None:
        super().__init__(f"key {key!r} has no value at t={timestamp}")
        self.key = key
        self.timestamp = timestamp


class StoreError(OcastaError):
    """A configuration-store operation failed (bad path, bad type, ...)."""


class ParseError(StoreError):
    """A configuration file could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class SchemaError(OcastaError):
    """An application configuration schema is inconsistent."""


class UnknownActionError(OcastaError):
    """A trial referenced a UI action the application does not implement."""

    def __init__(self, app: str, action: str) -> None:
        super().__init__(f"application {app!r} has no UI action {action!r}")
        self.app = app
        self.action = action


class ReplayError(OcastaError):
    """Deterministic replay of a trial failed."""


class SandboxError(OcastaError):
    """A sandboxed execution attempted to escape or was misused."""


class SearchExhaustedError(OcastaError):
    """The repair search examined every candidate without finding a fix."""


class InjectionError(OcastaError):
    """A configuration error could not be injected into the trace/TTKV."""


class PersistenceError(OcastaError):
    """The TTKV append-only log is corrupt or unreadable."""


class CheckpointError(OcastaError, ValueError):
    """A session or fleet checkpoint could not be loaded.

    Subclasses :class:`ValueError` so pre-existing callers that guarded
    checkpoint loads with ``except ValueError`` keep working; new code
    should catch this type (or :class:`OcastaError`) instead.
    """


class CorruptCheckpointError(CheckpointError):
    """A checkpoint file is truncated, unparseable or fails its checksum.

    Raised instead of the bare ``json.JSONDecodeError`` / ``KeyError``
    the underlying parse would surface, with the file and the nature of
    the damage in the message.  The fleet checkpoint store additionally
    quarantines the damaged generation and falls back to an older one
    before giving up with this error.
    """


class StaleCursorError(OcastaError):
    """A journal cursor was invalidated by an out-of-order append.

    Consumers recover by discarding their incremental state and re-reading
    the journal from the beginning.
    """

    def __init__(self, position: int) -> None:
        super().__init__(
            f"journal cursor at position {position} predates a reordering; "
            "re-read from the start"
        )
        self.position = position

"""The repair controller: Ocasta's recovery mode, end to end.

Given an application with an error, its recorded TTKV trace and a
user-provided trial, the controller clusters the application's settings,
sorts the clusters, enumerates (cluster, historical version) candidates
with DFS or BFS, and drives the repair engine through sandboxed trial
executions until a screenshot shows a fixed application.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import SimulatedApplication
from repro.common.clock import SimClock
from repro.core.cluster_model import Cluster, ClusterSet
from repro.core.pipeline import (
    DEFAULT_CORRELATION_THRESHOLD,
    DEFAULT_WINDOW,
    singleton_clusters,
)
from repro.core.dendro_repair import REPAIR_SPLICE
from repro.core.hac_kernel import KERNEL_AUTO
from repro.core.sharded import ShardedPipeline
from repro.core.repair import FixOracle, RepairEngine, RepairOutcome
from repro.core.search import (
    SearchStrategy,
    candidate_versions,
    search_order,
    total_candidates,
)
from repro.core.sorting import SORT_MODCOUNT, sort_clusters_for_search
from repro.repair.sandbox import Sandbox
from repro.repair.trial import Trial
from repro.ttkv.store import TTKV


@dataclass
class RepairReport:
    """Outcome of one recovery run plus the clustering context."""

    outcome: RepairOutcome
    cluster_set: ClusterSet
    searched_candidates: int
    strategy: SearchStrategy

    @property
    def fixed(self) -> bool:
        return self.outcome.fixed

    @property
    def offending_cluster(self) -> Cluster | None:
        if self.outcome.fix_candidate is None:
            return None
        return self.outcome.fix_candidate.cluster

    @property
    def offending_cluster_size(self) -> int | None:
        cluster = self.offending_cluster
        return None if cluster is None else len(cluster)


class OcastaRepairTool:
    """Recovery-mode Ocasta for one application.

    Parameters
    ----------
    app:
        The live (misconfigured) application.
    ttkv:
        The recorded trace covering the application's history.
    window, correlation_threshold:
        Clustering parameters (paper defaults: 1 s, 2).  "In practice, a
        user can adjust these settings in case they fail to cluster the
        configuration settings that cause the configuration problem."
    use_clustering:
        ``False`` gives the Ocasta-NoClust baseline of Table IV.
    executor:
        Optional :class:`~repro.core.executors.ShardExecutor` driving the
        clustering session's shard updates (the tool has one shard, so
        this mainly matters when many tools share one pool).  Caller
        owned; the tool never closes it.
    repair_mode:
        Dirty-component repair strategy for the clustering session —
        ``"splice"`` (default) keeps cached dendrogram merges below the
        first affected linkage distance, ``"rebuild"`` re-agglomerates
        from singletons (see :mod:`repro.core.dendro_repair`).  Both
        yield identical clusters; ``last_update_stats`` shows the work
        difference.
    kernel:
        Agglomeration implementation selector
        (:mod:`repro.core.hac_kernel`): ``"auto"`` (default) runs large
        components on the numpy kernel when numpy is installed,
        ``"numpy"``/``"python"`` force one path.  Identical clusters
        either way; ``last_update_stats.kernel_components`` shows the
        dispatch.
    """

    def __init__(
        self,
        app: SimulatedApplication,
        ttkv: TTKV,
        window: float = DEFAULT_WINDOW,
        correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
        sort_policy: str = SORT_MODCOUNT,
        use_clustering: bool = True,
        clock: SimClock | None = None,
        executor=None,
        repair_mode: str = REPAIR_SPLICE,
        kernel: str = KERNEL_AUTO,
    ) -> None:
        self.app = app
        self.ttkv = ttkv
        self.window = window
        self.correlation_threshold = correlation_threshold
        self.sort_policy = sort_policy
        self.use_clustering = use_clustering
        self.clock = clock if clock is not None else SimClock()
        self.executor = executor
        self.repair_mode = repair_mode
        self.kernel = kernel
        self._pipeline: ShardedPipeline | None = None

    @property
    def last_update_stats(self):
        """The clustering session's :class:`~repro.core.sharded.UpdateStats`
        from the most recent :meth:`build_clusters` (``None`` before the
        first run or under ``use_clustering=False``)."""
        return None if self._pipeline is None else self._pipeline.last_stats

    def build_clusters(self) -> ClusterSet:
        """Cluster this application's settings from the recorded trace.

        The tool keeps a :class:`ShardedPipeline` session alive across
        repair runs — one shard on the application's key prefix, no
        catch-all, so foreign applications' writes never even reach the
        engine: after :meth:`apply_fix` writes the rollback through the
        logger (Ocasta "returns back to recording mode"), the next repair
        only consumes the newly recorded events instead of re-clustering
        the whole trace.  The user may retune ``window`` or
        ``correlation_threshold`` between runs; that restarts the session.
        """
        if not self.use_clustering:
            return singleton_clusters(self.ttkv, key_filter=self.app.key_prefix)
        if self._pipeline is None:
            self._pipeline = ShardedPipeline(
                self.ttkv,
                shard_prefixes=(self.app.key_prefix,),
                window=self.window,
                correlation_threshold=self.correlation_threshold,
                catch_all=False,
                executor=self.executor,
                repair_mode=self.repair_mode,
                kernel=self.kernel,
            )
        else:
            # the pipeline detects retuned parameters and restarts itself
            self._pipeline.window = self.window
            self._pipeline.correlation_threshold = self.correlation_threshold
            self._pipeline.executor = self.executor
            self._pipeline.repair_mode = self.repair_mode
            self._pipeline.kernel = self.kernel
        return self._pipeline.update()

    def repair(
        self,
        trial: Trial,
        is_fixed: FixOracle,
        start_time: float | None = None,
        end_time: float | None = None,
        strategy: SearchStrategy = SearchStrategy.DFS,
        exhaustive: bool = False,
    ) -> RepairReport:
        """Run the recovery search.

        ``start_time``/``end_time`` bound the historical values searched —
        the paper's optional user-supplied hints on when the error could
        have been introduced.  ``is_fixed`` stands in for the user
        examining the screenshot gallery.
        """
        cluster_set = self.build_clusters()
        ordered = sort_clusters_for_search(
            cluster_set, self.ttkv, policy=self.sort_policy
        )
        versions = candidate_versions(
            self.ttkv, ordered, start=start_time, end=end_time
        )
        candidates = search_order(ordered, versions, strategy=strategy)

        sandbox = Sandbox(self.app)
        engine = RepairEngine(
            execute_trial=lambda plan: sandbox.execute(trial, plan),
            is_fixed=is_fixed,
            clock=self.clock,
            trial_cost=self.app.trial_cost_seconds,
        )
        outcome = engine.run(candidates, exhaustive=exhaustive)
        return RepairReport(
            outcome=outcome,
            cluster_set=cluster_set,
            searched_candidates=total_candidates(versions),
            strategy=strategy,
        )

    def apply_fix(self, report: RepairReport) -> None:
        """Permanently roll the live store back to the fixing version.

        The writes go through the normal store interface, so an attached
        logger records them — Ocasta "returns back to recording mode".
        """
        plan = report.outcome.fix_plan
        if plan is None:
            raise ValueError("report contains no fix to apply")
        for canonical, value in plan.assignments.items():
            local = self.app.setting_name(canonical)
            store_key = self.app.store_key(local)
            from repro.ttkv.store import DELETED, MISSING

            if value is DELETED or value is MISSING:
                self.app.store.delete(store_key)
            else:
                self.app.store.set(store_key, value)

"""Trial replay: strict (the paper's prototype) and adaptive (its
suggested extension).

The paper's replay tool re-executes recorded UI actions against the
application and "deterministically replays trials and thus does not
guarantee the same trial can be replayed correctly across different
configuration settings.  A robust adaptive replay can probably address
this limitation."  :func:`replay_trial` is the strict prototype;
:class:`AdaptiveReplayer` implements the suggested extension — failing
steps are skipped (and counted) instead of aborting the trial, so a
rollback that removes a menu the trial clicks on still yields a usable
screenshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import Screenshot, SimulatedApplication
from repro.exceptions import ReplayError, UnknownActionError
from repro.repair.trial import Trial


def _check_target(app: SimulatedApplication, trial: Trial) -> None:
    if trial.app_name != app.name:
        raise ReplayError(
            f"trial was recorded against {trial.app_name!r}, "
            f"cannot replay on {app.name!r}"
        )


def replay_trial(app: SimulatedApplication, trial: Trial) -> Screenshot:
    """Strictly replay ``trial`` on ``app``; capture the final screenshot.

    Raises
    ------
    ReplayError
        When the trial targets a different application or references an
        action the application does not implement.
    """
    _check_target(app, trial)
    for action, params in trial.actions:
        try:
            app.perform(action, **params)
        except UnknownActionError as exc:
            raise ReplayError(str(exc)) from exc
        except TypeError as exc:
            raise ReplayError(
                f"action {action!r} rejected parameters {params!r}: {exc}"
            ) from exc
    return app.render()


@dataclass
class AdaptiveReplayer:
    """Replay that degrades gracefully when a step cannot execute.

    Each failing step is skipped and recorded in :attr:`skipped`; the
    replay still produces a screenshot as long as at least one step ran,
    so the repair search can judge the rollback instead of aborting.
    """

    #: (action, reason) for each step that could not be executed
    skipped: list[tuple[str, str]] = field(default_factory=list)

    def replay(self, app: SimulatedApplication, trial: Trial) -> Screenshot:
        _check_target(app, trial)
        executed = 0
        self.skipped = []
        for action, params in trial.actions:
            try:
                app.perform(action, **params)
                executed += 1
            except (UnknownActionError, TypeError) as exc:
                self.skipped.append((action, str(exc)))
        if executed == 0:
            raise ReplayError(
                "adaptive replay could not execute any step of the trial"
            )
        return app.render()

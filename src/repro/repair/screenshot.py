"""Screenshot capture and the de-duplicating gallery.

"After each trial execution, the tool takes a screenshot.  Ocasta discards
the screenshot if it is identical to either the erroneous screenshot or
any previous screenshots it has recorded."
"""

from __future__ import annotations

from repro.apps.base import Screenshot, SimulatedApplication


def capture(app: SimulatedApplication) -> Screenshot:
    """Take a screenshot of the application's current visible state."""
    return app.render()


class ScreenshotGallery:
    """Ordered, de-duplicated screenshots for the user to review."""

    def __init__(self, erroneous: Screenshot | None = None) -> None:
        self._seen: set[Screenshot] = set()
        self._entries: list[Screenshot] = []
        self.discarded = 0
        if erroneous is not None:
            self._seen.add(erroneous)

    def add(self, screenshot: Screenshot) -> bool:
        """Record a screenshot; returns True when it is new to the user."""
        if screenshot in self._seen:
            self.discarded += 1
            return False
        self._seen.add(screenshot)
        self._entries.append(screenshot)
        return True

    @property
    def entries(self) -> list[Screenshot]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, screenshot: Screenshot) -> bool:
        return screenshot in self._seen

"""Sandboxed trial execution.

"Ocasta then executes the user-provided trial on the historical values of
the clusters by rolling back an entire cluster of configuration settings
at a time and running the trial in a sandbox, which prevents the execution
[from leaving] any persistent changes."

The sandbox clones the application (configuration store included) with no
observers attached, translates the rollback plan's canonical TTKV keys to
the clone's store keys, applies it, and replays the trial.  Nothing the
trial does can reach the real store or the recorded trace.
"""

from __future__ import annotations

from repro.apps.base import Screenshot, SimulatedApplication
from repro.common.clock import SimClock
from repro.exceptions import SandboxError, SchemaError
from repro.repair.replay import replay_trial
from repro.repair.trial import Trial
from repro.ttkv.snapshot import RollbackPlan
from repro.ttkv.store import DELETED, MISSING


class Sandbox:
    """Disposable execution environment around one application."""

    def __init__(self, app: SimulatedApplication) -> None:
        self._origin = app

    def fresh_app(self) -> SimulatedApplication:
        """A clone with its own store, clock and session."""
        clone = self._origin.clone_sandboxed(
            clock=SimClock(self._origin.clock.now())
        )
        if clone.store is self._origin.store:  # pragma: no cover - safety net
            raise SandboxError("sandbox clone shares the live store")
        return clone

    def apply_plan(
        self, app: SimulatedApplication, plan: RollbackPlan
    ) -> None:
        """Apply a canonical-key rollback plan to a sandboxed app's store.

        Keys that do not belong to this application are rejected: a plan
        built for the wrong app would silently do nothing, which would
        make a failed search look like an unfixable error.
        """
        for canonical, value in plan.assignments.items():
            try:
                local = app.setting_name(canonical)
            except SchemaError as exc:
                raise SandboxError(str(exc)) from exc
            store_key = app.store_key(local)
            if value is DELETED or value is MISSING:
                app.store._data.pop(store_key, None)
            else:
                app.store._data[store_key] = value

    def execute(
        self, trial: Trial, plan: RollbackPlan | None
    ) -> Screenshot:
        """Roll back (optionally) and replay the trial; return the shot."""
        app = self.fresh_app()
        if plan is not None:
            self.apply_plan(app, plan)
        return replay_trial(app, trial)

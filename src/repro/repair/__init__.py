"""The Ocasta repair tool.

Wires the core repair engine to the simulated substrate: trial recording
and deterministic replay (the paper's UI record/replay component),
sandboxed execution (no persistent changes escape a trial), screenshot
capture/de-duplication, and the controller coordinating the whole
recovery search.
"""

from repro.repair.trial import Trial
from repro.repair.replay import AdaptiveReplayer, replay_trial
from repro.repair.screenshot import ScreenshotGallery, capture
from repro.repair.sandbox import Sandbox
from repro.repair.controller import OcastaRepairTool, RepairReport

__all__ = [
    "Trial",
    "AdaptiveReplayer",
    "replay_trial",
    "ScreenshotGallery",
    "capture",
    "Sandbox",
    "OcastaRepairTool",
    "RepairReport",
]

"""Trials: recorded UI-action scripts that reproduce a configuration error.

"To use Ocasta, the user must first create a trial, which tells Ocasta how
to recreate the error and makes the symptoms of the error visible on the
screen."  A trial is a deterministic sequence of UI actions against one
application; Ocasta extracts the application identity automatically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ReplayError


@dataclass(frozen=True)
class Trial:
    """A recorded trial: the app it drives and the actions to replay."""

    app_name: str
    actions: tuple[tuple[str, dict[str, Any]], ...]

    def __post_init__(self) -> None:
        if not self.actions:
            raise ReplayError("a trial must contain at least one action")
        for action in self.actions:
            if not (isinstance(action, tuple) and len(action) == 2):
                raise ReplayError(f"malformed trial action {action!r}")

    @classmethod
    def record(
        cls, app_name: str, actions: list[tuple[str, dict[str, Any]]]
    ) -> "Trial":
        """Build a trial from a list of (action, params) steps."""
        return cls(app_name=app_name, actions=tuple(actions))

    def to_json(self) -> str:
        """Serialise for storage alongside the TTKV."""
        return json.dumps(
            {
                "app": self.app_name,
                "actions": [[name, params] for name, params in self.actions],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Trial":
        try:
            payload = json.loads(text)
            actions = tuple(
                (name, dict(params)) for name, params in payload["actions"]
            )
            return cls(app_name=payload["app"], actions=actions)
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplayError(f"malformed trial JSON: {exc}") from exc

    def __len__(self) -> int:
        return len(self.actions)

"""Ocasta: clustering configuration settings for error recovery.

A from-scratch reproduction of Huang & Lie, DSN 2014.  The library has
three layers:

- **substrates** — a time-travel key-value store (:mod:`repro.ttkv`),
  configuration-store emulators with loggers (:mod:`repro.stores`,
  :mod:`repro.loggers`), eleven simulated desktop applications
  (:mod:`repro.apps`) and a workload generator (:mod:`repro.workload`);
- **core** — the paper's contribution: sliding-window write groups, the
  correlation metric, complete-linkage hierarchical clustering with
  threshold pruning, cluster-version search and the repair engine
  (:mod:`repro.core`);
- **evaluation** — the sixteen Table III error cases
  (:mod:`repro.errors`), the GUI-repair-tool equivalent
  (:mod:`repro.repair`), the simulated user study (:mod:`repro.study`)
  and one experiment driver per paper table/figure
  (:mod:`repro.experiments`).

Quickstart — streaming, the way Ocasta actually runs.  Clustering runs
continuously alongside logging: attach an :class:`IncrementalPipeline` to a
live TTKV and call :meth:`~repro.core.incremental.IncrementalPipeline.update`
whenever you want current clusters; each call consumes only the events
appended since the previous one.

>>> from repro import TTKV, IncrementalPipeline
>>> ttkv = TTKV()
>>> live = IncrementalPipeline(ttkv)       # paper defaults: 1 s, corr 2
>>> ttkv.record_write("app/feature_on", True, 10.0)
>>> ttkv.record_write("app/feature_level", 3, 10.0)
>>> [c.sorted_keys() for c in live.update()]
[['app/feature_level', 'app/feature_on']]
>>> ttkv.record_write("app/feature_on", False, 95.0)
>>> ttkv.record_write("app/feature_level", 0, 95.0)
>>> ttkv.record_write("app/theme", "dark", 240.0)
>>> [c.sorted_keys() for c in live.update()]   # only new events consumed
[['app/feature_level', 'app/feature_on'], ['app/theme']]

One-shot batch clustering over a recorded trace gives the identical result
(the equivalence is property-tested for arbitrary stream prefixes):

>>> from repro import cluster_settings
>>> [c.sorted_keys() for c in cluster_settings(ttkv)]
[['app/feature_level', 'app/feature_on'], ['app/theme']]
"""

from repro.exceptions import OcastaError
from repro.ttkv import DELETED, MISSING, TTKV, RollbackPlan, SnapshotView
from repro.core import (
    Cluster,
    ClusterSession,
    ClusterSet,
    ClusterVersion,
    IncrementalPipeline,
    RepairEngine,
    SearchStrategy,
    UpdateStats,
    cluster_settings,
    singleton_clusters,
)
from repro.apps import SimulatedApplication, Screenshot, create_app, app_names
from repro.workload import generate_trace, profile_by_name, PROFILES
from repro.errors import ERROR_CASES, case_by_id, prepare_scenario
from repro.repair import OcastaRepairTool, Trial

__version__ = "1.0.0"

__all__ = [
    "OcastaError",
    "DELETED",
    "MISSING",
    "TTKV",
    "RollbackPlan",
    "SnapshotView",
    "Cluster",
    "ClusterSession",
    "ClusterSet",
    "ClusterVersion",
    "IncrementalPipeline",
    "RepairEngine",
    "SearchStrategy",
    "UpdateStats",
    "cluster_settings",
    "singleton_clusters",
    "SimulatedApplication",
    "Screenshot",
    "create_app",
    "app_names",
    "generate_trace",
    "profile_by_name",
    "PROFILES",
    "ERROR_CASES",
    "case_by_id",
    "prepare_scenario",
    "OcastaRepairTool",
    "Trial",
    "__version__",
]

"""Ocasta: clustering configuration settings for error recovery.

A from-scratch reproduction of Huang & Lie, DSN 2014.  The library has
three layers:

- **substrates** — a time-travel key-value store (:mod:`repro.ttkv`),
  configuration-store emulators with loggers (:mod:`repro.stores`,
  :mod:`repro.loggers`), eleven simulated desktop applications
  (:mod:`repro.apps`) and a workload generator (:mod:`repro.workload`);
- **core** — the paper's contribution: sliding-window write groups, the
  correlation metric, complete-linkage hierarchical clustering with
  threshold pruning, cluster-version search and the repair engine
  (:mod:`repro.core`);
- **evaluation** — the sixteen Table III error cases
  (:mod:`repro.errors`), the GUI-repair-tool equivalent
  (:mod:`repro.repair`), the simulated user study (:mod:`repro.study`)
  and one experiment driver per paper table/figure
  (:mod:`repro.experiments`).

Quickstart — streaming, the way Ocasta actually runs.  Clustering runs
continuously alongside logging on machines hosting many applications, so
the front door is the :class:`ShardedPipeline`: one engine per application
key prefix, fed from per-shard journal cursors.  Call
:meth:`~repro.core.sharded.ShardedPipeline.update` whenever you want
current clusters; only shards whose journals advanced do any work, and
each consumes just the events appended since its previous read.

>>> from repro import TTKV, ShardedPipeline
>>> ttkv = TTKV()
>>> live = ShardedPipeline(ttkv, shard_prefixes=("mail/", "editor/"))
>>> ttkv.record_write("mail/mark_seen", True, 10.0)
>>> ttkv.record_write("mail/mark_seen_timeout", 1500, 10.0)
>>> ttkv.record_write("editor/zoom", 1.25, 10.0)   # same tick, other app
>>> [c.sorted_keys() for c in live.update()]
[['mail/mark_seen', 'mail/mark_seen_timeout'], ['editor/zoom']]
>>> ttkv.record_write("editor/zoom", 1.5, 300.0)
>>> clusters = live.update()                   # only the editor shard ran
>>> live.last_stats.shards_updated, live.last_stats.shards_total
(1, 3)

A deployment checkpoints its session to a JSON-safe dict and, after a
restart, resumes from its cursors instead of replaying the journal (the
``python -m repro stream --state FILE`` flag does exactly this):

>>> import json
>>> blob = json.dumps(live.to_state())         # persist alongside the TTKV
>>> resumed = ShardedPipeline.from_state(ttkv, json.loads(blob))
>>> [c.sorted_keys() for c in resumed.update()] == \\
...     [c.sorted_keys() for c in clusters]
True
>>> resumed.last_stats.events_consumed         # zero already-read events
0

On a machine hosting many applications the shard updates are independent
— engines share no state — so the session takes a pluggable execution
strategy (:mod:`repro.core.executors`): serial by default, or a thread or
process pool via ``executor=``.  Per-shard wall times, the slowest shard
and the overlap factor land in ``last_stats``:

>>> from repro import ShardedPipeline, ThreadShardExecutor
>>> pool = ThreadShardExecutor(4)
>>> concurrent = ShardedPipeline(
...     ttkv, shard_prefixes=("mail/", "editor/"), executor=pool
... )
>>> [c.sorted_keys() for c in concurrent.update()]
[['mail/mark_seen', 'mail/mark_seen_timeout'], ['editor/zoom']]
>>> sorted(concurrent.last_stats.shard_timings) == sorted(concurrent.shard_ids)
True
>>> concurrent.close(); pool.close()

(``python -m repro stream --executor thread --workers 4`` is the same
thing from the command line; ``--executor process`` pins every shard to
a sticky worker process that caches the restored engine, so steady-state
updates ship only the unread journal slice — the full checkpoint
serialization boundary is crossed on cold start and after
invalidations.)

Single-application stores can stay on the unsharded
:class:`IncrementalPipeline` (a sharded session with one catch-all shard),
and one-shot batch clustering over a recorded trace gives identical
results per prefix — the equivalence is property-tested for arbitrary
stream prefixes and all executor strategies:

>>> from repro import cluster_settings
>>> [c.sorted_keys() for c in cluster_settings(ttkv, key_filter="mail/")]
[['mail/mark_seen', 'mail/mark_seen_timeout']]
"""

from repro.exceptions import OcastaError
from repro.ttkv import (
    DELETED,
    MISSING,
    TTKV,
    RollbackPlan,
    ShardedJournal,
    SnapshotView,
)
from repro.core import (
    Cluster,
    ClusterSession,
    ClusterSet,
    ClusterVersion,
    IncrementalPipeline,
    ProcessShardExecutor,
    RepairEngine,
    SearchStrategy,
    SerialExecutor,
    ShardEngine,
    ShardExecutor,
    ShardedPipeline,
    ThreadShardExecutor,
    UpdateStats,
    cluster_settings,
    make_executor,
    singleton_clusters,
)
from repro.fleet import FleetCorrelationMerge, FleetPipeline, FleetQueryServer
from repro.apps import SimulatedApplication, Screenshot, create_app, app_names
from repro.workload import generate_trace, profile_by_name, PROFILES
from repro.errors import ERROR_CASES, case_by_id, prepare_scenario
from repro.repair import OcastaRepairTool, Trial

__version__ = "1.0.0"

__all__ = [
    "OcastaError",
    "DELETED",
    "MISSING",
    "TTKV",
    "RollbackPlan",
    "SnapshotView",
    "Cluster",
    "ClusterSession",
    "ClusterSet",
    "ClusterVersion",
    "IncrementalPipeline",
    "RepairEngine",
    "SearchStrategy",
    "ShardEngine",
    "ShardExecutor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "make_executor",
    "ShardedJournal",
    "ShardedPipeline",
    "UpdateStats",
    "cluster_settings",
    "singleton_clusters",
    "FleetCorrelationMerge",
    "FleetPipeline",
    "FleetQueryServer",
    "SimulatedApplication",
    "Screenshot",
    "create_app",
    "app_names",
    "generate_trace",
    "profile_by_name",
    "PROFILES",
    "ERROR_CASES",
    "case_by_id",
    "prepare_scenario",
    "OcastaRepairTool",
    "Trial",
    "__version__",
]

"""Fleet aggregation tier: many machines' evidence, one cluster model.

Everything below :mod:`repro.core` clusters one machine's event stream in
one process.  This package is the deployment story the paper implies — a
fleet of machines whose configuration-correlation evidence is aggregated
into fleet-level cluster models and served over a query API while ingest
continues:

- :class:`FleetCorrelationMerge` (:mod:`repro.fleet.merge`) sums
  per-machine pairwise evidence keyed by canonical app/key identity and
  re-agglomerates only the fleet components whose evidence changed — the
  cross-machine analog of the engines' ``install_components``.  It is
  property-tested equal to concatenating all machines' write groups into
  one batch matrix (:func:`repro.fleet.merge.concatenated_batch_clusters`).
- :class:`FleetPipeline` (:mod:`repro.fleet.pipeline`) owns one
  :class:`~repro.core.sharded.ShardedPipeline` per machine behind an
  asyncio driver: poll ``needs_update()``, interleave shard updates
  (on the existing executor layer via ``run_in_executor``) with logging
  I/O, apply per-machine backpressure, checkpoint per machine.
- :class:`FleetQueryServer` (:mod:`repro.fleet.api`) serves
  ``GET /clusters``, ``GET /machines``, ``GET /machines/<id>/status``
  and ``GET /health`` from asyncio streams while the driver keeps
  ingesting.
- :mod:`repro.fleet.resilience` makes the tier fault-tolerant: a seeded
  deterministic :class:`FaultInjector` (crash/hang/slow/torn-write/
  corrupt-checkpoint/snapshot-loss injection points), the
  :class:`MachineSupervisor` health state machine with circuit-breaker
  restarts, and the :class:`FleetResilience` bundle
  :meth:`FleetPipeline.drive` takes.  Checkpoints are crash-safe
  generations (:mod:`repro.fleet.checkpointing`): atomic writes,
  SHA-256 checksums, keep-last-K, quarantine-then-fallback on damage.

``python -m repro fleet`` wires them together from the command line.
"""

from repro.fleet.api import FleetQueryServer
from repro.fleet.checkpointing import (
    FleetCheckpointStore,
    atomic_write_json,
    atomic_write_text,
    load_json_checkpoint,
)
from repro.fleet.merge import (
    FleetCorrelationMerge,
    MergeStats,
    concatenated_batch_clusters,
)
from repro.fleet.pipeline import (
    FleetPipeline,
    FleetRound,
    FleetUpdateStats,
)
from repro.fleet.resilience import (
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FleetResilience,
    MachineSupervisor,
    ResilienceConfig,
    ScheduledFault,
)

__all__ = [
    "FleetCorrelationMerge",
    "MergeStats",
    "concatenated_batch_clusters",
    "FleetPipeline",
    "FleetRound",
    "FleetUpdateStats",
    "FleetQueryServer",
    "FleetCheckpointStore",
    "atomic_write_json",
    "atomic_write_text",
    "load_json_checkpoint",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "FleetResilience",
    "MachineSupervisor",
    "ResilienceConfig",
    "ScheduledFault",
]

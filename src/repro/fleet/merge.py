"""Fleet-level correlation merge: sum machine evidence, recluster dirty.

Every correlation Ocasta computes is a pure function of two aggregates —
per-key write-group counts and per-pair intersection counts — so a
machine's entire contribution to the fleet model is the snapshot
:meth:`repro.core.sharded.ShardedPipeline.pairwise_counts` returns.
:class:`FleetCorrelationMerge` keeps one
:class:`~repro.core.correlation.CorrelationMatrix` holding the *sum* of
all machines' snapshots, keyed by canonical app/key identity (two
machines writing ``mail/zoom`` contribute to the same fleet key).  When a
machine reports again, only the *diff* against its previous snapshot is
applied (:meth:`~repro.core.correlation.CorrelationMatrix.apply_count_deltas`),
and only fleet components touched by the diff are re-agglomerated — the
cross-machine analog of the engines' ``install_components``.

The independent reference is :func:`concatenated_batch_clusters`: extract
every machine's write groups with the batch extractor (respecting the
same longest-prefix shard routing), feed all groups into one fresh
matrix, and cut.  The property suite in ``tests/fleet/`` asserts the
merge equals this reference across profiles, machines joining and
leaving mid-stream, and duplicate app prefixes on different machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.cluster_model import ClusterSet
from repro.core.clustering import (
    LINKAGE_COMPLETE,
    component_clusters,
    flat_clusters,
)
from repro.core.correlation import CorrelationMatrix, CorrelationMatrixView
from repro.core.hac_kernel import KERNEL_AUTO, check_kernel
from repro.core.ordering import SortedKeySets
from repro.core.pipeline import DEFAULT_CORRELATION_THRESHOLD, DEFAULT_WINDOW
from repro.core.windowing import extract_write_groups
from repro.ttkv.sharding import CATCH_ALL

#: One machine's evidence snapshot: (per-key counts, per-pair counts).
Snapshot = tuple[dict[str, int], dict[tuple[str, str], int]]


@dataclass(frozen=True)
class MergeStats:
    """What one :meth:`FleetCorrelationMerge.clusters` refresh did."""

    machines: int
    dirty_keys: int
    components_total: int
    components_reclustered: int
    components_reused: int


def _delta(new: Mapping, old: Mapping) -> dict:
    """Per-entry difference ``new - old`` (zero entries omitted)."""
    deltas = {}
    for key, count in new.items():
        diff = count - old.get(key, 0)
        if diff:
            deltas[key] = diff
    for key, count in old.items():
        if key not in new:
            deltas[key] = -count
    return deltas


class FleetCorrelationMerge:
    """Aggregate per-machine pairwise evidence into fleet clusters.

    Feed it machine snapshots with :meth:`ingest` (idempotent per
    snapshot: the diff against the machine's previous report is applied),
    drop a machine with :meth:`retire` (its evidence is subtracted), and
    read the fleet model with :meth:`clusters` — which re-agglomerates
    only components whose evidence changed since the last read.
    """

    def __init__(
        self,
        *,
        window: float = DEFAULT_WINDOW,
        correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
        linkage: str = LINKAGE_COMPLETE,
        kernel: str = KERNEL_AUTO,
    ) -> None:
        if not 0.0 < correlation_threshold <= 2.0:
            raise ValueError(
                "correlation threshold must lie in (0, 2], "
                f"got {correlation_threshold}"
            )
        self.window = window
        self.correlation_threshold = correlation_threshold
        self.linkage = linkage
        self.kernel = check_kernel(kernel)
        self._matrix = CorrelationMatrix()
        self._snapshots: dict[str, Snapshot] = {}
        self._dirty: set[str] = set()
        self._cache: dict[frozenset[str], list[frozenset[str]]] = {}
        self._cluster_set: ClusterSet | None = None
        self.last_stats: MergeStats | None = None

    # -- inspection ----------------------------------------------------------

    @property
    def machine_ids(self) -> tuple[str, ...]:
        """Machines currently contributing evidence (insertion order)."""
        return tuple(self._snapshots)

    @property
    def matrix(self) -> CorrelationMatrixView:
        """Read-only view of the summed fleet matrix."""
        return CorrelationMatrixView(self._matrix)

    @property
    def last_clusters(self) -> ClusterSet | None:
        """The most recently refreshed cluster model, without refreshing.

        The query API serves this snapshot so a ``GET /clusters`` during
        a heavy merge reads the last coherent model instead of blocking
        the event loop on a re-agglomeration.
        """
        return self._cluster_set

    # -- evidence ------------------------------------------------------------

    def ingest(
        self,
        machine_id: str,
        counts: Mapping[str, int],
        common: Mapping[tuple[str, str], int],
    ) -> set[str]:
        """Replace ``machine_id``'s evidence snapshot; apply the diff.

        Returns the fleet keys whose evidence changed (empty when the
        machine reported nothing new).  Cheap to call unconditionally
        after every machine update: the cost is one dict diff plus work
        proportional to the *changed* entries only.
        """
        old_counts, old_common = self._snapshots.get(machine_id, ({}, {}))
        dirty = self._matrix.apply_count_deltas(
            _delta(counts, old_counts), _delta(common, old_common)
        )
        self._snapshots[machine_id] = (dict(counts), dict(common))
        self._dirty |= dirty
        return dirty

    def retire(self, machine_id: str) -> set[str]:
        """Subtract a departed machine's evidence from the fleet model."""
        if machine_id not in self._snapshots:
            raise KeyError(
                f"no machine {machine_id!r}; machines: {list(self._snapshots)}"
            )
        dirty = self.ingest(machine_id, {}, {})
        del self._snapshots[machine_id]
        return dirty

    # -- clustering ----------------------------------------------------------

    def clusters(self) -> ClusterSet:
        """The fleet cluster model (largest clusters first).

        Components whose members don't intersect the keys dirtied since
        the previous call reuse their cached flat clusters; only dirty
        components re-agglomerate.  Sound because the fleet matrix is
        mutated exclusively through :meth:`ingest`/:meth:`retire`, whose
        delta application reports every key whose evidence (or component
        membership) could have changed.
        """
        if self._cluster_set is not None and not self._dirty:
            return self._cluster_set
        components = self._matrix.connected_components()
        next_cache: dict[frozenset[str], list[frozenset[str]]] = {}
        order = SortedKeySets()
        reused = reclustered = 0
        for component in components:
            members = frozenset(component)
            cached = self._cache.get(members)
            if cached is not None and not (members & self._dirty):
                key_sets = cached
                reused += 1
            else:
                key_sets = component_clusters(
                    self._matrix,
                    component,
                    self.correlation_threshold,
                    self.linkage,
                    kernel=self.kernel,
                )
                reclustered += 1
            next_cache[members] = key_sets
            for key_set in key_sets:
                order.add(key_set)
        self._cache = next_cache
        self.last_stats = MergeStats(
            machines=len(self._snapshots),
            dirty_keys=len(self._dirty),
            components_total=len(components),
            components_reclustered=reclustered,
            components_reused=reused,
        )
        self._dirty = set()
        self._cluster_set = ClusterSet.from_key_sets(
            order.as_key_sets(),
            window=self.window,
            correlation_threshold=self.correlation_threshold,
        )
        return self._cluster_set


def _route(key: str, ordered_prefixes: Sequence[str], catch_all: bool) -> str | None:
    for prefix in ordered_prefixes:
        if key.startswith(prefix):
            return prefix
    return CATCH_ALL if catch_all else None


def concatenated_batch_clusters(
    machine_events: Mapping[str, Sequence[tuple]],
    machine_prefixes: Mapping[str, Sequence[str]],
    *,
    window: float = DEFAULT_WINDOW,
    correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
    linkage: str = LINKAGE_COMPLETE,
    catch_all: bool = True,
) -> list[frozenset[str]]:
    """Independent reference: all machines' write groups, one batch matrix.

    For each machine, partition its events by the same longest-prefix
    routing the sharded journal uses, batch-extract each shard's write
    groups (:func:`~repro.core.windowing.extract_write_groups` — groups
    never span machines or shards), then feed every group into one fresh
    matrix and cut.  This is what "concatenate all machines' events into
    one batch run" means under sharding, and it is the equality target
    the fleet merge is property-tested against.
    """
    matrix = CorrelationMatrix()
    offset = 0
    for machine_id in sorted(machine_events):
        prefixes = sorted(
            set(machine_prefixes.get(machine_id, ())), key=lambda p: (-len(p), p)
        )
        by_shard: dict[str, list] = {}
        for event in machine_events[machine_id]:
            shard = _route(event[1], prefixes, catch_all)
            if shard is not None:
                by_shard.setdefault(shard, []).append(event)
        for shard_id in sorted(by_shard):
            groups = extract_write_groups(by_shard[shard_id], window)
            added = [(offset + i, group.keys) for i, group in enumerate(groups)]
            matrix.update_groups(added=added)
            offset += len(groups)
    return flat_clusters(
        matrix, correlation_threshold=correlation_threshold, linkage=linkage
    )

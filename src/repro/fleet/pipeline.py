"""FleetPipeline: many machines' sharded pipelines behind one asyncio driver.

One :class:`~repro.core.sharded.ShardedPipeline` per machine, one
:class:`~repro.fleet.merge.FleetCorrelationMerge` summing their evidence.
The synchronous :meth:`FleetPipeline.update` sweeps the fleet once in the
calling thread; the asyncio :meth:`FleetPipeline.drive` runs the full
ingest loop — feed each machine's next slice of events (the logging I/O),
update every machine whose journal advanced (CPU work, pushed onto the
event loop's default executor so queries stay responsive; the machines'
own shard updates still go through whatever
:class:`~repro.core.executors.ShardExecutor` the fleet was built with),
merge the changed machines' evidence, and repeat.

Determinism: rounds are barriers.  Every machine's feed for a round is
appended before any update starts, all updates finish before the merge,
and the merge runs on the event-loop thread — so the per-round event
counts, cluster models and progress lines are byte-identical whatever
the executor strategy (the CLI smoke test asserts exactly this).

Backpressure: ``max_lag`` bounds how many journaled-but-unconsumed
events a machine may accumulate.  The feed stage stops pulling from a
machine's chunk iterator once its backlog would exceed the bound; the
leftover events are buffered and drain over subsequent rounds, so a slow
machine throttles its own feed instead of growing without bound.

Checkpoints are crash-safe generations
(:class:`~repro.fleet.checkpointing.FleetCheckpointStore`):
:meth:`to_state_dir` writes one ``machine-<id>.json`` per machine (its
full :meth:`~repro.core.sharded.ShardedPipeline.to_state`) into a new
``gen-<n>/`` directory — every file atomic (tmp+fsync+rename), SHA-256
checksums in the manifest, the root ``fleet.json`` committed last —
and :meth:`from_state_dir` restores from the newest verifiable
generation, quarantining damaged ones.  The pre-generation flat layout
(version 1) still loads.

Resilience: :meth:`drive` optionally takes a
:class:`~repro.fleet.resilience.FleetResilience` bundle — a seeded
:class:`~repro.fleet.resilience.FaultInjector` plus supervision policy.
Each machine's update then runs under a per-attempt timeout with
bounded, deterministically backed-off retries; a circuit breaker
restarts the machine from its last good checkpoint after N consecutive
failures, and the restart immediately re-ingests the restored snapshot
so the merge *retracts* whatever evidence the machine lost — fleet
clusters stay ≡ the concatenated batch reference at every round.
"""

from __future__ import annotations

import asyncio
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.cluster_model import ClusterSet
from repro.core.clustering import LINKAGE_COMPLETE
from repro.core.hac_kernel import KERNEL_AUTO
from repro.core.pipeline import DEFAULT_CORRELATION_THRESHOLD, DEFAULT_WINDOW
from repro.core.sharded import ShardedPipeline
from repro.exceptions import CheckpointError, CorruptCheckpointError
from repro.fleet.checkpointing import (
    DEFAULT_KEEP_GENERATIONS,
    FleetCheckpointStore,
    load_json_checkpoint,
)
from repro.fleet.merge import FleetCorrelationMerge, MergeStats
from repro.fleet.resilience import (
    ACTION_RESTART,
    CRASH_AFTER,
    CRASH_BEFORE,
    FleetResilience,
    InjectedCrash,
    InjectedFault,
    UpdatePlan,
)
from repro.ttkv.columnar import BACKEND_AUTO
from repro.ttkv.store import TTKV

STATE_VERSION = 2
SUPPORTED_STATE_VERSIONS = (1, 2)

#: Machine ids become checkpoint file names, so keep them path-safe.
_MACHINE_ID = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass(frozen=True)
class FleetUpdateStats:
    """What one synchronous :meth:`FleetPipeline.update` sweep did."""

    events_consumed: int
    machines_updated: int
    machines_total: int
    merge: MergeStats | None


@dataclass(frozen=True)
class FleetRound:
    """One round of the asyncio driver (passed to ``on_round``)."""

    index: int
    events_fed: int
    events_consumed: int
    machines_updated: int
    machines_total: int
    clusters: ClusterSet
    merge: MergeStats | None
    #: Faults the injector fired during this round (0 without resilience).
    faults_injected: int = 0
    #: Machine restarts the supervisor performed during this round.
    machines_restarted: int = 0


class FleetPipeline:
    """A fleet of per-machine pipelines plus the fleet-level merge.

    Parameters mirror the per-machine pipelines (``window``,
    ``correlation_threshold``, ``linkage``, ``kernel``,
    ``journal_backend``) and apply to every machine.  ``executor`` is the
    shard execution strategy shared by all machines — caller-owned, like
    the sharded pipeline's; only strategies safe for concurrent
    ``map_shards`` calls belong here (serial constructs per-call state,
    the thread pool is locked; the process executor's worker-affinity
    cache is per-session state and must not be shared across machines
    updating concurrently).  ``max_lag`` is the per-machine backpressure
    bound used by :meth:`drive` (``None``: unbounded).
    """

    def __init__(
        self,
        *,
        window: float = DEFAULT_WINDOW,
        correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
        linkage: str = LINKAGE_COMPLETE,
        kernel: str = KERNEL_AUTO,
        journal_backend: str = BACKEND_AUTO,
        executor=None,
        max_lag: int | None = None,
    ) -> None:
        if max_lag is not None and max_lag < 1:
            raise ValueError(f"max_lag must be at least 1, got {max_lag}")
        self.window = window
        self.correlation_threshold = correlation_threshold
        self.linkage = linkage
        self.kernel = kernel
        self.journal_backend = journal_backend
        self.executor = executor
        self.max_lag = max_lag
        self._machines: dict[str, ShardedPipeline] = {}
        self._merge = FleetCorrelationMerge(
            window=window,
            correlation_threshold=correlation_threshold,
            linkage=linkage,
            kernel=kernel,
        )
        self._status: dict[str, dict] = {}
        self._rounds = 0
        self.last_stats: FleetUpdateStats | None = None
        #: The resilience bundle of the last/current :meth:`drive` run —
        #: kept so health queries keep answering after the drive ends.
        self._resilience: FleetResilience | None = None
        #: Machines restarted since the last merge: swept even when their
        #: journal is quiet, so the merge re-syncs to their restored state.
        self._forced_sweeps: set[str] = set()

    # -- membership ----------------------------------------------------------

    @property
    def machine_ids(self) -> tuple[str, ...]:
        return tuple(self._machines)

    @property
    def rounds(self) -> int:
        """Completed driver rounds (survives checkpoints)."""
        return self._rounds

    def machine(self, machine_id: str) -> ShardedPipeline:
        try:
            return self._machines[machine_id]
        except KeyError:
            raise KeyError(
                f"no machine {machine_id!r}; machines: {list(self._machines)}"
            ) from None

    def add_machine(
        self,
        machine_id: str,
        store: TTKV,
        shard_prefixes: Sequence[str] = (),
    ) -> ShardedPipeline:
        """Attach a machine's store; its evidence joins the next update."""
        if not _MACHINE_ID.match(machine_id):
            raise ValueError(
                f"machine id {machine_id!r} is not path-safe "
                "(letters, digits, dot, underscore, dash)"
            )
        if machine_id in self._machines:
            raise ValueError(f"machine {machine_id!r} already attached")
        pipeline = ShardedPipeline(
            store,
            shard_prefixes=tuple(shard_prefixes),
            window=self.window,
            correlation_threshold=self.correlation_threshold,
            linkage=self.linkage,
            kernel=self.kernel,
            journal_backend=self.journal_backend,
            executor=self.executor,
        )
        self._machines[machine_id] = pipeline
        self._refresh_status(machine_id)
        return pipeline

    def remove_machine(self, machine_id: str) -> None:
        """Detach a machine and subtract its evidence from the fleet model."""
        pipeline = self.machine(machine_id)
        pipeline.close()
        del self._machines[machine_id]
        self._status.pop(machine_id, None)
        self._forced_sweeps.discard(machine_id)
        if self._resilience is not None:
            self._resilience.supervisor.forget(machine_id)
        if machine_id in self._merge.machine_ids:
            self._merge.retire(machine_id)

    def close(self) -> None:
        """Detach every machine (the caller owns the executor)."""
        for pipeline in self._machines.values():
            pipeline.close()

    # -- querying ------------------------------------------------------------

    @property
    def cluster_set(self) -> ClusterSet | None:
        """The last merged fleet cluster model, without recomputing."""
        return self._merge.last_clusters

    def clusters(self) -> ClusterSet:
        """The fleet cluster model, refreshing dirty components."""
        return self._merge.clusters()

    def machine_status(self, machine_id: str) -> dict | None:
        """The machine's last status snapshot (``None``: unknown machine).

        Snapshots are (re)written on the driver thread after each round,
        so readers on the event loop never race an in-flight update.
        """
        return self._status.get(machine_id)

    def health(self) -> dict:
        """Fleet-level liveness summary for the query API.

        Without resilience the status is always ``"ok"``.  Under a
        supervised drive the status reflects the worst machine health
        (``ok``/``degraded``/``unhealthy``) and a ``resilience`` section
        carries the health counts, total restarts/failures, the
        stale-evidence machine list and the injected-fault count.
        """
        clusters = self._merge.last_clusters
        payload = {
            "status": "ok",
            "machines": len(self._machines),
            "rounds": self._rounds,
            "fleet_keys": len(self._merge.matrix.pairwise_counts()[0]),
            "clusters": None if clusters is None else len(clusters),
        }
        if self._resilience is not None:
            report = self._resilience.supervisor.fleet_report()
            payload["status"] = report["status"]
            if self._resilience.injector is not None:
                report["faults_injected"] = self._resilience.injector.faults_fired
            payload["resilience"] = report
        return payload

    def machines_payload(self) -> dict:
        """JSON-safe body for ``GET /machines`` (ids + health at a glance)."""
        machines = []
        for machine_id in self._machines:
            status = self._status.get(machine_id, {})
            machines.append(
                {
                    "machine": machine_id,
                    "health": status.get("health", "HEALTHY"),
                    "clusters": status.get("clusters"),
                }
            )
        return {"machines": machines, "count": len(machines)}

    def clusters_payload(self) -> dict:
        """JSON-safe body for ``GET /clusters`` (last coherent model)."""
        clusters = self._merge.last_clusters
        return {
            "machines": len(self._machines),
            "rounds": self._rounds,
            "count": 0 if clusters is None else len(clusters),
            "multi": 0 if clusters is None else len(clusters.multi_clusters()),
            "clusters": (
                []
                if clusters is None
                else [cluster.sorted_keys() for cluster in clusters]
            ),
        }

    def _refresh_status(self, machine_id: str) -> None:
        pipeline = self._machines[machine_id]
        clusters = pipeline.cluster_set
        stats = pipeline.last_stats
        status = {
            "machine": machine_id,
            "shards": len(pipeline.shard_ids),
            "pending_events": pipeline.pending_events,
            "needs_update": pipeline.needs_update(),
            "clusters": None if clusters is None else len(clusters),
            "events_consumed": None if stats is None else stats.events_consumed,
        }
        if self._resilience is not None:
            report = self._resilience.supervisor.report(machine_id)
            if report is not None:
                status["health"] = report["health"]
                status["supervision"] = report
        self._status[machine_id] = status

    # -- updating ------------------------------------------------------------

    def _sweep(self) -> tuple[int, int]:
        """Update machines that need it; ingest their evidence.

        Returns ``(events_consumed, machines_updated)``.  A machine not
        yet represented in the merge (fresh attach, or a resume — the
        merge rebuilds from live snapshots rather than being
        checkpointed) is swept even if its journal is quiet, so its
        evidence always reaches the fleet model.
        """
        consumed = updated = 0
        merged = set(self._merge.machine_ids)
        for machine_id, pipeline in self._machines.items():
            if pipeline.needs_update() or machine_id not in merged:
                pipeline.update()
                consumed += pipeline.last_stats.events_consumed
                updated += 1
                self._merge.ingest(machine_id, *pipeline.pairwise_counts())
            self._refresh_status(machine_id)
        return consumed, updated

    def update(self) -> ClusterSet:
        """One synchronous fleet sweep; returns the merged cluster model."""
        consumed, updated = self._sweep()
        clusters = self._merge.clusters()
        self.last_stats = FleetUpdateStats(
            events_consumed=consumed,
            machines_updated=updated,
            machines_total=len(self._machines),
            merge=self._merge.last_stats,
        )
        return clusters

    # -- supervised recovery -------------------------------------------------

    @staticmethod
    def _planned_update(pipeline: ShardedPipeline, plan: UpdatePlan | None):
        """The callable one update attempt runs on the executor thread."""
        if plan is None or (
            plan.slow_seconds == 0.0
            and plan.hang_seconds == 0.0
            and plan.crash is None
        ):
            return pipeline.update

        def attempt() -> None:
            if plan.slow_seconds:
                time.sleep(plan.slow_seconds)
            if plan.crash == CRASH_BEFORE:
                raise InjectedCrash("injected crash before update")
            if plan.hang_seconds:
                time.sleep(plan.hang_seconds)
            pipeline.update()
            if plan.crash == CRASH_AFTER:
                raise InjectedCrash("injected crash after update")

        return attempt

    def _restart_machine(
        self,
        machine_id: str,
        resilience: FleetResilience,
        *,
        close_old: bool,
    ) -> ShardedPipeline:
        """Replace a machine's pipeline from its last good checkpoint.

        Falls back to a from-scratch pipeline (cursor 0 — the store's
        journal survives the crash, so re-reading it converges to the
        same evidence) when no verifiable checkpoint exists.  The
        restored snapshot is re-ingested immediately, so the merge
        *retracts* (via ``apply_count_deltas``) whatever evidence the
        restart lost; the machine's next successful update then catches
        it back up.  ``close_old=False`` is for timeouts: the wedged
        update thread cannot be cancelled, so the orphaned pipeline is
        abandoned un-closed rather than racing its in-flight update.
        """
        old = self._machines[machine_id]
        if close_old:
            old.close()
        fresh: ShardedPipeline | None = None
        state = resilience.load_machine_state(machine_id)
        if state is not None:
            try:
                fresh = ShardedPipeline.from_state(
                    old.store, state, executor=self.executor
                )
            except ValueError:
                fresh = None  # damaged/incompatible: rebuild from scratch
        if fresh is None:
            fresh = ShardedPipeline(
                old.store,
                shard_prefixes=old.shard_prefixes,
                window=old.window,
                correlation_threshold=old.correlation_threshold,
                linkage=old.linkage,
                key_filter=old.key_filter,
                grouping=old.grouping,
                catch_all=old.catch_all,
                executor=self.executor,
                repair_mode=old.repair_mode,
                kernel=old.kernel,
                journal_backend=old.journal_backend,
            )
        self._machines[machine_id] = fresh
        self._forced_sweeps.add(machine_id)
        resilience.supervisor.record_restart(machine_id)
        if machine_id in self._merge.machine_ids:
            # the retraction: evidence drops back to the restored snapshot
            self._merge.ingest(machine_id, *fresh.pairwise_counts())
        self._refresh_status(machine_id)
        return fresh

    async def _supervised_update(
        self,
        machine_id: str,
        resilience: FleetResilience,
        round_index: int,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        """One machine's update under timeout/retry/circuit-breaker rules."""
        config = resilience.config
        supervisor = resilience.supervisor
        attempt = 0
        while True:
            pipeline = self._machines[machine_id]
            plan = (
                resilience.injector.decide_update(
                    machine_id, round_index, attempt
                )
                if resilience.injector is not None
                else None
            )
            call = self._planned_update(pipeline, plan)
            try:
                if config.round_timeout is not None:
                    await asyncio.wait_for(
                        loop.run_in_executor(None, call), config.round_timeout
                    )
                else:
                    await loop.run_in_executor(None, call)
            except asyncio.TimeoutError:
                # the wedged thread cannot be cancelled: always abandon
                # the pipeline object and restart from the checkpoint
                supervisor.record_failure(machine_id, "timeout", timeout=True)
                self._restart_machine(machine_id, resilience, close_old=False)
            except InjectedFault as fault:
                action = supervisor.record_failure(machine_id, str(fault))
                if action == ACTION_RESTART:
                    self._restart_machine(
                        machine_id, resilience, close_old=True
                    )
            except Exception as error:  # real failures, same supervision
                action = supervisor.record_failure(
                    machine_id, f"{type(error).__name__}: {error}"
                )
                if action == ACTION_RESTART:
                    self._restart_machine(
                        machine_id, resilience, close_old=True
                    )
            else:
                supervisor.record_success(machine_id)
                return
            attempt += 1
            if attempt >= config.max_round_attempts:
                raise RuntimeError(
                    f"machine {machine_id!r} could not complete round "
                    f"{round_index} after {attempt} attempts (last fault: "
                    f"{supervisor.record(machine_id).last_fault})"
                )
            await asyncio.sleep(config.backoff_seconds(attempt))

    async def drive(
        self,
        feeds: Mapping[str, Iterable[Sequence[tuple]]],
        *,
        on_round: Callable[[FleetRound], None] | None = None,
        schedule: Callable[
            [int], Mapping[str, Iterable[Sequence[tuple]]] | None
        ] | None = None,
        resilience: FleetResilience | None = None,
    ) -> list[FleetRound]:
        """Drive the fleet until every feed is exhausted.

        ``feeds`` maps machine ids to iterables of event chunks (each a
        sequence of ``(timestamp, key, value)`` modification events for
        that machine's store).  Per round: append each machine's next
        slice — throttled to ``max_lag`` un-consumed events per machine —
        then update every machine whose journal advanced concurrently on
        the event loop's executor, then merge on the loop thread.
        ``on_round`` (and the returned list) observe every round.

        ``schedule`` models fleet churn: it is called on the loop thread
        at the start of each round with the upcoming round index and may
        mutate membership — :meth:`add_machine` for arrivals (returning
        their feeds, merged into the drive) and :meth:`remove_machine`
        for departures (their remaining buffered feed is dropped, their
        evidence retired).  Returning ``None`` retires the hook: the
        drive then ends once the remaining feeds drain.

        ``resilience`` turns on supervised recovery (and, when its
        bundle carries a :class:`~repro.fleet.resilience.FaultInjector`,
        deterministic fault injection): every machine update runs under
        the configured per-attempt timeout with bounded deterministic
        backoff; timeouts and circuit-breaker trips restart the machine
        from its last good checkpoint generation; snapshot-loss faults
        reboot machines at round start; and a crash-safe checkpoint
        generation is written every ``checkpoint_every`` rounds when the
        bundle has a state dir.  Without it the drive is byte-identical
        to earlier releases.
        """
        unknown = set(feeds) - set(self._machines)
        if unknown:
            raise KeyError(
                f"feeds for unattached machine(s) {sorted(unknown)}; "
                f"machines: {list(self._machines)}"
            )
        if resilience is not None:
            self._resilience = resilience
        loop = asyncio.get_running_loop()
        iterators: dict[str, Iterator] = {
            machine_id: iter(chunks) for machine_id, chunks in feeds.items()
        }
        buffers: dict[str, list] = {machine_id: [] for machine_id in feeds}

        def refill(machine_id: str, buffer: list) -> None:
            """Pull chunks until the buffer is non-empty or the feed ends."""
            while not buffer and machine_id in iterators:
                chunk = next(iterators[machine_id], None)
                if chunk is None:
                    del iterators[machine_id]
                else:
                    buffer.extend(chunk)

        rounds: list[FleetRound] = []
        while schedule is not None or iterators or any(buffers.values()):
            if schedule is not None:
                arrivals = schedule(self._rounds + 1)
                if arrivals is None:
                    schedule = None
                    if not iterators and not any(buffers.values()):
                        break  # nothing left to feed: no trailing no-op round
                else:
                    late = set(arrivals) - set(self._machines)
                    if late:
                        raise KeyError(
                            f"scheduled feeds for unattached machine(s) "
                            f"{sorted(late)}; machines: {list(self._machines)}"
                        )
                    for machine_id, chunks in arrivals.items():
                        iterators[machine_id] = iter(chunks)
                        buffers.setdefault(machine_id, [])
            faults_before = restarts_before = 0
            if resilience is not None:
                if resilience.injector is not None:
                    faults_before = resilience.injector.faults_fired
                restarts_before = resilience.supervisor.fleet_report()[
                    "restarts"
                ]
                # snapshot loss: the machine reboots at round start, its
                # in-memory state gone; restart it from the checkpoint
                if resilience.injector is not None:
                    for machine_id in list(self._machines):
                        if resilience.injector.decide_snapshot_loss(
                            machine_id, self._rounds + 1
                        ):
                            self._restart_machine(
                                machine_id, resilience, close_old=True
                            )
            fed = 0
            for machine_id in list(buffers):
                if machine_id not in self._machines:
                    # removed mid-drive: drop its remaining feed
                    buffers.pop(machine_id)
                    iterators.pop(machine_id, None)
                    continue
                buffer = buffers[machine_id]
                refill(machine_id, buffer)
                if not buffer:
                    buffers.pop(machine_id)
                    continue
                pipeline = self._machines[machine_id]
                if self.max_lag is None:
                    take = len(buffer)
                else:
                    take = min(
                        len(buffer),
                        max(0, self.max_lag - pipeline.pending_events),
                    )
                if take:
                    # the logging I/O: journal appends interleave with
                    # any in-flight query handlers at this await point
                    pipeline.store.record_events(buffer[:take])
                    del buffer[:take]
                    fed += take
                await asyncio.sleep(0)
                # eager refill so an exhausted feed ends the drive this
                # round instead of adding a trailing no-op round
                refill(machine_id, buffer)
                if not buffer and machine_id not in iterators:
                    buffers.pop(machine_id)
            merged = set(self._merge.machine_ids)
            pending = [
                machine_id
                for machine_id, pipeline in self._machines.items()
                if pipeline.needs_update()
                or machine_id not in merged
                or machine_id in self._forced_sweeps
            ]
            # CPU stage: machine updates run concurrently on the loop's
            # executor (their shard updates go through self.executor);
            # the barrier before the merge keeps rounds deterministic.
            # Restarts may swap a machine's pipeline object mid-round, so
            # everything downstream re-reads self._machines by id.
            if resilience is None:
                await asyncio.gather(
                    *(
                        loop.run_in_executor(
                            None, self._machines[machine_id].update
                        )
                        for machine_id in pending
                    )
                )
            else:
                await asyncio.gather(
                    *(
                        self._supervised_update(
                            machine_id, resilience, self._rounds + 1, loop
                        )
                        for machine_id in pending
                    )
                )
            consumed = updated = 0
            for machine_id in pending:
                pipeline = self._machines[machine_id]
                stats = pipeline.last_stats
                consumed += 0 if stats is None else stats.events_consumed
                updated += 1
                self._merge.ingest(machine_id, *pipeline.pairwise_counts())
                if resilience is not None:
                    resilience.supervisor.mark_synced(machine_id)
            self._forced_sweeps.clear()
            for machine_id in self._machines:
                self._refresh_status(machine_id)
            clusters = self._merge.clusters()
            self._rounds += 1
            faults = restarts = 0
            if resilience is not None:
                if resilience.injector is not None:
                    faults = (
                        resilience.injector.faults_fired - faults_before
                    )
                restarts = (
                    resilience.supervisor.fleet_report()["restarts"]
                    - restarts_before
                )
                if resilience.should_checkpoint(self._rounds):
                    self._write_checkpoint(
                        resilience.store,
                        payload_filter=resilience.payload_filter(
                            self._rounds
                        ),
                    )
            self.last_stats = FleetUpdateStats(
                events_consumed=consumed,
                machines_updated=updated,
                machines_total=len(self._machines),
                merge=self._merge.last_stats,
            )
            report = FleetRound(
                index=self._rounds,
                events_fed=fed,
                events_consumed=consumed,
                machines_updated=updated,
                machines_total=len(self._machines),
                clusters=clusters,
                merge=self._merge.last_stats,
                faults_injected=faults,
                machines_restarted=restarts,
            )
            rounds.append(report)
            if on_round is not None:
                on_round(report)
        return rounds

    # -- checkpointing -------------------------------------------------------

    def _write_checkpoint(
        self,
        store: FleetCheckpointStore,
        *,
        payload_filter=None,
    ) -> int:
        manifest = {
            "version": STATE_VERSION,
            "rounds": self._rounds,
            "params": {
                "window": self.window,
                "correlation_threshold": self.correlation_threshold,
                "linkage": self.linkage,
                "kernel": self.kernel,
                "journal_backend": self.journal_backend,
                "max_lag": self.max_lag,
            },
        }
        return store.write(
            manifest,
            {
                machine_id: pipeline.to_state()
                for machine_id, pipeline in self._machines.items()
            },
            payload_filter=payload_filter,
        )

    def to_state_dir(
        self,
        path: str | Path,
        *,
        keep: int = DEFAULT_KEEP_GENERATIONS,
    ) -> int:
        """Write one crash-safe checkpoint generation; returns its number.

        One ``machine-<id>.json`` per machine plus a checksummed
        manifest land in a fresh ``gen-<n>/`` directory — every file
        written atomically (tmp+fsync+rename) and the root ``fleet.json``
        committed last, so a crash at any instant leaves the previous
        generation loadable.  The oldest generations beyond ``keep`` are
        pruned.  The merge itself is not persisted — it is a pure
        function of the machines' evidence and is rebuilt from their
        snapshots on the first post-resume update.
        """
        return self._write_checkpoint(FleetCheckpointStore(path, keep=keep))

    @classmethod
    def from_state_dir(
        cls,
        path: str | Path,
        stores: Mapping[str, TTKV],
        *,
        executor=None,
        kernel: str | None = None,
        journal_backend: str | None = None,
        max_lag: int | None = None,
    ) -> "FleetPipeline":
        """Restore a fleet over re-opened per-machine stores.

        ``stores`` must provide a store for every machine named in the
        manifest, each holding (at least) the journal that machine's
        checkpoint had consumed.  ``executor`` is runtime configuration,
        like the sharded pipeline's; ``kernel``/``journal_backend``
        override the checkpointed values when given; ``max_lag``
        overrides the checkpointed backpressure bound.

        Restores from the newest checkpoint generation that verifies
        (checksums + parse); damaged generations are quarantined and
        older ones tried, and only when none survives does this raise
        :class:`~repro.exceptions.CorruptCheckpointError`.  Version-1
        (pre-generation, flat-layout) checkpoints still load.
        """
        directory = Path(path)
        try:
            root = load_json_checkpoint(
                directory / "fleet.json", kind="fleet manifest"
            )
        except CorruptCheckpointError:
            # torn root manifest: the generation directories are the
            # real source of truth, fall back to scanning them
            root = None
        version = None if root is None else root.get("version")
        if root is not None and version not in SUPPORTED_STATE_VERSIONS:
            raise CheckpointError(
                f"unsupported fleet state version {version!r} "
                f"(expected one of {SUPPORTED_STATE_VERSIONS})"
            )
        if root is not None and version == 1:
            # legacy flat layout: machine files beside the manifest
            manifest = root
            machine_states = {
                machine_id: load_json_checkpoint(
                    directory / f"machine-{machine_id}.json",
                    kind="machine checkpoint",
                )
                for machine_id in manifest.get("machines", [])
            }
        else:
            manifest, machine_states = FleetCheckpointStore(directory).load()
        try:
            params = manifest["params"]
            machine_ids = manifest["machines"]
            rounds = manifest["rounds"]
            window = params["window"]
            correlation_threshold = params["correlation_threshold"]
            linkage = params["linkage"]
            state_kernel = params["kernel"]
            state_backend = params["journal_backend"]
            state_max_lag = params["max_lag"]
        except (KeyError, TypeError) as error:
            raise CorruptCheckpointError(
                f"fleet manifest under {directory} is missing field "
                f"{error!r}"
            ) from error
        missing = [m for m in machine_ids if m not in stores]
        if missing:
            raise CheckpointError(
                f"no store was provided for checkpointed machine(s) {missing}"
            )
        fleet = cls(
            window=window,
            correlation_threshold=correlation_threshold,
            linkage=linkage,
            kernel=kernel if kernel is not None else state_kernel,
            journal_backend=(
                journal_backend if journal_backend is not None else state_backend
            ),
            executor=executor,
            max_lag=max_lag if max_lag is not None else state_max_lag,
        )
        for machine_id in machine_ids:
            fleet._machines[machine_id] = ShardedPipeline.from_state(
                stores[machine_id],
                machine_states[machine_id],
                executor=executor,
                kernel=kernel,
                journal_backend=journal_backend,
            )
            fleet._refresh_status(machine_id)
        fleet._rounds = rounds
        return fleet

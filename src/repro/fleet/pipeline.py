"""FleetPipeline: many machines' sharded pipelines behind one asyncio driver.

One :class:`~repro.core.sharded.ShardedPipeline` per machine, one
:class:`~repro.fleet.merge.FleetCorrelationMerge` summing their evidence.
The synchronous :meth:`FleetPipeline.update` sweeps the fleet once in the
calling thread; the asyncio :meth:`FleetPipeline.drive` runs the full
ingest loop — feed each machine's next slice of events (the logging I/O),
update every machine whose journal advanced (CPU work, pushed onto the
event loop's default executor so queries stay responsive; the machines'
own shard updates still go through whatever
:class:`~repro.core.executors.ShardExecutor` the fleet was built with),
merge the changed machines' evidence, and repeat.

Determinism: rounds are barriers.  Every machine's feed for a round is
appended before any update starts, all updates finish before the merge,
and the merge runs on the event-loop thread — so the per-round event
counts, cluster models and progress lines are byte-identical whatever
the executor strategy (the CLI smoke test asserts exactly this).

Backpressure: ``max_lag`` bounds how many journaled-but-unconsumed
events a machine may accumulate.  The feed stage stops pulling from a
machine's chunk iterator once its backlog would exceed the bound; the
leftover events are buffered and drain over subsequent rounds, so a slow
machine throttles its own feed instead of growing without bound.

Checkpoints are per machine: :meth:`to_state_dir` writes one
``machine-<id>.json`` (the machine's full
:meth:`~repro.core.sharded.ShardedPipeline.to_state`) plus a
``fleet.json`` manifest; :meth:`from_state_dir` restores every machine
over its re-opened store and the next update consumes only events the
checkpoint had not read.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.cluster_model import ClusterSet
from repro.core.clustering import LINKAGE_COMPLETE
from repro.core.hac_kernel import KERNEL_AUTO
from repro.core.pipeline import DEFAULT_CORRELATION_THRESHOLD, DEFAULT_WINDOW
from repro.core.sharded import ShardedPipeline
from repro.fleet.merge import FleetCorrelationMerge, MergeStats
from repro.ttkv.columnar import BACKEND_AUTO
from repro.ttkv.store import TTKV

STATE_VERSION = 1

#: Machine ids become checkpoint file names, so keep them path-safe.
_MACHINE_ID = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass(frozen=True)
class FleetUpdateStats:
    """What one synchronous :meth:`FleetPipeline.update` sweep did."""

    events_consumed: int
    machines_updated: int
    machines_total: int
    merge: MergeStats | None


@dataclass(frozen=True)
class FleetRound:
    """One round of the asyncio driver (passed to ``on_round``)."""

    index: int
    events_fed: int
    events_consumed: int
    machines_updated: int
    machines_total: int
    clusters: ClusterSet
    merge: MergeStats | None


class FleetPipeline:
    """A fleet of per-machine pipelines plus the fleet-level merge.

    Parameters mirror the per-machine pipelines (``window``,
    ``correlation_threshold``, ``linkage``, ``kernel``,
    ``journal_backend``) and apply to every machine.  ``executor`` is the
    shard execution strategy shared by all machines — caller-owned, like
    the sharded pipeline's; only strategies safe for concurrent
    ``map_shards`` calls belong here (serial constructs per-call state,
    the thread pool is locked; the process executor's worker-affinity
    cache is per-session state and must not be shared across machines
    updating concurrently).  ``max_lag`` is the per-machine backpressure
    bound used by :meth:`drive` (``None``: unbounded).
    """

    def __init__(
        self,
        *,
        window: float = DEFAULT_WINDOW,
        correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
        linkage: str = LINKAGE_COMPLETE,
        kernel: str = KERNEL_AUTO,
        journal_backend: str = BACKEND_AUTO,
        executor=None,
        max_lag: int | None = None,
    ) -> None:
        if max_lag is not None and max_lag < 1:
            raise ValueError(f"max_lag must be at least 1, got {max_lag}")
        self.window = window
        self.correlation_threshold = correlation_threshold
        self.linkage = linkage
        self.kernel = kernel
        self.journal_backend = journal_backend
        self.executor = executor
        self.max_lag = max_lag
        self._machines: dict[str, ShardedPipeline] = {}
        self._merge = FleetCorrelationMerge(
            window=window,
            correlation_threshold=correlation_threshold,
            linkage=linkage,
            kernel=kernel,
        )
        self._status: dict[str, dict] = {}
        self._rounds = 0
        self.last_stats: FleetUpdateStats | None = None

    # -- membership ----------------------------------------------------------

    @property
    def machine_ids(self) -> tuple[str, ...]:
        return tuple(self._machines)

    @property
    def rounds(self) -> int:
        """Completed driver rounds (survives checkpoints)."""
        return self._rounds

    def machine(self, machine_id: str) -> ShardedPipeline:
        try:
            return self._machines[machine_id]
        except KeyError:
            raise KeyError(
                f"no machine {machine_id!r}; machines: {list(self._machines)}"
            ) from None

    def add_machine(
        self,
        machine_id: str,
        store: TTKV,
        shard_prefixes: Sequence[str] = (),
    ) -> ShardedPipeline:
        """Attach a machine's store; its evidence joins the next update."""
        if not _MACHINE_ID.match(machine_id):
            raise ValueError(
                f"machine id {machine_id!r} is not path-safe "
                "(letters, digits, dot, underscore, dash)"
            )
        if machine_id in self._machines:
            raise ValueError(f"machine {machine_id!r} already attached")
        pipeline = ShardedPipeline(
            store,
            shard_prefixes=tuple(shard_prefixes),
            window=self.window,
            correlation_threshold=self.correlation_threshold,
            linkage=self.linkage,
            kernel=self.kernel,
            journal_backend=self.journal_backend,
            executor=self.executor,
        )
        self._machines[machine_id] = pipeline
        self._refresh_status(machine_id)
        return pipeline

    def remove_machine(self, machine_id: str) -> None:
        """Detach a machine and subtract its evidence from the fleet model."""
        pipeline = self.machine(machine_id)
        pipeline.close()
        del self._machines[machine_id]
        self._status.pop(machine_id, None)
        if machine_id in self._merge.machine_ids:
            self._merge.retire(machine_id)

    def close(self) -> None:
        """Detach every machine (the caller owns the executor)."""
        for pipeline in self._machines.values():
            pipeline.close()

    # -- querying ------------------------------------------------------------

    @property
    def cluster_set(self) -> ClusterSet | None:
        """The last merged fleet cluster model, without recomputing."""
        return self._merge.last_clusters

    def clusters(self) -> ClusterSet:
        """The fleet cluster model, refreshing dirty components."""
        return self._merge.clusters()

    def machine_status(self, machine_id: str) -> dict | None:
        """The machine's last status snapshot (``None``: unknown machine).

        Snapshots are (re)written on the driver thread after each round,
        so readers on the event loop never race an in-flight update.
        """
        return self._status.get(machine_id)

    def health(self) -> dict:
        """Fleet-level liveness summary for the query API."""
        clusters = self._merge.last_clusters
        return {
            "status": "ok",
            "machines": len(self._machines),
            "rounds": self._rounds,
            "fleet_keys": len(self._merge.matrix.pairwise_counts()[0]),
            "clusters": None if clusters is None else len(clusters),
        }

    def clusters_payload(self) -> dict:
        """JSON-safe body for ``GET /clusters`` (last coherent model)."""
        clusters = self._merge.last_clusters
        return {
            "machines": len(self._machines),
            "rounds": self._rounds,
            "count": 0 if clusters is None else len(clusters),
            "multi": 0 if clusters is None else len(clusters.multi_clusters()),
            "clusters": (
                []
                if clusters is None
                else [cluster.sorted_keys() for cluster in clusters]
            ),
        }

    def _refresh_status(self, machine_id: str) -> None:
        pipeline = self._machines[machine_id]
        clusters = pipeline.cluster_set
        stats = pipeline.last_stats
        self._status[machine_id] = {
            "machine": machine_id,
            "shards": len(pipeline.shard_ids),
            "pending_events": pipeline.pending_events,
            "needs_update": pipeline.needs_update(),
            "clusters": None if clusters is None else len(clusters),
            "events_consumed": None if stats is None else stats.events_consumed,
        }

    # -- updating ------------------------------------------------------------

    def _sweep(self) -> tuple[int, int]:
        """Update machines that need it; ingest their evidence.

        Returns ``(events_consumed, machines_updated)``.  A machine not
        yet represented in the merge (fresh attach, or a resume — the
        merge rebuilds from live snapshots rather than being
        checkpointed) is swept even if its journal is quiet, so its
        evidence always reaches the fleet model.
        """
        consumed = updated = 0
        merged = set(self._merge.machine_ids)
        for machine_id, pipeline in self._machines.items():
            if pipeline.needs_update() or machine_id not in merged:
                pipeline.update()
                consumed += pipeline.last_stats.events_consumed
                updated += 1
                self._merge.ingest(machine_id, *pipeline.pairwise_counts())
            self._refresh_status(machine_id)
        return consumed, updated

    def update(self) -> ClusterSet:
        """One synchronous fleet sweep; returns the merged cluster model."""
        consumed, updated = self._sweep()
        clusters = self._merge.clusters()
        self.last_stats = FleetUpdateStats(
            events_consumed=consumed,
            machines_updated=updated,
            machines_total=len(self._machines),
            merge=self._merge.last_stats,
        )
        return clusters

    async def drive(
        self,
        feeds: Mapping[str, Iterable[Sequence[tuple]]],
        *,
        on_round: Callable[[FleetRound], None] | None = None,
        schedule: Callable[
            [int], Mapping[str, Iterable[Sequence[tuple]]] | None
        ] | None = None,
    ) -> list[FleetRound]:
        """Drive the fleet until every feed is exhausted.

        ``feeds`` maps machine ids to iterables of event chunks (each a
        sequence of ``(timestamp, key, value)`` modification events for
        that machine's store).  Per round: append each machine's next
        slice — throttled to ``max_lag`` un-consumed events per machine —
        then update every machine whose journal advanced concurrently on
        the event loop's executor, then merge on the loop thread.
        ``on_round`` (and the returned list) observe every round.

        ``schedule`` models fleet churn: it is called on the loop thread
        at the start of each round with the upcoming round index and may
        mutate membership — :meth:`add_machine` for arrivals (returning
        their feeds, merged into the drive) and :meth:`remove_machine`
        for departures (their remaining buffered feed is dropped, their
        evidence retired).  Returning ``None`` retires the hook: the
        drive then ends once the remaining feeds drain.
        """
        unknown = set(feeds) - set(self._machines)
        if unknown:
            raise KeyError(
                f"feeds for unattached machine(s) {sorted(unknown)}; "
                f"machines: {list(self._machines)}"
            )
        loop = asyncio.get_running_loop()
        iterators: dict[str, Iterator] = {
            machine_id: iter(chunks) for machine_id, chunks in feeds.items()
        }
        buffers: dict[str, list] = {machine_id: [] for machine_id in feeds}

        def refill(machine_id: str, buffer: list) -> None:
            """Pull chunks until the buffer is non-empty or the feed ends."""
            while not buffer and machine_id in iterators:
                chunk = next(iterators[machine_id], None)
                if chunk is None:
                    del iterators[machine_id]
                else:
                    buffer.extend(chunk)

        rounds: list[FleetRound] = []
        while schedule is not None or iterators or any(buffers.values()):
            if schedule is not None:
                arrivals = schedule(self._rounds + 1)
                if arrivals is None:
                    schedule = None
                    if not iterators and not any(buffers.values()):
                        break  # nothing left to feed: no trailing no-op round
                else:
                    late = set(arrivals) - set(self._machines)
                    if late:
                        raise KeyError(
                            f"scheduled feeds for unattached machine(s) "
                            f"{sorted(late)}; machines: {list(self._machines)}"
                        )
                    for machine_id, chunks in arrivals.items():
                        iterators[machine_id] = iter(chunks)
                        buffers.setdefault(machine_id, [])
            fed = 0
            for machine_id in list(buffers):
                if machine_id not in self._machines:
                    # removed mid-drive: drop its remaining feed
                    buffers.pop(machine_id)
                    iterators.pop(machine_id, None)
                    continue
                buffer = buffers[machine_id]
                refill(machine_id, buffer)
                if not buffer:
                    buffers.pop(machine_id)
                    continue
                pipeline = self._machines[machine_id]
                if self.max_lag is None:
                    take = len(buffer)
                else:
                    take = min(
                        len(buffer),
                        max(0, self.max_lag - pipeline.pending_events),
                    )
                if take:
                    # the logging I/O: journal appends interleave with
                    # any in-flight query handlers at this await point
                    pipeline.store.record_events(buffer[:take])
                    del buffer[:take]
                    fed += take
                await asyncio.sleep(0)
                # eager refill so an exhausted feed ends the drive this
                # round instead of adding a trailing no-op round
                refill(machine_id, buffer)
                if not buffer and machine_id not in iterators:
                    buffers.pop(machine_id)
            merged = set(self._merge.machine_ids)
            pending = [
                (machine_id, pipeline)
                for machine_id, pipeline in self._machines.items()
                if pipeline.needs_update() or machine_id not in merged
            ]
            # CPU stage: machine updates run concurrently on the loop's
            # executor (their shard updates go through self.executor);
            # the barrier before the merge keeps rounds deterministic.
            await asyncio.gather(
                *(
                    loop.run_in_executor(None, pipeline.update)
                    for _, pipeline in pending
                )
            )
            consumed = updated = 0
            for machine_id, pipeline in pending:
                consumed += pipeline.last_stats.events_consumed
                updated += 1
                self._merge.ingest(machine_id, *pipeline.pairwise_counts())
            for machine_id in self._machines:
                self._refresh_status(machine_id)
            clusters = self._merge.clusters()
            self._rounds += 1
            self.last_stats = FleetUpdateStats(
                events_consumed=consumed,
                machines_updated=updated,
                machines_total=len(self._machines),
                merge=self._merge.last_stats,
            )
            report = FleetRound(
                index=self._rounds,
                events_fed=fed,
                events_consumed=consumed,
                machines_updated=updated,
                machines_total=len(self._machines),
                clusters=clusters,
                merge=self._merge.last_stats,
            )
            rounds.append(report)
            if on_round is not None:
                on_round(report)
        return rounds

    # -- checkpointing -------------------------------------------------------

    def to_state_dir(self, path: str | Path) -> None:
        """Checkpoint the fleet: one JSON file per machine plus a manifest.

        The merge itself is not persisted — it is a pure function of the
        machines' evidence and is rebuilt from their snapshots on the
        first post-resume update.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        for machine_id, pipeline in self._machines.items():
            (directory / f"machine-{machine_id}.json").write_text(
                json.dumps(pipeline.to_state()) + "\n", encoding="utf-8"
            )
        manifest = {
            "version": STATE_VERSION,
            "rounds": self._rounds,
            "machines": list(self._machines),
            "params": {
                "window": self.window,
                "correlation_threshold": self.correlation_threshold,
                "linkage": self.linkage,
                "kernel": self.kernel,
                "journal_backend": self.journal_backend,
                "max_lag": self.max_lag,
            },
        }
        (directory / "fleet.json").write_text(
            json.dumps(manifest) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_state_dir(
        cls,
        path: str | Path,
        stores: Mapping[str, TTKV],
        *,
        executor=None,
        kernel: str | None = None,
        journal_backend: str | None = None,
        max_lag: int | None = None,
    ) -> "FleetPipeline":
        """Restore a fleet over re-opened per-machine stores.

        ``stores`` must provide a store for every machine named in the
        manifest, each holding (at least) the journal that machine's
        checkpoint had consumed.  ``executor`` is runtime configuration,
        like the sharded pipeline's; ``kernel``/``journal_backend``
        override the checkpointed values when given; ``max_lag``
        overrides the checkpointed backpressure bound.
        """
        directory = Path(path)
        manifest = json.loads((directory / "fleet.json").read_text(encoding="utf-8"))
        if manifest.get("version") != STATE_VERSION:
            raise ValueError(
                f"unsupported fleet state version {manifest.get('version')!r} "
                f"(expected {STATE_VERSION})"
            )
        params = manifest["params"]
        missing = [m for m in manifest["machines"] if m not in stores]
        if missing:
            raise ValueError(
                f"no store was provided for checkpointed machine(s) {missing}"
            )
        fleet = cls(
            window=params["window"],
            correlation_threshold=params["correlation_threshold"],
            linkage=params["linkage"],
            kernel=kernel if kernel is not None else params["kernel"],
            journal_backend=(
                journal_backend
                if journal_backend is not None
                else params["journal_backend"]
            ),
            executor=executor,
            max_lag=max_lag if max_lag is not None else params["max_lag"],
        )
        for machine_id in manifest["machines"]:
            state = json.loads(
                (directory / f"machine-{machine_id}.json").read_text(encoding="utf-8")
            )
            fleet._machines[machine_id] = ShardedPipeline.from_state(
                stores[machine_id],
                state,
                executor=executor,
                kernel=kernel,
                journal_backend=journal_backend,
            )
            fleet._refresh_status(machine_id)
        fleet._rounds = manifest["rounds"]
        return fleet

"""Fleet query API: three GET routes over raw asyncio streams.

No framework, no threads: :class:`FleetQueryServer` is an
``asyncio.start_server`` handler that parses the request line, drains
the headers and answers from the fleet's last coherent snapshots —
:meth:`~repro.fleet.pipeline.FleetPipeline.clusters_payload`,
:meth:`~repro.fleet.pipeline.FleetPipeline.machine_status` and
:meth:`~repro.fleet.pipeline.FleetPipeline.health` are all plain dict
reads refreshed by the driver, so a query during live ingest never
blocks on (or races) an in-flight update.

Routes::

    GET /clusters                 the merged fleet cluster model
    GET /machines                 machine ids + health at a glance
    GET /machines/<id>/status     one machine's last status snapshot
    GET /health                   liveness + fleet-level counters

Under a supervised drive (``drive(resilience=...)``) ``/health`` adds
the supervision summary — worst-machine status, health counts, the
stale-evidence machine list, restart/fault totals — and each machine's
``/status`` carries its ``HEALTHY/DEGRADED/UNHEALTHY`` state.
"""

from __future__ import annotations

import asyncio
import json

from repro.fleet.pipeline import FleetPipeline

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
}


class FleetQueryServer:
    """Serve fleet cluster/status queries while ingest continues.

    Usage (inside a running event loop, e.g. alongside
    :meth:`~repro.fleet.pipeline.FleetPipeline.drive`)::

        server = FleetQueryServer(fleet)
        host, port = await server.start()   # port 0: pick a free port
        ...
        await server.close()

    ``async with FleetQueryServer(fleet) as server:`` does the same.
    """

    def __init__(self, fleet: FleetPipeline) -> None:
        self._fleet = fleet
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); raises before :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(self._handle, host, port)
        return self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FleetQueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _route(self, method: str, path: str) -> tuple[int, dict]:
        if method != "GET":
            return 405, {"error": f"method {method} not allowed"}
        if path == "/health":
            return 200, self._fleet.health()
        if path == "/clusters":
            return 200, self._fleet.clusters_payload()
        if path in ("/machines", "/machines/"):
            return 200, self._fleet.machines_payload()
        if path.startswith("/machines/") and path.endswith("/status"):
            machine_id = path[len("/machines/") : -len("/status")].rstrip("/")
            status = self._fleet.machine_status(machine_id)
            if status is None:
                return 404, {"error": f"no machine {machine_id!r}"}
            return 200, status
        return 404, {"error": f"no route {path!r}"}

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) >= 2:
                method, path = parts[0], parts[1].split("?", 1)[0]
                # drain the headers; all routes are bodyless GETs
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                status, payload = self._route(method, path)
            else:
                status, payload = 400, {"error": "malformed request line"}
            body = json.dumps(payload).encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

"""Deterministic fault injection and supervised recovery for the fleet.

Three pieces, all seeded and pure so every hostile run is replayable:

- :class:`FaultInjector` — named injection points (machine update crash,
  hang, slow round, torn/corrupt checkpoint write, snapshot loss) whose
  every decision derives from ``FaultSpec.seed`` via
  :func:`~repro.common.hashing.stable_hash` over
  ``seed:point:machine:round:attempt``.  Probabilistic rates and an
  explicit :class:`ScheduledFault` list compose; the injector records
  each fired fault, and :meth:`FaultInjector.signature` renders the
  canonically ordered sequence as one JSON string — re-running the same
  seed reproduces it byte-for-byte.
- :class:`MachineSupervisor` — the per-machine health state machine
  (``HEALTHY → DEGRADED → UNHEALTHY``): failures accumulate, a success
  resets, and ``failure_threshold`` consecutive failures trip the
  circuit breaker (the driver then restarts the machine from its last
  good checkpoint).  Machines whose merge evidence may exceed their
  restored live state are flagged ``stale_evidence`` until the next
  merge re-syncs them.
- :class:`FleetResilience` — the bundle
  :meth:`~repro.fleet.pipeline.FleetPipeline.drive` takes: injector +
  supervisor + :class:`ResilienceConfig` (round timeout, bounded retry
  with deterministic exponential backoff, checkpoint cadence) + an
  optional :class:`~repro.fleet.checkpointing.FleetCheckpointStore` for
  restart-from-checkpoint and crash-safe generation writes.

Recovery is correct by construction: a machine's store/journal survives
its (injected) crash — only in-memory pipeline state is lost — so a
pipeline restarted from any checkpoint (or from scratch) converges back
to the same evidence once it re-reads the journal, and
:class:`~repro.fleet.merge.FleetCorrelationMerge`'s snapshot-diff ingest
retracts whatever the restart lost via ``apply_count_deltas``.  The
property suite pins the headline: under arbitrary seeded fault
schedules, final fleet clusters ≡
:func:`~repro.fleet.merge.concatenated_batch_clusters`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.common.hashing import stable_hash
from repro.fleet.checkpointing import FleetCheckpointStore

# -- injection points ---------------------------------------------------------

#: The machine's update raises mid-round (in-memory state is lost).
POINT_UPDATE_CRASH = "update_crash"
#: The machine's update wedges (recovered via the driver's round timeout).
POINT_UPDATE_HANG = "update_hang"
#: The machine's update is slow but completes (exercises retry-free paths).
POINT_SLOW_ROUND = "slow_round"
#: A checkpoint machine file is truncated mid-write.
POINT_TORN_WRITE = "torn_write"
#: A checkpoint machine file is bit-flipped after the write.
POINT_CORRUPT_CHECKPOINT = "corrupt_checkpoint"
#: The machine reboots at round start, losing its in-memory snapshot.
POINT_SNAPSHOT_LOSS = "snapshot_loss"

FAULT_POINTS = (
    POINT_UPDATE_CRASH,
    POINT_UPDATE_HANG,
    POINT_SLOW_ROUND,
    POINT_TORN_WRITE,
    POINT_CORRUPT_CHECKPOINT,
    POINT_SNAPSHOT_LOSS,
)

#: Crash placement within the update (derived from the seed per decision):
#: ``before`` loses the round's work, ``after`` completes the update but
#: dies before its evidence reaches the merge.
CRASH_BEFORE = "before"
CRASH_AFTER = "after"

_HASH_SPAN = float(1 << 32)


class InjectedFault(RuntimeError):
    """Base class for faults raised by the injector (not real errors)."""


class InjectedCrash(InjectedFault):
    """A deterministic injected machine crash."""


@dataclass(frozen=True)
class ScheduledFault:
    """One explicitly scheduled fault (fires regardless of rates).

    ``times`` makes the fault fire on attempts ``0 .. times-1`` of its
    round, so a single entry can hold a machine down long enough to trip
    the circuit breaker.
    """

    round_index: int
    machine_id: str
    point: str
    times: int = 1

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; "
                f"points: {list(FAULT_POINTS)}"
            )
        if self.times < 1:
            raise ValueError(f"times must be at least 1, got {self.times}")


@dataclass(frozen=True)
class FaultSpec:
    """A seeded fault schedule: per-point rates plus explicit entries.

    Rates are per (machine, round, attempt) probabilities in ``[0, 1)``;
    keep them strictly below 1 or retries can never succeed.  Durations
    are deliberately tiny defaults — tests scale them against the
    driver's ``round_timeout``.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    torn_write_rate: float = 0.0
    corrupt_rate: float = 0.0
    snapshot_loss_rate: float = 0.0
    hang_seconds: float = 0.05
    slow_seconds: float = 0.005
    scheduled: tuple[ScheduledFault, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "crash_rate",
            "hang_rate",
            "slow_rate",
            "torn_write_rate",
            "corrupt_rate",
            "snapshot_loss_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")

    @property
    def any_faults(self) -> bool:
        return bool(self.scheduled) or any(
            getattr(self, name) > 0.0
            for name in (
                "crash_rate",
                "hang_rate",
                "slow_rate",
                "torn_write_rate",
                "corrupt_rate",
                "snapshot_loss_rate",
            )
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault (the injector's replayable record)."""

    round_index: int
    machine_id: str
    point: str
    attempt: int
    detail: str = ""

    @property
    def sort_key(self) -> tuple:
        return (self.round_index, self.machine_id, self.point, self.attempt)


@dataclass(frozen=True)
class UpdatePlan:
    """The injector's verdict for one update attempt."""

    slow_seconds: float = 0.0
    hang_seconds: float = 0.0
    crash: str | None = None  # None | CRASH_BEFORE | CRASH_AFTER


class FaultInjector:
    """Seeded, deterministic fault decisions at named injection points.

    Every decision is a pure function of
    ``(seed, point, machine_id, round_index, attempt)`` — concurrency,
    retries and wall-clock never perturb it.  Fired faults are recorded;
    :meth:`sequence` returns them in canonical order and
    :meth:`signature` serialises that order, so two runs with the same
    seed (and the same supervision outcome) compare byte-for-byte.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._scheduled: dict[tuple[int, str, str], int] = {
            (entry.round_index, entry.machine_id, entry.point): entry.times
            for entry in spec.scheduled
        }
        self._fired: list[FaultEvent] = []

    # -- decisions -----------------------------------------------------------

    def _chance(
        self, point: str, machine_id: str, round_index: int, attempt: int
    ) -> float:
        token = f"{self.spec.seed}:{point}:{machine_id}:{round_index}:{attempt}"
        return stable_hash(token) / _HASH_SPAN

    def _fires(
        self,
        point: str,
        rate: float,
        machine_id: str,
        round_index: int,
        attempt: int,
    ) -> bool:
        times = self._scheduled.get((round_index, machine_id, point), 0)
        if attempt < times:
            return True
        if rate <= 0.0:
            return False
        return self._chance(point, machine_id, round_index, attempt) < rate

    def _record(
        self,
        point: str,
        machine_id: str,
        round_index: int,
        attempt: int,
        detail: str = "",
    ) -> None:
        self._fired.append(
            FaultEvent(
                round_index=round_index,
                machine_id=machine_id,
                point=point,
                attempt=attempt,
                detail=detail,
            )
        )

    def decide_update(
        self, machine_id: str, round_index: int, attempt: int
    ) -> UpdatePlan:
        """Slow/hang/crash verdict for one machine-update attempt."""
        spec = self.spec
        slow = hang = 0.0
        crash: str | None = None
        if self._fires(
            POINT_SLOW_ROUND, spec.slow_rate, machine_id, round_index, attempt
        ):
            slow = spec.slow_seconds
            self._record(
                POINT_SLOW_ROUND, machine_id, round_index, attempt,
                detail=f"{slow}s",
            )
        if self._fires(
            POINT_UPDATE_HANG, spec.hang_rate, machine_id, round_index, attempt
        ):
            hang = spec.hang_seconds
            self._record(
                POINT_UPDATE_HANG, machine_id, round_index, attempt,
                detail=f"{hang}s",
            )
        if self._fires(
            POINT_UPDATE_CRASH, spec.crash_rate, machine_id, round_index, attempt
        ):
            mode_token = f"{spec.seed}:crash-mode:{machine_id}:{round_index}:{attempt}"
            crash = CRASH_AFTER if stable_hash(mode_token) % 2 else CRASH_BEFORE
            self._record(
                POINT_UPDATE_CRASH, machine_id, round_index, attempt,
                detail=crash,
            )
        return UpdatePlan(slow_seconds=slow, hang_seconds=hang, crash=crash)

    def decide_snapshot_loss(self, machine_id: str, round_index: int) -> bool:
        """Does this machine reboot (losing in-memory state) this round?"""
        if self._fires(
            POINT_SNAPSHOT_LOSS,
            self.spec.snapshot_loss_rate,
            machine_id,
            round_index,
            0,
        ):
            self._record(POINT_SNAPSHOT_LOSS, machine_id, round_index, 0)
            return True
        return False

    def decide_checkpoint_damage(
        self, machine_id: str, round_index: int
    ) -> str | None:
        """Damage verdict for one machine's checkpoint file this round."""
        if self._fires(
            POINT_TORN_WRITE,
            self.spec.torn_write_rate,
            machine_id,
            round_index,
            0,
        ):
            self._record(POINT_TORN_WRITE, machine_id, round_index, 0)
            return POINT_TORN_WRITE
        if self._fires(
            POINT_CORRUPT_CHECKPOINT,
            self.spec.corrupt_rate,
            machine_id,
            round_index,
            0,
        ):
            self._record(POINT_CORRUPT_CHECKPOINT, machine_id, round_index, 0)
            return POINT_CORRUPT_CHECKPOINT
        return None

    @staticmethod
    def damage_payload(payload: bytes, mode: str) -> bytes:
        """Apply one checkpoint-damage mode to a file's bytes."""
        if mode == POINT_TORN_WRITE:
            return payload[: max(1, len(payload) // 2)]
        if mode == POINT_CORRUPT_CHECKPOINT:
            index = len(payload) // 3
            return payload[:index] + bytes([payload[index] ^ 0xFF]) + payload[index + 1 :]
        raise ValueError(f"unknown damage mode {mode!r}")

    # -- the replayable record ----------------------------------------------

    @property
    def faults_fired(self) -> int:
        return len(self._fired)

    def sequence(self) -> tuple[FaultEvent, ...]:
        """Every fired fault in canonical (round, machine, point) order."""
        return tuple(sorted(self._fired, key=lambda event: event.sort_key))

    def signature(self) -> str:
        """The fired-fault sequence as one JSON string (byte-comparable)."""
        return json.dumps(
            [
                {
                    "round": event.round_index,
                    "machine": event.machine_id,
                    "point": event.point,
                    "attempt": event.attempt,
                    "detail": event.detail,
                }
                for event in self.sequence()
            ]
        )


# -- supervision --------------------------------------------------------------

HEALTH_HEALTHY = "HEALTHY"
HEALTH_DEGRADED = "DEGRADED"
HEALTH_UNHEALTHY = "UNHEALTHY"

ACTION_RETRY = "retry"
ACTION_RESTART = "restart"


@dataclass
class MachineHealth:
    """One machine's supervision record."""

    health: str = HEALTH_HEALTHY
    consecutive_failures: int = 0
    failures: int = 0
    timeouts: int = 0
    restarts: int = 0
    times_unhealthy: int = 0
    stale_evidence: bool = False
    last_fault: str | None = None

    def as_dict(self) -> dict:
        return {
            "health": self.health,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "restarts": self.restarts,
            "times_unhealthy": self.times_unhealthy,
            "stale_evidence": self.stale_evidence,
            "last_fault": self.last_fault,
        }


class MachineSupervisor:
    """The per-machine health state machine and circuit breaker.

    ``HEALTHY`` — last attempt succeeded.  ``DEGRADED`` — failures since
    the last success (or a restart not yet re-proven).  ``UNHEALTHY`` —
    ``failure_threshold`` consecutive failures tripped the breaker; the
    driver must restart the machine from its last good checkpoint before
    retrying.  A timeout always returns :data:`ACTION_RESTART`: the
    wedged update thread cannot be cancelled, so the pipeline object it
    holds must be abandoned, never retried in place.
    """

    def __init__(self, failure_threshold: int = 3) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be at least 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self._records: dict[str, MachineHealth] = {}

    def record(self, machine_id: str) -> MachineHealth:
        return self._records.setdefault(machine_id, MachineHealth())

    def forget(self, machine_id: str) -> None:
        self._records.pop(machine_id, None)

    def record_failure(
        self, machine_id: str, reason: str, *, timeout: bool = False
    ) -> str:
        """Count one failed attempt; returns the recovery action."""
        record = self.record(machine_id)
        record.failures += 1
        record.consecutive_failures += 1
        record.last_fault = reason
        if timeout:
            record.timeouts += 1
        if record.consecutive_failures >= self.failure_threshold:
            if record.health != HEALTH_UNHEALTHY:
                record.times_unhealthy += 1
            record.health = HEALTH_UNHEALTHY
            return ACTION_RESTART
        record.health = HEALTH_DEGRADED
        return ACTION_RESTART if timeout else ACTION_RETRY

    def record_restart(self, machine_id: str) -> None:
        record = self.record(machine_id)
        record.restarts += 1
        record.consecutive_failures = 0
        record.health = HEALTH_DEGRADED
        record.stale_evidence = True

    def record_success(self, machine_id: str) -> None:
        record = self.record(machine_id)
        record.consecutive_failures = 0
        record.health = HEALTH_HEALTHY

    def mark_synced(self, machine_id: str) -> None:
        """The machine's evidence re-reached the merge; no longer stale."""
        self.record(machine_id).stale_evidence = False

    def report(self, machine_id: str) -> dict | None:
        record = self._records.get(machine_id)
        return None if record is None else record.as_dict()

    def stale_machines(self) -> list[str]:
        return sorted(
            machine_id
            for machine_id, record in self._records.items()
            if record.stale_evidence
        )

    def fleet_report(self) -> dict:
        counts = {HEALTH_HEALTHY: 0, HEALTH_DEGRADED: 0, HEALTH_UNHEALTHY: 0}
        for record in self._records.values():
            counts[record.health] += 1
        if counts[HEALTH_UNHEALTHY]:
            status = "unhealthy"
        elif counts[HEALTH_DEGRADED]:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "healthy": counts[HEALTH_HEALTHY],
            "degraded": counts[HEALTH_DEGRADED],
            "unhealthy": counts[HEALTH_UNHEALTHY],
            "stale_evidence": self.stale_machines(),
            "restarts": sum(r.restarts for r in self._records.values()),
            "failures": sum(r.failures for r in self._records.values()),
        }


@dataclass
class ResilienceConfig:
    """Supervision policy for :meth:`FleetPipeline.drive`.

    ``round_timeout`` is the per-attempt wall bound on one machine's
    update (``None``: unbounded — hangs are then unrecoverable, so set
    it whenever ``hang_rate > 0``).  Retries back off deterministically:
    attempt *k* sleeps ``min(backoff_max, backoff_base * factor**k)``.
    ``failure_threshold`` consecutive failures trip the circuit breaker
    (restart from the last good checkpoint); ``max_round_attempts``
    bounds the whole retry loop so a rate-1.0 misconfiguration surfaces
    as an error instead of a livelock.  ``checkpoint_every`` writes a
    crash-safe checkpoint generation every N completed rounds when the
    resilience bundle has a state dir (``None``: only on demand).
    """

    round_timeout: float | None = None
    failure_threshold: int = 3
    max_round_attempts: int = 12
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    backoff_max: float = 0.05
    checkpoint_every: int | None = 1
    keep_generations: int = 3

    def backoff_seconds(self, attempt: int) -> float:
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** attempt,
        )


class FleetResilience:
    """Everything :meth:`FleetPipeline.drive` needs to survive faults.

    ``injector`` may be ``None`` (pure supervision — recover from *real*
    failures only); ``state_dir`` may be ``None`` (no checkpoints —
    restarts rebuild from scratch by re-reading the store's journal,
    which is slower but equally correct).
    """

    def __init__(
        self,
        *,
        injector: FaultInjector | None = None,
        config: ResilienceConfig | None = None,
        state_dir: str | Path | None = None,
    ) -> None:
        self.injector = injector
        self.config = config or ResilienceConfig()
        self.supervisor = MachineSupervisor(self.config.failure_threshold)
        self.store = (
            FleetCheckpointStore(state_dir, keep=self.config.keep_generations)
            if state_dir is not None
            else None
        )

    def load_machine_state(self, machine_id: str) -> dict | None:
        """The machine's last good checkpoint state (``None``: none)."""
        if self.store is None:
            return None
        return self.store.load_machine(machine_id)

    def should_checkpoint(self, round_index: int) -> bool:
        every = self.config.checkpoint_every
        return (
            self.store is not None
            and every is not None
            and round_index % every == 0
        )

    def payload_filter(self, round_index: int):
        """The checkpoint-damage hook for this round's generation write."""
        if self.injector is None:
            return None

        def damage(machine_id: str, payload: bytes) -> bytes:
            mode = self.injector.decide_checkpoint_damage(
                machine_id, round_index
            )
            if mode is None:
                return payload
            return FaultInjector.damage_payload(payload, mode)

        return damage

"""Crash-safe fleet checkpoints: atomic writes, checksums, generations.

A fleet checkpoint directory holds *generations* — each a complete,
self-describing snapshot of every machine's pipeline state::

    <dir>/
      fleet.json                    root manifest (the commit point)
      gen-000001/
        manifest.json               per-generation manifest + checksums
        machine-<id>.json           one ShardedPipeline.to_state() each
      gen-000002/
        ...
      quarantine/
        gen-000001/                 generations that failed verification

Three properties make resume survive a crash at any instant:

1. **Atomic writes** — every file lands via tmp + ``fsync`` + ``rename``
   (:func:`atomic_write_text`), so a reader never observes a torn file
   at its final name.  The root ``fleet.json`` is written *last*: until
   it names the new generation, resume still uses the previous one.
2. **Content checksums** — each generation's manifest records the
   SHA-256 of every machine file; :meth:`FleetCheckpointStore.load`
   verifies them before trusting a byte, so silent corruption (bit rot,
   a torn write that still parses) is caught, not resumed from.
3. **Keep-last-K generations with quarantine-then-fallback** — a
   generation that fails verification is moved into ``quarantine/`` and
   the next-newest is tried; only when every generation is damaged does
   :meth:`~FleetCheckpointStore.load` raise
   :class:`~repro.exceptions.CorruptCheckpointError`.

The pre-generation flat layout (``machine-<id>.json`` beside a
version-1 ``fleet.json``) still loads via
:meth:`~repro.fleet.pipeline.FleetPipeline.from_state_dir`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Callable, Mapping

from repro.exceptions import CheckpointError, CorruptCheckpointError

#: Default number of checkpoint generations retained after a write.
DEFAULT_KEEP_GENERATIONS = 3

_GEN_DIR = re.compile(r"^gen-(\d{6,})$")

#: Optional hook applied to a machine file's payload just before it is
#: written — the fault injector's torn/corrupt writes go through this.
PayloadFilter = Callable[[str, bytes], bytes]


def _fsync_directory(path: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp + fsync + rename).

    A crash before the rename leaves only the ``.tmp`` file; a crash
    after it leaves the complete new content.  No reader ever sees a
    partial write at the final name.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def atomic_write_text(path: str | Path, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, payload: dict) -> None:
    atomic_write_text(path, json.dumps(payload) + "\n")


def checksum(payload: bytes) -> str:
    return "sha256:" + hashlib.sha256(payload).hexdigest()


def load_json_checkpoint(path: str | Path, *, kind: str = "checkpoint") -> dict:
    """Parse a JSON checkpoint file, raising typed errors on damage.

    ``kind`` names the artifact in messages (``"session checkpoint"``,
    ``"fleet manifest"``, ...).  A missing file raises
    :class:`~repro.exceptions.CheckpointError`; a truncated or otherwise
    unparseable one raises
    :class:`~repro.exceptions.CorruptCheckpointError` — never a bare
    ``json.JSONDecodeError``.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise CheckpointError(f"{kind} {path} does not exist") from None
    except OSError as error:
        raise CheckpointError(f"{kind} {path} is unreadable: {error}") from error
    try:
        state = json.loads(text)
    except json.JSONDecodeError as error:
        raise CorruptCheckpointError(
            f"{kind} {path} is truncated or corrupt "
            f"(invalid JSON at char {error.pos} of {len(text)})"
        ) from error
    if not isinstance(state, dict):
        raise CorruptCheckpointError(
            f"{kind} {path} must hold a JSON object, "
            f"got {type(state).__name__}"
        )
    return state


class FleetCheckpointStore:
    """Generation-based crash-safe storage for fleet checkpoints."""

    def __init__(
        self,
        directory: str | Path,
        *,
        keep: int = DEFAULT_KEEP_GENERATIONS,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be at least 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    # -- layout --------------------------------------------------------------

    def generations(self) -> list[int]:
        """Existing generation numbers, oldest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _GEN_DIR.match(entry.name)
            if match and entry.is_dir():
                found.append(int(match.group(1)))
        return sorted(found)

    def generation_dir(self, generation: int) -> Path:
        return self.directory / f"gen-{generation:06d}"

    def quarantined(self) -> list[str]:
        """Names of quarantined generation directories (for reports)."""
        quarantine = self.directory / "quarantine"
        if not quarantine.is_dir():
            return []
        return sorted(entry.name for entry in quarantine.iterdir())

    # -- writing -------------------------------------------------------------

    def write(
        self,
        manifest: dict,
        machine_states: Mapping[str, dict],
        *,
        payload_filter: PayloadFilter | None = None,
    ) -> int:
        """Write one new generation; returns its number.

        ``manifest`` is the fleet-level state (version, rounds, params);
        this method adds the generation number, the machine list and the
        per-file checksums.  ``payload_filter(machine_id, payload)`` may
        rewrite a machine file's bytes just before the write — it exists
        for the fault injector's torn/corrupt checkpoint faults, and the
        recorded checksum is of the *original* payload so the damage is
        detected on load exactly like real-world corruption.

        The root ``fleet.json`` is updated last, atomically: a crash at
        any earlier instant leaves the previous generation current.
        """
        generations = self.generations()
        generation = (generations[-1] + 1) if generations else 1
        gen_dir = self.generation_dir(generation)
        gen_dir.mkdir(parents=True, exist_ok=True)

        checksums: dict[str, str] = {}
        for machine_id, state in machine_states.items():
            name = f"machine-{machine_id}.json"
            payload = (json.dumps(state) + "\n").encode("utf-8")
            checksums[name] = checksum(payload)
            if payload_filter is not None:
                payload = payload_filter(machine_id, payload)
            atomic_write_bytes(gen_dir / name, payload)

        full = dict(manifest)
        full["generation"] = generation
        full["machines"] = list(machine_states)
        full["checksums"] = checksums
        atomic_write_json(gen_dir / "manifest.json", full)
        # the commit point: until this lands, resume uses the old state
        atomic_write_json(self.directory / "fleet.json", full)
        self._prune(keep_from=generation)
        return generation

    def _prune(self, *, keep_from: int) -> None:
        import shutil

        alive = [g for g in self.generations() if g <= keep_from]
        for generation in alive[: -self.keep]:
            shutil.rmtree(self.generation_dir(generation), ignore_errors=True)

    # -- reading -------------------------------------------------------------

    def _quarantine(self, generation: int, reason: str) -> None:
        import shutil

        gen_dir = self.generation_dir(generation)
        target = self.directory / "quarantine" / gen_dir.name
        target.parent.mkdir(parents=True, exist_ok=True)
        if target.exists():  # re-quarantine after a partial earlier move
            shutil.rmtree(target, ignore_errors=True)
        os.replace(gen_dir, target)
        atomic_write_text(target / "QUARANTINE_REASON", reason + "\n")

    def _verify_generation(
        self, generation: int
    ) -> tuple[dict, dict[str, dict]]:
        """Load and checksum-verify one generation (raises on damage)."""
        gen_dir = self.generation_dir(generation)
        manifest = load_json_checkpoint(
            gen_dir / "manifest.json", kind="fleet generation manifest"
        )
        machine_states: dict[str, dict] = {}
        for machine_id in manifest.get("machines", []):
            name = f"machine-{machine_id}.json"
            path = gen_dir / name
            try:
                payload = path.read_bytes()
            except OSError as error:
                raise CorruptCheckpointError(
                    f"machine checkpoint {path} is unreadable: {error}"
                ) from error
            expected = manifest.get("checksums", {}).get(name)
            if expected is not None and checksum(payload) != expected:
                raise CorruptCheckpointError(
                    f"machine checkpoint {path} fails its checksum "
                    f"(expected {expected})"
                )
            machine_states[machine_id] = load_json_checkpoint(
                path, kind="machine checkpoint"
            )
        return manifest, machine_states

    def load(self) -> tuple[dict, dict[str, dict]]:
        """The newest verifiable generation: ``(manifest, machine_states)``.

        Damaged generations are quarantined and the next-newest tried;
        when none survives, raises
        :class:`~repro.exceptions.CorruptCheckpointError` naming every
        failure.
        """
        generations = self.generations()
        if not generations:
            raise CheckpointError(
                f"no checkpoint generations under {self.directory}"
            )
        failures: list[str] = []
        for generation in reversed(generations):
            try:
                return self._verify_generation(generation)
            except CheckpointError as error:
                failures.append(f"gen-{generation:06d}: {error}")
                self._quarantine(generation, str(error))
        raise CorruptCheckpointError(
            f"every checkpoint generation under {self.directory} is "
            "damaged: " + "; ".join(failures)
        )

    def load_machine(self, machine_id: str) -> dict | None:
        """The newest verifiable state for one machine (``None``: none).

        Used by supervised recovery to restart a single machine from its
        last good checkpoint: generations are walked newest-first and
        only this machine's file is verified, so one corrupt peer file
        does not force the whole generation out of consideration (and
        nothing is quarantined — full-fleet :meth:`load` owns that).
        """
        name = f"machine-{machine_id}.json"
        for generation in reversed(self.generations()):
            gen_dir = self.generation_dir(generation)
            try:
                manifest = load_json_checkpoint(
                    gen_dir / "manifest.json", kind="fleet generation manifest"
                )
                payload = (gen_dir / name).read_bytes()
                expected = manifest.get("checksums", {}).get(name)
                if expected is not None and checksum(payload) != expected:
                    raise CorruptCheckpointError(
                        f"{gen_dir / name} fails its checksum"
                    )
                return load_json_checkpoint(
                    gen_dir / name, kind="machine checkpoint"
                )
            except (CheckpointError, OSError):
                continue
        return None

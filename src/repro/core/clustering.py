"""Hierarchical agglomerative clustering with the maximum linkage criterion.

From-scratch implementation (the paper used the de Hoon C clustering
library; tests validate this implementation against SciPy on dense inputs).

Ocasta's distance structure is sparse — a pair of keys that never
co-modified has infinite distance — so complete-linkage merges can never
cross connected components of the finite-distance graph.  The implementation
exploits this: it finds components first and runs the O(n²·log n)-ish
agglomeration inside each, which keeps whole-application clustering fast
even with hundreds of keys.

Linkage updates use the Lance–Williams rule for complete linkage::

    d(k, i ∪ j) = max(d(k, i), d(k, j))

with the convention that a missing entry means infinite distance, so the
``max`` with a missing entry is infinite and the pair simply never merges.

Agglomeration is *deterministic under distance ties*: when two candidate
merges have equal linkage distance, the pair whose clusters contain the
lexicographically smallest keys wins.  The tie-break depends only on the
current partition and the distance structure — not on the order in which
clusters were created — so continuing an agglomeration from a partially
merged state (:func:`agglomerate_clusters`, the basis of the spliced
dendrogram repair in :mod:`repro.core.dendro_repair`) reproduces exactly
the merges a from-scratch run performs.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Sequence

from repro.core.correlation import CorrelationMatrix, correlation_to_distance
from repro.core.dendrogram import Dendrogram, Merge
from repro.core.hac_kernel import (
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    resolve_kernel,
)
from repro.core import hac_kernel

#: maximum-linkage a.k.a. complete linkage (the paper's choice)
LINKAGE_COMPLETE = "complete"
LINKAGE_SINGLE = "single"
LINKAGE_AVERAGE = "average"

_LINKAGES = (LINKAGE_COMPLETE, LINKAGE_SINGLE, LINKAGE_AVERAGE)


def hac_complete_linkage(matrix: CorrelationMatrix) -> Dendrogram:
    """Cluster the matrix's keys with complete linkage; full dendrogram.

    Only merges at finite distance are recorded; cutting the dendrogram at
    any threshold therefore never joins keys with zero correlation paths.
    """
    return hac(matrix, linkage=LINKAGE_COMPLETE)


def hac(
    matrix: CorrelationMatrix,
    linkage: str = LINKAGE_COMPLETE,
    *,
    kernel: str = KERNEL_PYTHON,
) -> Dendrogram:
    """Agglomerate with the requested linkage criterion.

    ``single`` and ``average`` exist for the linkage ablation benchmark;
    the paper (and all defaults in this library) use ``complete``.

    ``kernel`` selects the agglomeration implementation per component
    (see :mod:`repro.core.hac_kernel`): the default keeps this function
    the pure-Python reference; ``"auto"``/``"numpy"`` dispatch large
    components to the numpy kernel, which produces bit-identical merges.
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; options: {_LINKAGES}")
    merges: list[Merge] = []
    for component in matrix.connected_components():
        if len(component) > 1:
            merges.extend(
                agglomerate_component(matrix, component, linkage, kernel=kernel)
            )
    merges.sort(key=lambda merge: merge.distance)
    return Dendrogram(frozenset(matrix.keys), merges)


def component_clusters(
    matrix: CorrelationMatrix,
    component: frozenset[str] | set[str],
    correlation_threshold: float,
    linkage: str = LINKAGE_COMPLETE,
    *,
    kernel: str = KERNEL_PYTHON,
) -> list[frozenset[str]]:
    """Flat clusters of one connected component at a correlation threshold.

    Complete/single/average-linkage merges never cross components of the
    finite-distance graph, so clustering a component in isolation yields
    exactly the clusters a whole-matrix :func:`flat_clusters` run would
    produce for those keys.  The incremental pipeline uses this to
    re-agglomerate only the components a new write group touched.

    >>> from repro.core.correlation import CorrelationMatrix
    >>> matrix = CorrelationMatrix({
    ...     "a": {0, 1}, "b": {0, 1},   # always together: correlation 2
    ...     "c": {2},                   # co-modified with nothing
    ... })
    >>> [sorted(c) for c in component_clusters(matrix, {"a", "b"}, 2.0)]
    [['a', 'b']]
    >>> [sorted(c) for c in component_clusters(matrix, {"c"}, 2.0)]
    [['c']]
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; options: {_LINKAGES}")
    if len(component) == 1:
        return [frozenset(component)]
    merges = agglomerate_component(matrix, set(component), linkage, kernel=kernel)
    merges.sort(key=lambda merge: merge.distance)
    dendrogram = Dendrogram(frozenset(component), merges)
    return dendrogram.cut(correlation_to_distance(correlation_threshold))


def agglomerate_component(
    matrix: CorrelationMatrix,
    component: set[str],
    linkage: str,
    *,
    kernel: str = KERNEL_PYTHON,
) -> list[Merge]:
    """HAC restricted to one connected component (singleton seeds)."""
    return agglomerate_clusters(
        matrix,
        [frozenset((key,)) for key in sorted(component)],
        linkage,
        kernel=kernel,
    )


def seed_distances(
    matrix: CorrelationMatrix,
    clusters: Sequence[frozenset[str]],
    linkage: str,
) -> dict[frozenset[int], float]:
    """Inter-cluster linkage distances for an arbitrary starting partition.

    Cluster ids are positions in ``clusters``.  The returned sparse dict
    (missing pair = infinite) equals what the Lance–Williams recursion
    would have produced had the clusters been built up from singletons:
    ``complete`` is the maximum pairwise distance (infinite when any cross
    pair never co-modified), ``single`` the minimum, and ``average`` the
    plain mean of all cross pairs (infinite when any is missing, matching
    the sparse convention of :func:`_combine`).
    """
    key_to_id: dict[str, int] = {}
    for cluster_id, members in enumerate(clusters):
        for key in members:
            key_to_id[key] = cluster_id
    # Per cross-cluster pair: finite-edge count, max, min and sum of the
    # pairwise distances, aggregated over one sweep of the finite edges.
    stats: dict[frozenset[int], list] = {}
    for key_a, id_a in key_to_id.items():
        for key_b in matrix.neighbors(key_a):
            id_b = key_to_id.get(key_b)
            if id_b is None or id_b == id_a or key_b < key_a:
                continue
            d = correlation_to_distance(matrix.correlation_of(key_a, key_b))
            pair = frozenset((id_a, id_b))
            entry = stats.get(pair)
            if entry is None:
                stats[pair] = [1, d, d, d]
            else:
                entry[0] += 1
                entry[1] = max(entry[1], d)
                entry[2] = min(entry[2], d)
                entry[3] += d
    dist: dict[frozenset[int], float] = {}
    for pair, (count, d_max, d_min, d_sum) in stats.items():
        if linkage == LINKAGE_SINGLE:
            dist[pair] = d_min
            continue
        id_a, id_b = pair
        cross_pairs = len(clusters[id_a]) * len(clusters[id_b])
        if count < cross_pairs:
            continue  # some cross pair never co-modified: infinite
        dist[pair] = d_max if linkage == LINKAGE_COMPLETE else d_sum / cross_pairs
    return dist


def agglomerate_clusters(
    matrix: CorrelationMatrix,
    clusters: Sequence[frozenset[str]],
    linkage: str,
    *,
    kernel: str = KERNEL_PYTHON,
) -> list[Merge]:
    """Heap-driven HAC continued from an arbitrary disjoint partition.

    ``clusters`` seed the agglomeration as super-nodes; their pairwise
    linkage distances are derived from the matrix (:func:`seed_distances`),
    so the run is indistinguishable from a from-scratch agglomeration that
    already performed the merges building those clusters.  The spliced
    dendrogram repair (:mod:`repro.core.dendro_repair`) relies on this to
    re-agglomerate only the merge suffix an update invalidated.

    Determinism under ties: every cluster is identified by the rank of its
    lexicographically smallest key among the seeds, and a merged cluster
    takes the smaller of its halves' ids — so the heap's ``(distance,
    id, id)`` ordering is a function of cluster *contents*, independent of
    creation order.

    ``kernel`` dispatches the work to the numpy kernel
    (:mod:`repro.core.hac_kernel`) when it resolves to ``"numpy"`` for
    this component's size and linkage; the merges are bit-identical
    either way, only the cost differs.
    """
    members: dict[int, frozenset[str]] = dict(enumerate(clusters))
    if len(members) > 1 and sorted(members.values(), key=min) != list(clusters):
        raise ValueError("seed clusters must be sorted by their smallest key")

    component_keys = frozenset().union(*clusters) if clusters else frozenset()
    if (
        resolve_kernel(kernel, linkage, len(component_keys)) == KERNEL_NUMPY
        and len(clusters) > 1
    ):
        block = matrix.component_distance_block(component_keys)
        if len(clusters) == len(component_keys):
            # singleton seeds in sorted-key order: the block *is* the
            # seed matrix (copied — the kernel mutates it)
            square = block.square.copy()
        else:
            square = hac_kernel.seed_matrix(block, clusters, linkage)
        return hac_kernel.agglomerate_square(square, clusters, linkage)

    dist = seed_distances(matrix, clusters, linkage)
    heap: list[tuple[float, int, int]] = [
        (d, *sorted(pair)) for pair, d in dist.items()
    ]
    heapq.heapify(heap)
    merges: list[Merge] = []

    while heap:
        distance, id_a, id_b = heapq.heappop(heap)
        if id_a not in members or id_b not in members:
            continue  # stale entry: one side already merged away
        pair = frozenset((id_a, id_b))
        if dist.get(pair) != distance:
            # Stale entry: the distance was updated.  Exact comparison is
            # required, not isclose — merged clusters reuse their smaller
            # half's id, so a stale entry can name a *live* pair whose
            # distance moved to a nearby-but-different value; accepting it
            # would merge at the wrong recorded distance and break the
            # determinism the spliced repair relies on.  Exact equality is
            # sound because heap entries are pushed verbatim from ``dist``.
            continue
        left = members.pop(id_a)
        right = members.pop(id_b)
        merged_id = min(id_a, id_b)
        merged = left | right
        merges.append(Merge(left=left, right=right, distance=distance, members=merged))

        # Lance–Williams update against every other active cluster.
        for other_id in list(members):
            d_a = dist.pop(frozenset((id_a, other_id)), math.inf)
            d_b = dist.pop(frozenset((id_b, other_id)), math.inf)
            new_distance = _combine(linkage, d_a, d_b, left, right, members[other_id])
            if not math.isinf(new_distance):
                new_pair = frozenset((merged_id, other_id))
                dist[new_pair] = new_distance
                heapq.heappush(heap, (new_distance, *sorted((merged_id, other_id))))
        dist.pop(pair, None)
        members[merged_id] = merged

    return merges


def _combine(
    linkage: str,
    d_a: float,
    d_b: float,
    left: frozenset[str],
    right: frozenset[str],
    other: frozenset[str],
) -> float:
    if linkage == LINKAGE_COMPLETE:
        return max(d_a, d_b)
    if linkage == LINKAGE_SINGLE:
        return min(d_a, d_b)
    # Average linkage: size-weighted mean.  An infinite side means some
    # pair across the clusters has no correlation at all; the average is
    # then infinite too under our sparse convention (conservative: keeps
    # average-linkage from bridging unconnected keys).
    if math.isinf(d_a) or math.isinf(d_b):
        return math.inf
    size_a, size_b = len(left), len(right)
    del other
    return (size_a * d_a + size_b * d_b) / (size_a + size_b)


def flat_clusters(
    matrix: CorrelationMatrix,
    correlation_threshold: float = 2.0,
    linkage: str = LINKAGE_COMPLETE,
    *,
    kernel: str = KERNEL_PYTHON,
) -> list[frozenset[str]]:
    """Convenience: agglomerate and cut at a *correlation* threshold.

    ``correlation_threshold`` follows the paper's user-facing convention
    (default 2 = "only cluster keys always modified together"); it is
    converted to the equivalent distance internally.
    """
    if not 0.0 < correlation_threshold <= 2.0:
        raise ValueError(
            f"correlation threshold must lie in (0, 2], got {correlation_threshold}"
        )
    max_distance = correlation_to_distance(correlation_threshold)
    return hac(matrix, linkage=linkage, kernel=kernel).cut(max_distance)


DistanceFunction = Callable[[str, str], float]

"""Hierarchical agglomerative clustering with the maximum linkage criterion.

From-scratch implementation (the paper used the de Hoon C clustering
library; tests validate this implementation against SciPy on dense inputs).

Ocasta's distance structure is sparse — a pair of keys that never
co-modified has infinite distance — so complete-linkage merges can never
cross connected components of the finite-distance graph.  The implementation
exploits this: it finds components first and runs the O(n²·log n)-ish
agglomeration inside each, which keeps whole-application clustering fast
even with hundreds of keys.

Linkage updates use the Lance–Williams rule for complete linkage::

    d(k, i ∪ j) = max(d(k, i), d(k, j))

with the convention that a missing entry means infinite distance, so the
``max`` with a missing entry is infinite and the pair simply never merges.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable

from repro.core.correlation import CorrelationMatrix, correlation_to_distance
from repro.core.dendrogram import Dendrogram, Merge

#: maximum-linkage a.k.a. complete linkage (the paper's choice)
LINKAGE_COMPLETE = "complete"
LINKAGE_SINGLE = "single"
LINKAGE_AVERAGE = "average"

_LINKAGES = (LINKAGE_COMPLETE, LINKAGE_SINGLE, LINKAGE_AVERAGE)


def hac_complete_linkage(matrix: CorrelationMatrix) -> Dendrogram:
    """Cluster the matrix's keys with complete linkage; full dendrogram.

    Only merges at finite distance are recorded; cutting the dendrogram at
    any threshold therefore never joins keys with zero correlation paths.
    """
    return hac(matrix, linkage=LINKAGE_COMPLETE)


def hac(matrix: CorrelationMatrix, linkage: str = LINKAGE_COMPLETE) -> Dendrogram:
    """Agglomerate with the requested linkage criterion.

    ``single`` and ``average`` exist for the linkage ablation benchmark;
    the paper (and all defaults in this library) use ``complete``.
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; options: {_LINKAGES}")
    merges: list[Merge] = []
    for component in matrix.connected_components():
        if len(component) > 1:
            merges.extend(agglomerate_component(matrix, component, linkage))
    merges.sort(key=lambda merge: merge.distance)
    return Dendrogram(frozenset(matrix.keys), merges)


def component_clusters(
    matrix: CorrelationMatrix,
    component: frozenset[str] | set[str],
    correlation_threshold: float,
    linkage: str = LINKAGE_COMPLETE,
) -> list[frozenset[str]]:
    """Flat clusters of one connected component at a correlation threshold.

    Complete/single/average-linkage merges never cross components of the
    finite-distance graph, so clustering a component in isolation yields
    exactly the clusters a whole-matrix :func:`flat_clusters` run would
    produce for those keys.  The incremental pipeline uses this to
    re-agglomerate only the components a new write group touched.
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; options: {_LINKAGES}")
    if len(component) == 1:
        return [frozenset(component)]
    merges = agglomerate_component(matrix, set(component), linkage)
    merges.sort(key=lambda merge: merge.distance)
    dendrogram = Dendrogram(frozenset(component), merges)
    return dendrogram.cut(correlation_to_distance(correlation_threshold))


def agglomerate_component(
    matrix: CorrelationMatrix, component: set[str], linkage: str
) -> list[Merge]:
    """Classic heap-driven HAC restricted to one connected component."""
    # Active clusters are integer ids; sizes needed for average linkage.
    next_id = itertools.count()
    members: dict[int, frozenset[str]] = {}
    key_to_id: dict[str, int] = {}
    for key in sorted(component):
        cluster_id = next(next_id)
        members[cluster_id] = frozenset((key,))
        key_to_id[key] = cluster_id

    # Sparse inter-cluster distances; absent pair = infinite.
    dist: dict[frozenset[int], float] = {}
    for key_a in component:
        for key_b in matrix.neighbors(key_a):
            if key_b in component and key_a < key_b:
                pair = frozenset((key_to_id[key_a], key_to_id[key_b]))
                dist[pair] = correlation_to_distance(
                    matrix.correlation_of(key_a, key_b)
                )

    heap: list[tuple[float, int, int]] = [
        (d, *sorted(pair)) for pair, d in dist.items()
    ]
    heapq.heapify(heap)
    merges: list[Merge] = []

    while heap:
        distance, id_a, id_b = heapq.heappop(heap)
        if id_a not in members or id_b not in members:
            continue  # stale entry: one side already merged away
        pair = frozenset((id_a, id_b))
        if not math.isclose(dist.get(pair, math.inf), distance):
            continue  # stale entry: distance was updated
        left = members.pop(id_a)
        right = members.pop(id_b)
        merged_id = next(next_id)
        merged = left | right
        merges.append(Merge(left=left, right=right, distance=distance, members=merged))

        # Lance–Williams update against every other active cluster.
        for other_id in list(members):
            d_a = dist.pop(frozenset((id_a, other_id)), math.inf)
            d_b = dist.pop(frozenset((id_b, other_id)), math.inf)
            new_distance = _combine(linkage, d_a, d_b, left, right, members[other_id])
            if not math.isinf(new_distance):
                new_pair = frozenset((merged_id, other_id))
                dist[new_pair] = new_distance
                heapq.heappush(heap, (new_distance, *sorted((merged_id, other_id))))
        dist.pop(pair, None)
        members[merged_id] = merged

    return merges


def _combine(
    linkage: str,
    d_a: float,
    d_b: float,
    left: frozenset[str],
    right: frozenset[str],
    other: frozenset[str],
) -> float:
    if linkage == LINKAGE_COMPLETE:
        return max(d_a, d_b)
    if linkage == LINKAGE_SINGLE:
        return min(d_a, d_b)
    # Average linkage: size-weighted mean.  An infinite side means some
    # pair across the clusters has no correlation at all; the average is
    # then infinite too under our sparse convention (conservative: keeps
    # average-linkage from bridging unconnected keys).
    if math.isinf(d_a) or math.isinf(d_b):
        return math.inf
    size_a, size_b = len(left), len(right)
    del other
    return (size_a * d_a + size_b * d_b) / (size_a + size_b)


def flat_clusters(
    matrix: CorrelationMatrix,
    correlation_threshold: float = 2.0,
    linkage: str = LINKAGE_COMPLETE,
) -> list[frozenset[str]]:
    """Convenience: agglomerate and cut at a *correlation* threshold.

    ``correlation_threshold`` follows the paper's user-facing convention
    (default 2 = "only cluster keys always modified together"); it is
    converted to the equivalent distance internally.
    """
    if not 0.0 < correlation_threshold <= 2.0:
        raise ValueError(
            f"correlation threshold must lie in (0, 2], got {correlation_threshold}"
        )
    max_distance = correlation_to_distance(correlation_threshold)
    return hac(matrix, linkage=linkage).cut(max_distance)


DistanceFunction = Callable[[str, str], float]

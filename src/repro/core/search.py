"""DFS/BFS enumeration of (cluster, historical version) candidates.

"In DFS, Ocasta executes the trial on all the historical values of a
cluster before moving onto the next cluster.  In BFS, Ocasta executes the
latest historical value of each cluster before moving onto the next
historical value."  (§III-B)

Both strategies consume the same inputs: clusters already prioritised by
:mod:`repro.core.sorting` and, per cluster, versions ordered newest first
(rolling recent states back first is what makes trials grow with the age
of the error in Fig. 2a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.core.cluster_model import Cluster, ClusterVersion, cluster_versions
from repro.ttkv.store import TTKV


class SearchStrategy(enum.Enum):
    DFS = "dfs"
    BFS = "bfs"


@dataclass(frozen=True)
class Candidate:
    """One rollback to try: a cluster restored to one historical version."""

    cluster: Cluster
    version: ClusterVersion
    cluster_rank: int  # position of the cluster in the sorted order
    version_rank: int  # 0 = most recent version of that cluster


def candidate_versions(
    store: TTKV,
    clusters: list[Cluster],
    start: float | None = None,
    end: float | None = None,
) -> dict[int, list[ClusterVersion]]:
    """Per-cluster rollback candidates, newest first, within [start, end]."""
    versions: dict[int, list[ClusterVersion]] = {}
    for cluster in clusters:
        ordered = cluster_versions(store, cluster, start=start, end=end)
        ordered.reverse()
        versions[cluster.cluster_id] = ordered
    return versions


def search_order(
    clusters: list[Cluster],
    versions: dict[int, list[ClusterVersion]],
    strategy: SearchStrategy = SearchStrategy.DFS,
) -> Iterator[Candidate]:
    """Yield candidates in the order the chosen strategy explores them.

    DFS exhausts each cluster's history before the next cluster; BFS
    round-robins one version depth at a time across all clusters.
    """
    if strategy is SearchStrategy.DFS:
        for cluster_rank, cluster in enumerate(clusters):
            for version_rank, version in enumerate(versions[cluster.cluster_id]):
                yield Candidate(cluster, version, cluster_rank, version_rank)
        return
    if strategy is SearchStrategy.BFS:
        depth = 0
        remaining = True
        while remaining:
            remaining = False
            for cluster_rank, cluster in enumerate(clusters):
                cluster_versions_list = versions[cluster.cluster_id]
                if depth < len(cluster_versions_list):
                    remaining = True
                    yield Candidate(
                        cluster, cluster_versions_list[depth], cluster_rank, depth
                    )
            depth += 1
        return
    raise ValueError(f"unknown strategy {strategy!r}")


def total_candidates(versions: dict[int, list[ClusterVersion]]) -> int:
    """How many trials an exhaustive search would execute."""
    return sum(len(v) for v in versions.values())

"""Sliding-window write-group extraction.

"To determine whether keys have been modified together, Ocasta uses a
sliding time window and considers all keys written within the window to
have been modified together."  (§III-A)

The window is applied as gap-based sessionisation: a modification event
joins the current group when it falls within ``window`` seconds of the
*previous* event, so a group is a maximal run of modifications with no gap
larger than the window.  This is the natural sliding-window reading — the
window slides along with the latest write rather than chopping time into
fixed buckets — and it degrades correctly at ``window=0``, where only
modifications carrying the identical timestamp group together (the paper's
Fig. 3a cliff, caused by 1-second timestamp quantisation).

A fixed-bucket alternative is provided for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

try:  # soft dependency: windowing works without numpy (pure-Python loop)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Chunks below this size gain nothing from vectorised boundary detection.
FEED_VECTOR_MIN = 64


@dataclass(frozen=True)
class WriteGroup:
    """A maximal set of modifications considered simultaneous.

    Attributes
    ----------
    start, end:
        Timestamps of the first and last event in the group.
    keys:
        The distinct keys modified in the group.
    events:
        The underlying ``(timestamp, key, value)`` events, in time order.
    """

    start: float
    end: float
    keys: frozenset[str]
    events: tuple[tuple[float, str, Any], ...] = field(repr=False)

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: str) -> bool:
        return key in self.keys


#: Grouping modes shared by the batch extractors and the streaming one.
GROUPING_SLIDING = "sliding"
GROUPING_BUCKETS = "buckets"

_GROUPINGS = (GROUPING_SLIDING, GROUPING_BUCKETS)


class StreamingGroupExtractor:
    """Online write-group extraction: feed events as they arrive.

    The extractor holds the (still open) trailing group and emits a
    :class:`WriteGroup` the moment an arriving event proves the previous
    group closed.  Feeding the same event stream in any chunking yields the
    same closed groups as the batch extractors; the final group stays
    *pending* until :meth:`flush`, because a future event could still
    extend it.

    ``grouping`` selects the paper's sliding window (gap-based) or the
    ablation's fixed aligned buckets.
    """

    def __init__(self, window: float, grouping: str = GROUPING_SLIDING) -> None:
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window}")
        if grouping not in _GROUPINGS:
            raise ValueError(f"unknown grouping {grouping!r}; options: {_GROUPINGS}")
        self._window = window
        self._grouping = grouping
        self._current: list[tuple[float, str, Any]] = []
        self._bucket: int | None = None

    @property
    def window(self) -> float:
        return self._window

    @property
    def pending_events(self) -> tuple[tuple[float, str, Any], ...]:
        """Events of the still-open trailing group (time order)."""
        return tuple(self._current)

    @property
    def pending_keys(self) -> frozenset[str]:
        """Distinct keys of the still-open trailing group."""
        return frozenset(key for _, key, _ in self._current)

    def _closes(self, timestamp: float) -> bool:
        last = self._current[-1][0]
        if self._grouping == GROUPING_SLIDING or self._window == 0:
            return timestamp - last > self._window
        return int(timestamp // self._window) != self._bucket

    def feed(self, event: tuple[float, str, Any]) -> WriteGroup | None:
        """Absorb one event; return the group it closed, if any.

        Raises
        ------
        ValueError
            If the event's timestamp precedes the previous event's.
        """
        timestamp = event[0]
        if self._current:
            if timestamp < self._current[-1][0]:
                raise ValueError("events must be sorted by timestamp")
            if self._closes(timestamp):
                closed = _finish(self._current)
                self._current = [event]
                self._bucket = self._bucket_of(timestamp)
                return closed
            self._current.append(event)
            return None
        self._current = [event]
        self._bucket = self._bucket_of(timestamp)
        return None

    def _bucket_of(self, timestamp: float) -> int | None:
        if self._grouping == GROUPING_BUCKETS and self._window > 0:
            return int(timestamp // self._window)
        return None

    def feed_many(
        self, events: Iterable[tuple[float, str, Any]]
    ) -> list[WriteGroup]:
        """Absorb a chunk of events; return every group closed by it.

        Chunks served as columnar journal views take a vectorised path:
        group boundaries are found on the timestamp column in one pass
        (``diff > window`` for the sliding window, floor-quotient change
        for buckets) and events are decoded once, per group.  The result —
        closed groups, pending tail, and the ValueError on unsorted input —
        is identical to feeding event by event; the only visible difference
        is that a bad timestamp is rejected before any event of the chunk
        is absorbed rather than midway through.
        """
        parts_of = getattr(events, "columnar_parts", None)
        if (
            parts_of is not None
            and _np is not None
            and len(events) >= FEED_VECTOR_MIN
        ):
            parts = parts_of()
            if parts is not None:
                return self._feed_columnar(events, parts[0])
        closed: list[WriteGroup] = []
        for event in events:
            group = self.feed(event)
            if group is not None:
                closed.append(group)
        return closed

    def _feed_columnar(self, events, times) -> list[WriteGroup]:
        """Vectorised :meth:`feed_many` over a timestamp column array."""
        if _np.any(times[1:] < times[:-1]):
            raise ValueError("events must be sorted by timestamp")
        if self._current and float(times[0]) < self._current[-1][0]:
            raise ValueError("events must be sorted by timestamp")
        if self._grouping == GROUPING_SLIDING or self._window == 0:
            breaks = _np.flatnonzero(_np.diff(times) > self._window) + 1
        else:
            buckets = _np.floor_divide(times, self._window)
            breaks = _np.flatnonzero(buckets[1:] != buckets[:-1]) + 1
        rows = events.materialize()
        bounds = [0, *breaks.tolist(), len(rows)]
        closed: list[WriteGroup] = []
        if self._current and self._closes(float(times[0])):
            closed.append(_finish(self._current))
            self._current = []
        for i in range(len(bounds) - 2):
            segment = rows[bounds[i] : bounds[i + 1]]
            if i == 0 and self._current:
                segment = self._current + segment
            closed.append(_finish(segment))
        tail = rows[bounds[-2] :]
        if len(bounds) == 2 and self._current:
            self._current.extend(tail)
        else:
            self._current = tail
        self._bucket = self._bucket_of(float(times[-1]))
        return closed

    def rewind(self, count: int) -> tuple[tuple[float, str, Any], ...]:
        """Drop and return the last ``count`` events of the trailing group.

        This is the undo step for a journal reorder absorbed in place: the
        remaining state is exactly what feeding the stream *without* those
        events would have produced, because grouping decisions are made
        sequentially and never look ahead.  Only events still in the open
        trailing group can be rewound; re-opening an already-closed group
        would require retracting emitted :class:`WriteGroup` objects, which
        the extractor does not support — callers rebuild instead.
        """
        if count < 0:
            raise ValueError(f"rewind count must be non-negative, got {count}")
        if count > len(self._current):
            raise ValueError(
                f"cannot rewind {count} events; only {len(self._current)} "
                "are still in the open trailing group"
            )
        if count == 0:
            return ()
        dropped = tuple(self._current[-count:])
        del self._current[-count:]
        self._bucket = (
            self._bucket_of(self._current[-1][0]) if self._current else None
        )
        return dropped

    def flush(self) -> WriteGroup | None:
        """Close and return the pending group (``None`` if none is open)."""
        if not self._current:
            return None
        closed = _finish(self._current)
        self._current = []
        self._bucket = None
        return closed


def _extract(
    events: Sequence[tuple[float, str, Any]], window: float, grouping: str
) -> list[WriteGroup]:
    extractor = StreamingGroupExtractor(window, grouping=grouping)
    groups = extractor.feed_many(events)
    trailing = extractor.flush()
    if trailing is not None:
        groups.append(trailing)
    return groups


def extract_write_groups(
    events: Sequence[tuple[float, str, Any]], window: float
) -> list[WriteGroup]:
    """Partition modification events into write groups.

    Parameters
    ----------
    events:
        ``(timestamp, key, value)`` modification events sorted by timestamp
        (the output of :meth:`repro.ttkv.TTKV.write_events`).
    window:
        Sliding window in seconds.  ``0`` groups only identical timestamps.

    Raises
    ------
    ValueError
        If ``window`` is negative or events are not time-sorted.
    """
    return _extract(events, window, GROUPING_SLIDING)


def extract_fixed_buckets(
    events: Sequence[tuple[float, str, Any]], window: float
) -> list[WriteGroup]:
    """Ablation alternative: fixed, aligned time buckets of width ``window``.

    ``window=0`` falls back to identical-timestamp grouping, the same as
    the sliding variant.
    """
    return _extract(events, window, GROUPING_BUCKETS)


def _finish(events: list[tuple[float, str, Any]]) -> WriteGroup:
    return WriteGroup(
        start=events[0][0],
        end=events[-1][0],
        keys=frozenset(key for _, key, _ in events),
        events=tuple(events),
    )


def key_group_sets(groups: Iterable[WriteGroup]) -> dict[str, set[int]]:
    """Map each key to the indices of the write groups that modified it.

    These index sets are the ``A`` and ``B`` of the paper's correlation
    metric: ``|A|`` counts groups touching key A, ``|A ∩ B|`` counts groups
    touching both keys.
    """
    sets: dict[str, set[int]] = {}
    for index, group in enumerate(groups):
        for key in group.keys:
            sets.setdefault(key, set()).add(index)
    return sets

"""Sliding-window write-group extraction.

"To determine whether keys have been modified together, Ocasta uses a
sliding time window and considers all keys written within the window to
have been modified together."  (§III-A)

The window is applied as gap-based sessionisation: a modification event
joins the current group when it falls within ``window`` seconds of the
*previous* event, so a group is a maximal run of modifications with no gap
larger than the window.  This is the natural sliding-window reading — the
window slides along with the latest write rather than chopping time into
fixed buckets — and it degrades correctly at ``window=0``, where only
modifications carrying the identical timestamp group together (the paper's
Fig. 3a cliff, caused by 1-second timestamp quantisation).

A fixed-bucket alternative is provided for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class WriteGroup:
    """A maximal set of modifications considered simultaneous.

    Attributes
    ----------
    start, end:
        Timestamps of the first and last event in the group.
    keys:
        The distinct keys modified in the group.
    events:
        The underlying ``(timestamp, key, value)`` events, in time order.
    """

    start: float
    end: float
    keys: frozenset[str]
    events: tuple[tuple[float, str, Any], ...] = field(repr=False)

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: str) -> bool:
        return key in self.keys


def extract_write_groups(
    events: Sequence[tuple[float, str, Any]], window: float
) -> list[WriteGroup]:
    """Partition modification events into write groups.

    Parameters
    ----------
    events:
        ``(timestamp, key, value)`` modification events sorted by timestamp
        (the output of :meth:`repro.ttkv.TTKV.write_events`).
    window:
        Sliding window in seconds.  ``0`` groups only identical timestamps.

    Raises
    ------
    ValueError
        If ``window`` is negative or events are not time-sorted.
    """
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    groups: list[WriteGroup] = []
    current: list[tuple[float, str, Any]] = []
    for event in events:
        timestamp = event[0]
        if current and timestamp < current[-1][0]:
            raise ValueError("events must be sorted by timestamp")
        if current and timestamp - current[-1][0] <= window:
            current.append(event)
        else:
            if current:
                groups.append(_finish(current))
            current = [event]
    if current:
        groups.append(_finish(current))
    return groups


def extract_fixed_buckets(
    events: Sequence[tuple[float, str, Any]], window: float
) -> list[WriteGroup]:
    """Ablation alternative: fixed, aligned time buckets of width ``window``.

    ``window=0`` falls back to identical-timestamp grouping, the same as
    the sliding variant.
    """
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    if window == 0:
        return extract_write_groups(events, 0.0)
    groups: list[WriteGroup] = []
    current: list[tuple[float, str, Any]] = []
    current_bucket: int | None = None
    for event in events:
        timestamp = event[0]
        if current and timestamp < current[-1][0]:
            raise ValueError("events must be sorted by timestamp")
        bucket = int(timestamp // window)
        if current_bucket is not None and bucket != current_bucket:
            groups.append(_finish(current))
            current = []
        current_bucket = bucket
        current.append(event)
    if current:
        groups.append(_finish(current))
    return groups


def _finish(events: list[tuple[float, str, Any]]) -> WriteGroup:
    return WriteGroup(
        start=events[0][0],
        end=events[-1][0],
        keys=frozenset(key for _, key, _ in events),
        events=tuple(events),
    )


def key_group_sets(groups: Iterable[WriteGroup]) -> dict[str, set[int]]:
    """Map each key to the indices of the write groups that modified it.

    These index sets are the ``A`` and ``B`` of the paper's correlation
    metric: ``|A|`` counts groups touching key A, ``|A ∩ B|`` counts groups
    touching both keys.
    """
    sets: dict[str, set[int]] = {}
    for index, group in enumerate(groups):
        for key in group.keys:
            sets.setdefault(key, set()).add(index)
    return sets

"""Sliding-window write-group extraction.

"To determine whether keys have been modified together, Ocasta uses a
sliding time window and considers all keys written within the window to
have been modified together."  (§III-A)

The window is applied as gap-based sessionisation: a modification event
joins the current group when it falls within ``window`` seconds of the
*previous* event, so a group is a maximal run of modifications with no gap
larger than the window.  This is the natural sliding-window reading — the
window slides along with the latest write rather than chopping time into
fixed buckets — and it degrades correctly at ``window=0``, where only
modifications carrying the identical timestamp group together (the paper's
Fig. 3a cliff, caused by 1-second timestamp quantisation).

A fixed-bucket alternative is provided for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class WriteGroup:
    """A maximal set of modifications considered simultaneous.

    Attributes
    ----------
    start, end:
        Timestamps of the first and last event in the group.
    keys:
        The distinct keys modified in the group.
    events:
        The underlying ``(timestamp, key, value)`` events, in time order.
    """

    start: float
    end: float
    keys: frozenset[str]
    events: tuple[tuple[float, str, Any], ...] = field(repr=False)

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: str) -> bool:
        return key in self.keys


#: Grouping modes shared by the batch extractors and the streaming one.
GROUPING_SLIDING = "sliding"
GROUPING_BUCKETS = "buckets"

_GROUPINGS = (GROUPING_SLIDING, GROUPING_BUCKETS)


class StreamingGroupExtractor:
    """Online write-group extraction: feed events as they arrive.

    The extractor holds the (still open) trailing group and emits a
    :class:`WriteGroup` the moment an arriving event proves the previous
    group closed.  Feeding the same event stream in any chunking yields the
    same closed groups as the batch extractors; the final group stays
    *pending* until :meth:`flush`, because a future event could still
    extend it.

    ``grouping`` selects the paper's sliding window (gap-based) or the
    ablation's fixed aligned buckets.
    """

    def __init__(self, window: float, grouping: str = GROUPING_SLIDING) -> None:
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window}")
        if grouping not in _GROUPINGS:
            raise ValueError(f"unknown grouping {grouping!r}; options: {_GROUPINGS}")
        self._window = window
        self._grouping = grouping
        self._current: list[tuple[float, str, Any]] = []
        self._bucket: int | None = None

    @property
    def window(self) -> float:
        return self._window

    @property
    def pending_events(self) -> tuple[tuple[float, str, Any], ...]:
        """Events of the still-open trailing group (time order)."""
        return tuple(self._current)

    @property
    def pending_keys(self) -> frozenset[str]:
        """Distinct keys of the still-open trailing group."""
        return frozenset(key for _, key, _ in self._current)

    def _closes(self, timestamp: float) -> bool:
        last = self._current[-1][0]
        if self._grouping == GROUPING_SLIDING or self._window == 0:
            return timestamp - last > self._window
        return int(timestamp // self._window) != self._bucket

    def feed(self, event: tuple[float, str, Any]) -> WriteGroup | None:
        """Absorb one event; return the group it closed, if any.

        Raises
        ------
        ValueError
            If the event's timestamp precedes the previous event's.
        """
        timestamp = event[0]
        if self._current:
            if timestamp < self._current[-1][0]:
                raise ValueError("events must be sorted by timestamp")
            if self._closes(timestamp):
                closed = _finish(self._current)
                self._current = [event]
                self._bucket = self._bucket_of(timestamp)
                return closed
            self._current.append(event)
            return None
        self._current = [event]
        self._bucket = self._bucket_of(timestamp)
        return None

    def _bucket_of(self, timestamp: float) -> int | None:
        if self._grouping == GROUPING_BUCKETS and self._window > 0:
            return int(timestamp // self._window)
        return None

    def feed_many(
        self, events: Iterable[tuple[float, str, Any]]
    ) -> list[WriteGroup]:
        """Absorb a chunk of events; return every group closed by it."""
        closed: list[WriteGroup] = []
        for event in events:
            group = self.feed(event)
            if group is not None:
                closed.append(group)
        return closed

    def rewind(self, count: int) -> tuple[tuple[float, str, Any], ...]:
        """Drop and return the last ``count`` events of the trailing group.

        This is the undo step for a journal reorder absorbed in place: the
        remaining state is exactly what feeding the stream *without* those
        events would have produced, because grouping decisions are made
        sequentially and never look ahead.  Only events still in the open
        trailing group can be rewound; re-opening an already-closed group
        would require retracting emitted :class:`WriteGroup` objects, which
        the extractor does not support — callers rebuild instead.
        """
        if count < 0:
            raise ValueError(f"rewind count must be non-negative, got {count}")
        if count > len(self._current):
            raise ValueError(
                f"cannot rewind {count} events; only {len(self._current)} "
                "are still in the open trailing group"
            )
        if count == 0:
            return ()
        dropped = tuple(self._current[-count:])
        del self._current[-count:]
        self._bucket = (
            self._bucket_of(self._current[-1][0]) if self._current else None
        )
        return dropped

    def flush(self) -> WriteGroup | None:
        """Close and return the pending group (``None`` if none is open)."""
        if not self._current:
            return None
        closed = _finish(self._current)
        self._current = []
        self._bucket = None
        return closed


def _extract(
    events: Sequence[tuple[float, str, Any]], window: float, grouping: str
) -> list[WriteGroup]:
    extractor = StreamingGroupExtractor(window, grouping=grouping)
    groups = extractor.feed_many(events)
    trailing = extractor.flush()
    if trailing is not None:
        groups.append(trailing)
    return groups


def extract_write_groups(
    events: Sequence[tuple[float, str, Any]], window: float
) -> list[WriteGroup]:
    """Partition modification events into write groups.

    Parameters
    ----------
    events:
        ``(timestamp, key, value)`` modification events sorted by timestamp
        (the output of :meth:`repro.ttkv.TTKV.write_events`).
    window:
        Sliding window in seconds.  ``0`` groups only identical timestamps.

    Raises
    ------
    ValueError
        If ``window`` is negative or events are not time-sorted.
    """
    return _extract(events, window, GROUPING_SLIDING)


def extract_fixed_buckets(
    events: Sequence[tuple[float, str, Any]], window: float
) -> list[WriteGroup]:
    """Ablation alternative: fixed, aligned time buckets of width ``window``.

    ``window=0`` falls back to identical-timestamp grouping, the same as
    the sliding variant.
    """
    return _extract(events, window, GROUPING_BUCKETS)


def _finish(events: list[tuple[float, str, Any]]) -> WriteGroup:
    return WriteGroup(
        start=events[0][0],
        end=events[-1][0],
        keys=frozenset(key for _, key, _ in events),
        events=tuple(events),
    )


def key_group_sets(groups: Iterable[WriteGroup]) -> dict[str, set[int]]:
    """Map each key to the indices of the write groups that modified it.

    These index sets are the ``A`` and ``B`` of the paper's correlation
    metric: ``|A|`` counts groups touching key A, ``|A ∩ B|`` counts groups
    touching both keys.
    """
    sets: dict[str, set[int]] = {}
    for index, group in enumerate(groups):
        for key in group.keys:
            sets.setdefault(key, set()).add(index)
    return sets

"""Clustering accuracy against ground-truth dependency groups (Table II).

The paper manually verified each multi-setting cluster: a cluster is
"correctly identified if and only if there is a dependency relationship
among every configuration setting of the cluster".  In the simulator the
ground truth is explicit — each application schema declares its dependency
groups — so verification is exact:

- *oversized*: the cluster contains settings that are not all mutually
  related (it spans more than one dependency group, or includes an
  independent setting);
- *undersized*: the cluster is a strict subset of a dependency group
  (related settings were left out);
- both at once is possible (spans groups *and* misses members).

Following the paper's criterion, the headline accuracy counts a cluster
correct iff it is not oversized (all pairs related); the stricter
"exact match" accuracy is also reported for completeness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.cluster_model import Cluster, ClusterSet


class ClusterVerdict(enum.Enum):
    CORRECT = "correct"
    OVERSIZED = "oversized"
    UNDERSIZED = "undersized"
    OVERSIZED_AND_UNDERSIZED = "oversized+undersized"


def _group_index(groups: Iterable[frozenset[str]]) -> dict[str, frozenset[str]]:
    index: dict[str, frozenset[str]] = {}
    for group in groups:
        for key in group:
            if key in index:
                raise ValueError(
                    f"key {key!r} appears in more than one dependency group"
                )
            index[key] = group
    return index


def classify_cluster(
    cluster: Cluster | frozenset[str],
    groups: Iterable[frozenset[str]],
) -> ClusterVerdict:
    """Classify one multi-setting cluster against the dependency groups.

    Settings not covered by any declared group are *independent*: they are
    related to nothing, so any multi-setting cluster containing one is
    oversized.
    """
    keys = cluster.keys if isinstance(cluster, Cluster) else cluster
    index = _group_index(groups)

    touched = {index[key] for key in keys if key in index}
    independents = [key for key in keys if key not in index]

    oversized = bool(independents) or len(touched) > 1
    undersized = any(not group <= keys for group in touched)

    if oversized and undersized:
        return ClusterVerdict.OVERSIZED_AND_UNDERSIZED
    if oversized:
        return ClusterVerdict.OVERSIZED
    if undersized:
        return ClusterVerdict.UNDERSIZED
    return ClusterVerdict.CORRECT


@dataclass(frozen=True)
class ClusteringReport:
    """Per-application accuracy numbers in Table II's shape."""

    app_name: str
    total_keys: int
    total_clusters: int
    multi_clusters: int
    correct_multi_clusters: int
    exact_multi_clusters: int
    verdicts: Mapping[ClusterVerdict, int]

    @property
    def accuracy(self) -> float | None:
        """Paper criterion: fraction of multi-clusters with all pairs related.

        ``None`` when the application produced no multi-setting clusters
        (Table II prints N/A for Eye of GNOME).
        """
        if self.multi_clusters == 0:
            return None
        return self.correct_multi_clusters / self.multi_clusters

    @property
    def exact_accuracy(self) -> float | None:
        """Strict criterion: cluster exactly equals a dependency group."""
        if self.multi_clusters == 0:
            return None
        return self.exact_multi_clusters / self.multi_clusters


def evaluate_clustering(
    app_name: str,
    cluster_set: ClusterSet,
    groups: Iterable[frozenset[str]],
    total_keys: int | None = None,
) -> ClusteringReport:
    """Score a clustering result against ground-truth dependency groups."""
    groups = [frozenset(g) for g in groups]
    multi = cluster_set.multi_clusters()
    verdicts: dict[ClusterVerdict, int] = {v: 0 for v in ClusterVerdict}
    correct = 0
    exact = 0
    group_set = set(groups)
    for cluster in multi:
        verdict = classify_cluster(cluster, groups)
        verdicts[verdict] += 1
        # Paper criterion: not oversized = every pair in the cluster related.
        if verdict in (ClusterVerdict.CORRECT, ClusterVerdict.UNDERSIZED):
            correct += 1
        if cluster.keys in group_set:
            exact += 1
    return ClusteringReport(
        app_name=app_name,
        total_keys=total_keys if total_keys is not None else len(cluster_set.keys()),
        total_clusters=len(cluster_set),
        multi_clusters=len(multi),
        correct_multi_clusters=correct,
        exact_multi_clusters=exact,
        verdicts=verdicts,
    )


def overall_accuracy(reports: Iterable[ClusteringReport]) -> float | None:
    """Pooled accuracy across applications (the paper's 88.6% number)."""
    total = 0
    correct = 0
    for report in reports:
        total += report.multi_clusters
        correct += report.correct_multi_clusters
    if total == 0:
        return None
    return correct / total


def mean_accuracy(reports: Iterable[ClusteringReport]) -> float | None:
    """Unweighted mean of per-application accuracies (the paper's 72.3%)."""
    values = [r.accuracy for r in reports if r.accuracy is not None]
    if not values:
        return None
    return sum(values) / len(values)

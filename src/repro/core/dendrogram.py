"""Dendrogram produced by hierarchical agglomerative clustering.

The paper augments an off-the-shelf HAC implementation with the ability "to
prune the results returned by the hierarchical clustering API according to
a specified threshold".  :meth:`Dendrogram.cut` is that pruning: it returns
the flat clusters obtained by stopping agglomeration once the next merge
distance would exceed the threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Merge:
    """One agglomeration step.

    ``left`` and ``right`` are the merged clusters (as frozensets of keys),
    ``distance`` is the linkage distance at which they merged, and
    ``members`` is the resulting cluster.
    """

    left: frozenset[str]
    right: frozenset[str]
    distance: float
    members: frozenset[str]


class Dendrogram:
    """Full merge history over a set of items.

    Merges are stored in non-decreasing distance order (HAC always merges
    the closest pair next), which :meth:`cut` relies on.
    """

    def __init__(self, items: set[str] | frozenset[str], merges: list[Merge]) -> None:
        last = -math.inf
        for merge in merges:
            if merge.distance < last:
                raise ValueError("merges must be in non-decreasing distance order")
            last = merge.distance
            if not (merge.left | merge.right) == merge.members:
                raise ValueError("merge members must be the union of its halves")
        self.items = frozenset(items)
        self.merges = list(merges)

    def cut(self, max_distance: float) -> list[frozenset[str]]:
        """Flat clusters after applying merges with distance <= threshold.

        Items that never merge below the threshold come out as singletons.
        Order: larger clusters first, then lexicographic, so results are
        deterministic for tests and reports.

        The flat partition depends only on *which* merges clear the
        threshold, not on their order — each kept merge just unions its
        two sides — which is why a spliced dendrogram
        (:mod:`repro.core.dendro_repair`) cuts to exactly the clusters of
        a wholesale rebuild.

        >>> merges = [
        ...     Merge(frozenset("a"), frozenset("b"), 0.5, frozenset("ab")),
        ...     Merge(frozenset("ab"), frozenset("c"), 0.9, frozenset("abc")),
        ... ]
        >>> dendrogram = Dendrogram({"a", "b", "c", "d"}, merges)
        >>> [sorted(c) for c in dendrogram.cut(0.5)]
        [['a', 'b'], ['c'], ['d']]
        >>> [sorted(c) for c in dendrogram.cut(2.0)]
        [['a', 'b', 'c'], ['d']]
        """
        parent: dict[str, str] = {item: item for item in self.items}

        def find(item: str) -> str:
            root = item
            while parent[root] != root:
                root = parent[root]
            while parent[item] != root:
                parent[item], item = root, parent[item]
            return root

        for merge in self.merges:
            if merge.distance > max_distance:
                break
            left_root = find(next(iter(merge.left)))
            right_root = find(next(iter(merge.right)))
            if left_root != right_root:
                parent[right_root] = left_root

        clusters: dict[str, set[str]] = {}
        for item in self.items:
            clusters.setdefault(find(item), set()).add(item)
        return sorted(
            (frozenset(members) for members in clusters.values()),
            key=lambda c: (-len(c), tuple(sorted(c))),
        )

    def merge_distances(self) -> list[float]:
        return [merge.distance for merge in self.merges]

    def __len__(self) -> int:
        return len(self.merges)

"""The paper's pairwise correlation metric and its distance transform.

    Correlation = |A ∩ B| / |A|  +  |A ∩ B| / |B|

where ``A`` and ``B`` are the sets of write groups in which keys A and B
were modified.  The metric lives in ``[0, 2]``: 2 when two keys are always
modified together, 0 when never.  Hierarchical clustering needs distances
that shrink as keys become more related, so Ocasta clusters on the inverse,
``distance = 1 / correlation`` (infinite when the correlation is 0).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.core.unionfind import UnionFind

try:  # soft dependency: the dict-update path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via tests' import guard
    _np = None

#: Below this many total group memberships, :meth:`CorrelationMatrix.
#: observe_groups_batch` uses the per-group dict path — array setup costs
#: more than it saves on tiny batches.
BATCH_VECTOR_MIN = 64

INFINITE_DISTANCE = math.inf


def correlation(group_set_a: frozenset | set, group_set_b: frozenset | set) -> float:
    """Correlation between two keys' write-group index sets.

    Raises
    ------
    ValueError
        If either set is empty — the paper only defines the metric "when
        both keys have a non-zero number [of] writes".
    """
    if not group_set_a or not group_set_b:
        raise ValueError("correlation is undefined for keys with no writes")
    common = len(group_set_a & group_set_b)
    return common / len(group_set_a) + common / len(group_set_b)


def correlation_to_distance(value: float) -> float:
    """Invert a correlation into a clustering distance."""
    if not 0.0 <= value <= 2.0:
        raise ValueError(f"correlation must lie in [0, 2], got {value}")
    if value == 0.0:
        return INFINITE_DISTANCE
    return 1.0 / value


def distance_to_correlation(value: float) -> float:
    """Inverse of :func:`correlation_to_distance`."""
    if value <= 0:
        raise ValueError(f"distance must be positive, got {value}")
    if math.isinf(value):
        return 0.0
    return 1.0 / value


class CorrelationMatrix:
    """Sparse pairwise correlations over a set of keys.

    Only pairs that co-occur in at least one write group are stored; all
    other pairs have correlation 0 (infinite distance).  Sparsity is what
    makes clustering whole applications tractable: a key pair that never
    co-modifies can never merge, so the finite-distance graph's connected
    components bound every cluster.

    Internally the matrix counts — per key the number of write groups it
    appears in, per co-occurring pair the size of the intersection — so a
    correlation query is O(1) and the matrix can be updated **in place** as
    new write groups stream in (:meth:`observe_group`) or a provisional
    trailing group is replaced (:meth:`retract_group`).  The incremental
    clustering pipeline relies on these updates to avoid rebuilding the
    matrix from scratch on every new event.
    """

    def __init__(self, key_groups: Mapping[str, set[int]] | None = None) -> None:
        self._key_groups: dict[str, set[int]] = {}
        self._group_members: dict[int, frozenset[str]] = {}
        self._common: dict[frozenset[str], int] = {}
        self._neighbors: dict[str, set[str]] = {}
        # Connected components are maintained in a union-find so component
        # queries cost O(α) instead of a full graph traversal.  Union-find
        # cannot split, so a *lossy* update (an edge or key actually
        # removed) marks it stale and the next component query rebuilds —
        # the rebuild-on-retraction policy.  The streaming pipeline's
        # routine provisional-group replacement retracts a group and
        # re-adds a superset in one batch, which loses nothing and stays
        # on the O(α) path.
        self._uf = UnionFind()
        self._uf_stale = False
        self._structure_version = 0
        # Dense distance blocks for the numpy HAC kernel, keyed by the
        # component key set they cover.  Valid for the current
        # structure_version only: a lossy update clears the lot, a
        # growth-only update just records which keys went dirty so the
        # next request refreshes those rows in place (pairs with no dirty
        # endpoint cannot have changed).
        self._blocks: dict[frozenset[str], "object"] = {}
        self._block_of_key: dict[str, frozenset[str]] = {}
        self._block_dirty: dict[frozenset[str], set[str]] = {}
        # Compaction baseline: groups older than the retractable tail are
        # coalesced into the per-key and per-pair counts they imply
        # (:meth:`compact`), so neither the in-memory group registry nor a
        # checkpoint has to carry one entry per consumed group forever.
        # Every query folds the baseline back in, so a compacted matrix is
        # observationally identical to the uncompacted one.
        self._base_counts: dict[str, int] = {}
        self._base_common: dict[frozenset[str], int] = {}
        self._compacted_count = 0
        self._compact_floor = 0
        if key_groups:
            for key, groups in key_groups.items():
                if not groups:
                    raise ValueError(f"key {key!r} has no write groups")
            # Invert to group -> member keys and replay as observations so
            # batch construction and streaming growth share one code path.
            by_group: dict[int, list[str]] = {}
            for key, groups in key_groups.items():
                self._key_groups[key] = set()
                self._neighbors[key] = set()
                for index in groups:
                    by_group.setdefault(index, []).append(key)
            self.update_groups(added=sorted(by_group.items()))

    # -- in-place updates ---------------------------------------------------

    def observe_group(self, index: int, keys: Iterable[str]) -> None:
        """Fold one new write group (its distinct ``keys``) into the matrix."""
        self.update_groups(added=[(index, keys)])

    def retract_group(self, index: int, keys: Iterable[str]) -> None:
        """Undo a previously observed group (same ``index`` and ``keys``)."""
        self.update_groups(removed=[(index, keys)])

    def update_groups(
        self,
        added: Iterable[tuple[int, Iterable[str]]] = (),
        removed: Iterable[tuple[int, Iterable[str]]] = (),
    ) -> set[str]:
        """Apply a batch of group retractions and additions.

        Removals run first so a provisional group can be replaced by its
        extended version under the same index in one call.  Returns the set
        of keys whose correlations may have changed (the union of all
        touched groups' keys) — the dirty set driving partial re-clustering.

        The whole batch is validated before any state is touched, so a
        rejected update leaves the matrix exactly as it was.  A retraction
        must name a group's exact observed member set; an addition must use
        a fresh index (or one retracted in the same call).
        """
        removed = [(index, sorted(set(keys))) for index, keys in removed]
        added = [(index, sorted(set(keys))) for index, keys in added]
        for batch, label in ((removed, "removed"), (added, "added")):
            indices = [index for index, _ in batch]
            if len(set(indices)) != len(indices):
                raise ValueError(f"duplicate group index in {label} batch: {indices}")
        removed_indices = set()
        for index, members in removed:
            registered = self._group_members.get(index)
            if registered is None:
                if index < self._compact_floor:
                    raise ValueError(
                        f"group {index} was compacted into the aggregate "
                        "baseline and can no longer be retracted"
                    )
                raise ValueError(f"group {index} was never observed")
            if frozenset(members) != registered:
                raise ValueError(
                    f"group {index} members {members} do not match the "
                    f"observed group {sorted(registered)}"
                )
            removed_indices.add(index)
        for index, members in added:
            if not members:
                raise ValueError(f"group {index} has no keys")
            if index in self._group_members and index not in removed_indices:
                raise ValueError(f"group {index} already observed")
            if index < self._compact_floor:
                raise ValueError(
                    f"group {index} lies below the compaction floor "
                    f"{self._compact_floor}; compacted indices cannot be "
                    "reused"
                )

        dirty: set[str] = set()
        lost_pairs: set[frozenset[str]] = set()
        lost_keys: set[str] = set()
        for index, members in removed:
            dirty.update(members)
            for position, key_a in enumerate(members):
                for key_b in members[position + 1:]:
                    pair = frozenset((key_a, key_b))
                    remaining = self._common[pair] - 1
                    if remaining:
                        self._common[pair] = remaining
                    else:
                        del self._common[pair]
                        if not self._base_common.get(pair):
                            self._neighbors[key_a].discard(key_b)
                            self._neighbors[key_b].discard(key_a)
                            lost_pairs.add(pair)
            for key in members:
                groups = self._key_groups[key]
                groups.remove(index)
                if not groups and not self._base_counts.get(key):
                    del self._key_groups[key]
                    del self._neighbors[key]
                    lost_keys.add(key)
            del self._group_members[index]
        for index, members in added:
            dirty.update(members)
            self._group_members[index] = frozenset(members)
            for key in members:
                self._key_groups.setdefault(key, set()).add(index)
                self._neighbors.setdefault(key, set())
                lost_keys.discard(key)
            for position, key_a in enumerate(members):
                for key_b in members[position + 1:]:
                    pair = frozenset((key_a, key_b))
                    self._common[pair] = self._common.get(pair, 0) + 1
                    self._neighbors[key_a].add(key_b)
                    self._neighbors[key_b].add(key_a)
                    lost_pairs.discard(pair)
        if lost_pairs or lost_keys:
            # A co-occurrence edge or a key is really gone: the union-find
            # cannot un-merge, so flag it for a rebuild at the next
            # component query and tell engines their cached component
            # structure is void.  Cached distance blocks go with it —
            # rows could silently keep edges the retraction removed.
            self._uf_stale = True
            self._structure_version += 1
            self._blocks.clear()
            self._block_of_key.clear()
            self._block_dirty.clear()
        else:
            if not self._uf_stale:
                for index, members in added:
                    self._uf.union_many(members)
            if self._blocks:
                for key in dirty:
                    covering = self._block_of_key.get(key)
                    if covering is not None:
                        self._block_dirty.setdefault(covering, set()).add(key)
        return dirty

    # -- queries -------------------------------------------------------------

    @property
    def keys(self) -> list[str]:
        return list(self._key_groups)

    def __contains__(self, key: str) -> bool:
        return key in self._key_groups

    def observed_groups(self) -> dict[int, frozenset[str]]:
        """Every *retained* group's member set, by index (a fresh dict).

        Replaying these through :meth:`update_groups` on an empty matrix —
        then installing :meth:`compacted_state` — reproduces this matrix
        exactly: the basis of session checkpoints.  Before any
        :meth:`compact` call the retained groups are simply all of them.
        """
        return dict(self._group_members)

    # -- compaction ----------------------------------------------------------

    def _count_of(self, key: str) -> int:
        """Effective group count: retained groups plus the compacted base."""
        return len(self._key_groups[key]) + self._base_counts.get(key, 0)

    def _common_of(self, pair: frozenset[str]) -> int:
        """Effective intersection count: retained plus compacted."""
        return self._common.get(pair, 0) + self._base_common.get(pair, 0)

    @property
    def compacted_groups(self) -> int:
        """How many groups have been folded into the aggregate baseline."""
        return self._compacted_count

    @property
    def compact_floor(self) -> int:
        """Group indices below this are compacted (no longer retractable)."""
        return self._compact_floor

    def compact(self, keep_from: int) -> int:
        """Coalesce groups with ``index < keep_from`` into aggregate counts.

        Every correlation is a pure function of per-key group counts and
        per-pair intersection counts, so a closed group that will never be
        retracted does not need its member list kept around: its
        contribution is folded into the per-key / per-pair baseline and
        the registration is dropped.  No query result changes — distances,
        neighbours, components and cached distance blocks are all exactly
        as before — only :meth:`retract_group` on a compacted index now
        fails (callers keep the retractable tail above ``keep_from``; the
        streaming engine keeps exactly its provisional trailing group).

        Returns the number of groups compacted by this call.  Idempotent:
        re-calling with the same ``keep_from`` compacts nothing.
        """
        victims = sorted(
            index for index in self._group_members if index < keep_from
        )
        self._fold_groups(victims)
        self._compacted_count += len(victims)
        if keep_from > self._compact_floor:
            self._compact_floor = keep_from
        return len(victims)

    def _fold_groups(self, victims: Iterable[int]) -> None:
        """Move registered groups into the aggregate baseline (no queries change)."""
        for index in victims:
            members = sorted(self._group_members.pop(index))
            for key in members:
                self._key_groups[key].discard(index)
                self._base_counts[key] = self._base_counts.get(key, 0) + 1
            for position, key_a in enumerate(members):
                for key_b in members[position + 1:]:
                    pair = frozenset((key_a, key_b))
                    self._base_common[pair] = self._base_common.get(pair, 0) + 1
                    remaining = self._common[pair] - 1
                    if remaining:
                        self._common[pair] = remaining
                    else:
                        del self._common[pair]

    def observe_groups_batch(
        self, start_index: int, groups: Iterable[Iterable[str]]
    ) -> set[str]:
        """Fold a contiguous run of *final* write groups straight into the
        aggregate baseline — the vectorized bulk-ingest path.

        Observationally identical to ``observe_group`` for indices
        ``start_index .. start_index + n - 1`` followed by compacting
        *exactly those groups* (other retained groups are untouched — a
        later :meth:`compact` call handles them as usual).  The groups
        never become individually retractable: the caller asserts they are
        closed for good, exactly what the streaming engine asserts by
        compacting after every update.  That lets their per-key and
        per-pair contributions be counted in bulk — one ``np.bincount``
        for key occurrences and one ``np.unique`` over integer-encoded
        in-group pairs — instead of a Python dict update per event.
        Returns the dirty key set, like :meth:`update_groups`.

        Without numpy (or for tiny batches) the per-group path runs
        instead; the result is the same either way, which the property
        suite asserts.
        """
        prepared = [sorted(set(keys)) for keys in groups]
        count = len(prepared)
        if start_index < self._compact_floor:
            raise ValueError(
                f"batch start {start_index} lies below the compaction floor "
                f"{self._compact_floor}; compacted indices cannot be reused"
            )
        for offset, members in enumerate(prepared):
            if not members:
                raise ValueError(f"group {start_index + offset} has no keys")
            if start_index + offset in self._group_members:
                raise ValueError(
                    f"group {start_index + offset} already observed"
                )
        if not count:
            return set()
        total = sum(len(members) for members in prepared)
        if _np is None or total < BATCH_VECTOR_MIN:
            dirty = self.update_groups(
                added=[
                    (start_index + offset, members)
                    for offset, members in enumerate(prepared)
                ]
            )
            self._fold_groups(range(start_index, start_index + count))
            self._compacted_count += count
            if start_index + count > self._compact_floor:
                self._compact_floor = start_index + count
            return dirty

        # Integer-encode the batch: one code per distinct key, one flat
        # array of per-group member codes.
        code_of: dict[str, int] = {}
        names: list[str] = []
        flat: list[int] = []
        for members in prepared:
            for key in members:
                code = code_of.get(key)
                if code is None:
                    code = len(names)
                    code_of[key] = code
                    names.append(key)
                flat.append(code)
        codes = _np.asarray(flat, dtype=_np.int64)
        lengths = _np.fromiter(
            (len(members) for members in prepared), dtype=_np.intp, count=count
        )
        key_counts = _np.bincount(codes, minlength=len(names))

        # Enumerate every unordered in-group pair without a Python loop:
        # member j of a group pairs with each of its later members, so it
        # contributes (group length - 1 - local position) ordered pairs.
        starts = _np.zeros(count, dtype=_np.intp)
        _np.cumsum(lengths[:-1], out=starts[1:])
        local = _np.arange(total) - _np.repeat(starts, lengths)
        fanout = _np.repeat(lengths, lengths) - 1 - local
        pair_total = int(fanout.sum())
        pair_codes = None
        if pair_total:
            first = _np.repeat(_np.arange(total), fanout)
            pair_starts = _np.zeros(total, dtype=_np.intp)
            _np.cumsum(fanout[:-1], out=pair_starts[1:])
            second = first + 1 + (_np.arange(pair_total) - _np.repeat(pair_starts, fanout))
            code_a = codes[first]
            code_b = codes[second]
            low = _np.minimum(code_a, code_b)
            high = _np.maximum(code_a, code_b)
            pair_codes, pair_counts = _np.unique(
                low * _np.int64(len(names)) + high, return_counts=True
            )

        # Apply the aggregated counts — the same writes observe+compact
        # would have netted to, without materialising the groups.
        base_counts = self._base_counts
        key_groups = self._key_groups
        neighbors = self._neighbors
        union_live = not self._uf_stale
        for name, occurrences in zip(names, key_counts.tolist()):
            base_counts[name] = base_counts.get(name, 0) + occurrences
            key_groups.setdefault(name, set())
            neighbors.setdefault(name, set())
            if union_live:
                self._uf.add(name)
        if union_live:
            # Groups are cliques, so their connectivity is fully captured
            # by a throwaway integer union-find over the local codes; only
            # the resulting local components (usually a handful) are merged
            # into the incremental global structure.
            parent = list(range(len(names)))

            def _root(code: int) -> int:
                while parent[code] != code:
                    parent[code] = parent[parent[code]]
                    code = parent[code]
                return code

            at = 0
            for members in prepared:
                size = len(members)
                if size > 1:
                    anchor = _root(flat[at])
                    for offset in range(at + 1, at + size):
                        other = _root(flat[offset])
                        if other != anchor:
                            parent[other] = anchor
                at += size
            local_components: dict[int, list[str]] = {}
            for code, name in enumerate(names):
                local_components.setdefault(_root(code), []).append(name)
            for component in local_components.values():
                if len(component) > 1:
                    self._uf.union_many(component)
        if pair_codes is not None:
            base_common = self._base_common
            width = len(names)
            for key_a, key_b, occurrences in zip(
                [names[c] for c in (pair_codes // width).tolist()],
                [names[c] for c in (pair_codes % width).tolist()],
                pair_counts.tolist(),
            ):
                pair = frozenset((key_a, key_b))
                known = base_common.get(pair)
                if known is None:
                    base_common[pair] = occurrences
                    neighbors[key_a].add(key_b)
                    neighbors[key_b].add(key_a)
                else:
                    base_common[pair] = known + occurrences
        dirty = set(names)
        if self._blocks:
            for key in dirty:
                covering = self._block_of_key.get(key)
                if covering is not None:
                    self._block_dirty.setdefault(covering, set()).add(key)
        self._compacted_count += count
        if start_index + count > self._compact_floor:
            self._compact_floor = start_index + count
        return dirty

    def compacted_state(self) -> dict | None:
        """JSON-safe aggregate baseline, or ``None`` when nothing compacted.

        Pairs with :meth:`install_compacted`: replay
        :meth:`observed_groups` on an empty matrix, install this, and the
        result is observationally identical to this matrix — the
        checkpoint stays O(live keys + live pairs) no matter how many
        groups the session has consumed.
        """
        if not self._compacted_count:
            return None
        return {
            "count": self._compacted_count,
            "floor": self._compact_floor,
            "keys": [
                [key, count]
                for key, count in sorted(self._base_counts.items())
                if count
            ],
            "pairs": [
                [*sorted(pair), count]
                for pair, count in sorted(
                    self._base_common.items(), key=lambda item: sorted(item[0])
                )
                if count
            ],
        }

    def install_compacted(self, state: dict) -> None:
        """Adopt a :meth:`compacted_state` baseline into this matrix.

        Must run after the retained groups have been replayed (the
        checkpoint-restore path); keys and pairs that exist only in the
        baseline are registered as live keys and neighbour edges, and the
        union-find learns the baseline's connectivity.
        """
        count = int(state["count"])
        floor = int(state["floor"])
        if count < 0 or floor < 0:
            raise ValueError(f"compacted state out of range: {state!r}")
        self._compacted_count = count
        self._compact_floor = max(self._compact_floor, floor)
        for key, key_count in state["keys"]:
            if int(key_count) < 1:
                raise ValueError(f"compacted count for {key!r} must be >= 1")
            self._base_counts[key] = int(key_count)
            self._key_groups.setdefault(key, set())
            self._neighbors.setdefault(key, set())
            if not self._uf_stale:
                self._uf.add(key)
        for key_a, key_b, pair_count in state["pairs"]:
            if int(pair_count) < 1:
                raise ValueError(
                    f"compacted intersection for {key_a!r}/{key_b!r} "
                    "must be >= 1"
                )
            for key in (key_a, key_b):
                if key not in self._key_groups:
                    raise ValueError(
                        f"compacted pair names unknown key {key!r}"
                    )
            self._base_common[frozenset((key_a, key_b))] = int(pair_count)
            self._neighbors[key_a].add(key_b)
            self._neighbors[key_b].add(key_a)
            if not self._uf_stale:
                self._uf.union_many((key_a, key_b))

    def pairwise_counts(
        self,
    ) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
        """The matrix's raw evidence: per-key and per-pair group counts.

        Returns ``(counts, common)`` where ``counts[key]`` is the
        effective number of write groups the key appears in (retained
        groups plus the compacted baseline) and ``common[(a, b)]`` — pair
        keys are sorted 2-tuples — is the effective intersection count of
        each co-occurring pair.  Every correlation this matrix can report
        is a pure function of these counts, so two matrices with equal
        ``pairwise_counts()`` are observationally identical.

        This is the hand-off format of the fleet aggregation tier
        (:mod:`repro.fleet`): per-machine evidence is extracted with this
        method, summed across machines keyed by canonical key identity,
        and re-installed via :meth:`apply_count_deltas`.
        """
        counts = {key: self._count_of(key) for key in self._key_groups}
        common: dict[tuple[str, str], int] = {}
        for pair in self._common.keys() | self._base_common.keys():
            key_a, key_b = sorted(pair)
            common[(key_a, key_b)] = self._common_of(pair)
        return counts, common

    def apply_count_deltas(
        self,
        key_deltas: Mapping[str, int],
        pair_deltas: Mapping[tuple[str, str], int],
    ) -> set[str]:
        """Adjust the aggregate baseline by signed evidence deltas.

        The fleet-merge analog of :meth:`update_groups`: instead of
        observing write groups, the caller supplies how much each key's
        group count and each pair's intersection count changed (the
        difference between two :meth:`pairwise_counts` snapshots).  Keys
        whose effective count reaches zero are removed; pairs whose
        effective intersection reaches zero lose their neighbour edge.
        Any such loss marks the union-find stale and bumps
        ``structure_version`` — exactly the rebuild-on-retraction policy
        group retractions follow — while growth-only deltas stay on the
        O(α) incremental path.

        The whole batch is validated before any state is touched: a delta
        driving a count negative, a pair delta naming a key absent after
        the key deltas apply, or a pair delta on a never-observed pair
        with a non-positive value all raise ``ValueError`` and leave the
        matrix unchanged.  Returns the dirty key set (every key whose
        correlations may have changed), like :meth:`update_groups`.
        """
        keyed = {key: int(delta) for key, delta in key_deltas.items() if delta}
        paired = {
            (min(pair), max(pair)): int(delta)
            for pair, delta in pair_deltas.items()
            if delta
        }
        next_counts: dict[str, int] = {}
        for key, delta in keyed.items():
            current = self._count_of(key) if key in self._key_groups else 0
            if current + delta < 0:
                raise ValueError(
                    f"count delta {delta} for {key!r} drives its group "
                    f"count below zero (currently {current})"
                )
            if current + delta < len(self._key_groups.get(key, ())):
                raise ValueError(
                    f"count delta {delta} for {key!r} cuts into retained "
                    "groups; retract them instead"
                )
            next_counts[key] = current + delta
        surviving = set(self._key_groups) - {
            key for key, total in next_counts.items() if total == 0
        }
        surviving.update(key for key, total in next_counts.items() if total)
        next_common: dict[tuple[str, str], int] = {}
        for (key_a, key_b), delta in paired.items():
            if key_a == key_b:
                raise ValueError(f"pair delta names a single key {key_a!r}")
            pair = frozenset((key_a, key_b))
            current = self._common_of(pair)
            if current + delta < 0:
                raise ValueError(
                    f"intersection delta {delta} for {key_a!r}/{key_b!r} "
                    f"drives the pair count below zero (currently {current})"
                )
            if current + delta < self._common.get(pair, 0):
                raise ValueError(
                    f"intersection delta {delta} for {key_a!r}/{key_b!r} "
                    "cuts into retained groups; retract them instead"
                )
            if current + delta > 0:
                for key in (key_a, key_b):
                    if key not in surviving:
                        raise ValueError(
                            f"pair delta for {key_a!r}/{key_b!r} names key "
                            f"{key!r}, which has no group count"
                        )
            next_common[(key_a, key_b)] = current + delta
        for key, total in next_counts.items():
            if total == 0:
                for other in self._neighbors.get(key, ()):
                    if next_common.get((min(key, other), max(key, other))) != 0:
                        raise ValueError(
                            f"count delta removes {key!r} but leaves its "
                            f"pair with {other!r} non-zero; zero the pair "
                            "in the same call"
                        )

        dirty: set[str] = set(keyed)
        lost_keys: set[str] = set()
        lost_pairs = False
        for key, total in next_counts.items():
            if key not in self._key_groups:
                self._key_groups[key] = set()
                self._neighbors[key] = set()
                if not self._uf_stale:
                    self._uf.add(key)
            self._base_counts[key] = total - len(self._key_groups[key])
            if not self._base_counts[key]:
                del self._base_counts[key]
            if total == 0:
                lost_keys.add(key)
        for (key_a, key_b), total in next_common.items():
            dirty.update((key_a, key_b))
            pair = frozenset((key_a, key_b))
            retained = self._common.get(pair, 0)
            base = total - retained
            if base:
                self._base_common[pair] = base
            else:
                self._base_common.pop(pair, None)
            if total:
                newly = key_b not in self._neighbors[key_a]
                self._neighbors[key_a].add(key_b)
                self._neighbors[key_b].add(key_a)
                if newly and not self._uf_stale:
                    self._uf.union_many((key_a, key_b))
            elif retained == 0:
                self._neighbors[key_a].discard(key_b)
                self._neighbors[key_b].discard(key_a)
                lost_pairs = True
        for key in lost_keys:
            if self._neighbors[key]:
                for other in self._neighbors[key]:
                    self._neighbors[other].discard(key)
                lost_pairs = True
            del self._key_groups[key]
            del self._neighbors[key]
        if lost_pairs or lost_keys:
            self._uf_stale = True
            self._structure_version += 1
            self._blocks.clear()
            self._block_of_key.clear()
            self._block_dirty.clear()
        elif self._blocks:
            for key in dirty:
                covering = self._block_of_key.get(key)
                if covering is not None:
                    self._block_dirty.setdefault(covering, set()).add(key)
        return dirty

    @property
    def structure_version(self) -> int:
        """Bumped whenever a lossy update voids incremental component state.

        Consumers caching per-component results compare this against the
        version they last saw: unchanged means components only grew (or
        stayed) through additions, so caches keyed by component survive;
        changed means an edge or key was truly removed and components may
        have split — recompute from scratch.
        """
        return self._structure_version

    def _rebuild_union_find(self) -> None:
        uf = UnionFind()
        for key in self._key_groups:
            uf.add(key)
        for members in self._group_members.values():
            uf.union_many(members)
        for pair in self._base_common:
            uf.union_many(pair)
        self._uf = uf
        self._uf_stale = False

    def _union_find(self) -> UnionFind:
        if self._uf_stale:
            self._rebuild_union_find()
        return self._uf

    def find(self, key: str) -> str:
        """Representative key of ``key``'s connected component (O(α))."""
        self._check(key)
        return self._union_find().find(key)

    def component_members(self, key: str) -> frozenset[str]:
        """All keys in ``key``'s connected component (a frozen copy)."""
        self._check(key)
        return self._union_find().members(key)

    def group_count(self, key: str) -> int:
        """Number of write groups ``key`` appears in (the metric's ``|A|``)."""
        self._check(key)
        return self._count_of(key)

    def correlation_of(self, key_a: str, key_b: str) -> float:
        """Correlation between two keys (0 when they never co-modify)."""
        if key_a == key_b:
            raise ValueError("correlation with itself is not meaningful")
        self._check(key_a)
        self._check(key_b)
        common = self._common_of(frozenset((key_a, key_b)))
        if not common:
            return 0.0
        return common / self._count_of(key_a) + common / self._count_of(key_b)

    def distance_of(self, key_a: str, key_b: str) -> float:
        return correlation_to_distance(self.correlation_of(key_a, key_b))

    def neighbors(self, key: str) -> set[str]:
        """Keys with non-zero correlation to ``key``."""
        self._check(key)
        return set(self._neighbors[key])

    def _check(self, key: str) -> None:
        if key not in self._key_groups:
            raise KeyError(key)

    def finite_pairs(self) -> Iterable[tuple[str, str, float]]:
        """All stored (key_a, key_b, correlation) entries."""
        for pair in self._common.keys() | self._base_common.keys():
            key_a, key_b = sorted(pair)
            yield key_a, key_b, self.correlation_of(key_a, key_b)

    def component_distance_block(self, component: frozenset[str] | set[str]):
        """Dense distance block over one component's keys, cached.

        Returns a :class:`~repro.core.hac_kernel.DistanceBlock` whose
        ``square`` holds every pairwise clustering distance among the
        component's keys (``inf`` for pairs that never co-modified and on
        the diagonal), with the keys in sorted order — exactly the seed
        order the agglomeration uses.  Requires numpy (the numpy HAC
        kernel is the only consumer).

        The block is cached and **incrementally refreshed**: a later call
        after growth-only updates recomputes only the rows of keys that
        went dirty since (plus keys new to the component), reusing every
        clean row — a pair's distance depends only on its endpoints'
        group counts and intersection, so a pair with two clean endpoints
        cannot have changed.  When an update truly removed an edge or key
        the whole cache was already dropped (see :meth:`update_groups`)
        and the block rebuilds from scratch.  Entries under stale keys
        (sub-components that since merged) are absorbed into the merged
        block and released.

        The returned array is owned by the cache: consumers must copy
        before mutating.
        """
        from repro.core.hac_kernel import DistanceBlock, require_numpy

        np = require_numpy()
        component = frozenset(component)
        covering: dict[frozenset[str], object] = {}
        for key in component:
            owner = self._block_of_key.get(key)
            if owner is not None and owner not in covering:
                block = self._blocks.get(owner)
                if block is not None:
                    covering[owner] = block
        if len(covering) == 1:
            (owner, block), = covering.items()
            if owner == component:
                # Same key set as the cached block: refresh the rows of
                # keys dirtied since it was built, in place — no
                # allocation, no O(n²) copy.
                pending = self._block_dirty.pop(owner, None)
                if pending:
                    self._fill_block_rows(np, block.square, block.index, pending)
                return block

        keys = sorted(component)
        index = {key: i for i, key in enumerate(keys)}
        square = np.full((len(keys), len(keys)), INFINITE_DISTANCE)
        refresh = set(component)
        for owner, block in covering.items():
            if not owner <= component:
                # The block straddles the component boundary — stale
                # material from a code path that bypassed invalidation.
                # Never guess: recompute those rows from the counts.
                self._drop_block(owner)
                continue
            pos = np.fromiter(
                (index[key] for key in block.keys),
                dtype=np.intp,
                count=len(block.keys),
            )
            square[np.ix_(pos, pos)] = block.square
            refresh.difference_update(block.keys)
            refresh.update(
                key
                for key in self._block_dirty.get(owner, ())
                if key in component
            )
            self._drop_block(owner)
        self._fill_block_rows(np, square, index, refresh, reset=True)
        block = DistanceBlock(keys, square)
        self._blocks[component] = block
        for key in keys:
            self._block_of_key[key] = component
        return block

    def _fill_block_rows(self, np, square, index, refresh, *, reset=False) -> None:
        """Recompute the rows/columns of ``refresh`` keys in ``square``.

        Two phases — clear every refreshed row first, then fill — so a
        later key's clear cannot wipe an earlier key's freshly written
        column entries.  ``reset`` skips the clear for brand-new arrays
        (already all-infinite).
        """
        if not reset:  # freshly np.full'ed arrays are already infinite
            for key in refresh:
                at = index[key]
                square[at, :] = INFINITE_DISTANCE
                square[:, at] = INFINITE_DISTANCE
        for key in refresh:
            at = index[key]
            neighbors = [n for n in self._neighbors[key] if n in index]
            if not neighbors:
                continue
            cols = np.fromiter(
                (index[n] for n in neighbors),
                dtype=np.intp,
                count=len(neighbors),
            )
            common = np.fromiter(
                (self._common_of(frozenset((key, n))) for n in neighbors),
                dtype=np.float64,
                count=len(neighbors),
            )
            counts = np.fromiter(
                (self._count_of(n) for n in neighbors),
                dtype=np.float64,
                count=len(neighbors),
            )
            # identical IEEE-754 ops to correlation_of/correlation_to_distance
            own_count = float(self._count_of(key))
            values = 1.0 / (common / own_count + common / counts)
            square[at, cols] = values
            square[cols, at] = values

    def _drop_block(self, owner: frozenset[str]) -> None:
        block = self._blocks.pop(owner, None)
        self._block_dirty.pop(owner, None)
        if block is not None:
            for key in block.keys:
                # identity check: the mapping stores the exact frozenset
                # used as the cache key (an equality compare would be
                # O(component) per key — O(n²) per drop)
                if self._block_of_key.get(key) is owner:
                    del self._block_of_key[key]

    def connected_components(self, *, method: str = "unionfind") -> list[set[str]]:
        """Components of the finite-distance graph.

        Every HAC cluster is a subset of one component, so clustering can
        run per-component.  Keys with no neighbours form singleton
        components.

        ``method="unionfind"`` (default) serves the components from the
        incrementally maintained union-find; ``method="scan"`` recomputes
        them with a graph traversal.  The two always agree — the scan is
        kept as the independent reference for cross-checks and as the
        baseline the benchmark measures the union-find against.
        """
        if method == "unionfind":
            return [set(members) for members in self._union_find().components()]
        if method != "scan":
            raise ValueError(
                f"unknown method {method!r}; options: ('unionfind', 'scan')"
            )
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in self._key_groups:
            if start in seen:
                continue
            stack = [start]
            component: set[str] = set()
            while stack:
                key = stack.pop()
                if key in component:
                    continue
                component.add(key)
                stack.extend(self._neighbors[key] - component)
            seen |= component
            components.append(component)
        return components

    def __len__(self) -> int:
        return len(self._key_groups)


class CorrelationMatrixView:
    """Read-only facade over a live :class:`CorrelationMatrix`.

    The incremental pipelines expose their internal matrices through this
    proxy: every query works, every mutator raises, so a caller cannot
    silently desynchronise a session's matrix from its journal cursor.
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: CorrelationMatrix) -> None:
        self._matrix = matrix

    # -- queries (delegated) -------------------------------------------------

    @property
    def keys(self) -> list[str]:
        return self._matrix.keys

    def __contains__(self, key: str) -> bool:
        return key in self._matrix

    def __len__(self) -> int:
        return len(self._matrix)

    def group_count(self, key: str) -> int:
        return self._matrix.group_count(key)

    def correlation_of(self, key_a: str, key_b: str) -> float:
        return self._matrix.correlation_of(key_a, key_b)

    def distance_of(self, key_a: str, key_b: str) -> float:
        return self._matrix.distance_of(key_a, key_b)

    def neighbors(self, key: str) -> set[str]:
        return self._matrix.neighbors(key)

    def finite_pairs(self) -> Iterable[tuple[str, str, float]]:
        return self._matrix.finite_pairs()

    def pairwise_counts(
        self,
    ) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
        return self._matrix.pairwise_counts()

    def component_distance_block(self, component: frozenset[str] | set[str]):
        return self._matrix.component_distance_block(component)

    def connected_components(self, *, method: str = "unionfind") -> list[set[str]]:
        return self._matrix.connected_components(method=method)

    def find(self, key: str) -> str:
        return self._matrix.find(key)

    def component_members(self, key: str) -> frozenset[str]:
        return self._matrix.component_members(key)

    def observed_groups(self) -> dict[int, frozenset[str]]:
        return self._matrix.observed_groups()

    @property
    def compacted_groups(self) -> int:
        return self._matrix.compacted_groups

    @property
    def compact_floor(self) -> int:
        return self._matrix.compact_floor

    def compacted_state(self) -> dict | None:
        return self._matrix.compacted_state()

    # -- mutators (refused) --------------------------------------------------

    def _read_only(self, *_args, **_kwargs):
        raise TypeError(
            "this matrix belongs to a live clustering session and is "
            "read-only; mutating it would desynchronise the session"
        )

    observe_group = _read_only
    retract_group = _read_only
    update_groups = _read_only
    observe_groups_batch = _read_only
    apply_count_deltas = _read_only
    compact = _read_only
    install_compacted = _read_only

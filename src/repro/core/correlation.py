"""The paper's pairwise correlation metric and its distance transform.

    Correlation = |A ∩ B| / |A|  +  |A ∩ B| / |B|

where ``A`` and ``B`` are the sets of write groups in which keys A and B
were modified.  The metric lives in ``[0, 2]``: 2 when two keys are always
modified together, 0 when never.  Hierarchical clustering needs distances
that shrink as keys become more related, so Ocasta clusters on the inverse,
``distance = 1 / correlation`` (infinite when the correlation is 0).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

INFINITE_DISTANCE = math.inf


def correlation(group_set_a: frozenset | set, group_set_b: frozenset | set) -> float:
    """Correlation between two keys' write-group index sets.

    Raises
    ------
    ValueError
        If either set is empty — the paper only defines the metric "when
        both keys have a non-zero number [of] writes".
    """
    if not group_set_a or not group_set_b:
        raise ValueError("correlation is undefined for keys with no writes")
    common = len(group_set_a & group_set_b)
    return common / len(group_set_a) + common / len(group_set_b)


def correlation_to_distance(value: float) -> float:
    """Invert a correlation into a clustering distance."""
    if not 0.0 <= value <= 2.0:
        raise ValueError(f"correlation must lie in [0, 2], got {value}")
    if value == 0.0:
        return INFINITE_DISTANCE
    return 1.0 / value


def distance_to_correlation(value: float) -> float:
    """Inverse of :func:`correlation_to_distance`."""
    if value <= 0:
        raise ValueError(f"distance must be positive, got {value}")
    if math.isinf(value):
        return 0.0
    return 1.0 / value


class CorrelationMatrix:
    """Sparse pairwise correlations over a set of keys.

    Only pairs that co-occur in at least one write group are stored; all
    other pairs have correlation 0 (infinite distance).  Sparsity is what
    makes clustering whole applications tractable: a key pair that never
    co-modifies can never merge, so the finite-distance graph's connected
    components bound every cluster.
    """

    def __init__(self, key_groups: Mapping[str, set[int]]) -> None:
        for key, groups in key_groups.items():
            if not groups:
                raise ValueError(f"key {key!r} has no write groups")
        self._key_groups = {k: frozenset(v) for k, v in key_groups.items()}
        self._pairs: dict[frozenset[str], float] = {}
        self._neighbors: dict[str, set[str]] = {k: set() for k in key_groups}
        self._build()

    def _build(self) -> None:
        # Invert: group index -> keys in it; only co-grouped pairs matter.
        by_group: dict[int, list[str]] = {}
        for key, groups in self._key_groups.items():
            for index in groups:
                by_group.setdefault(index, []).append(key)
        for members in by_group.values():
            members.sort()
            for i, key_a in enumerate(members):
                for key_b in members[i + 1:]:
                    pair = frozenset((key_a, key_b))
                    if pair in self._pairs:
                        continue
                    self._pairs[pair] = correlation(
                        self._key_groups[key_a], self._key_groups[key_b]
                    )
                    self._neighbors[key_a].add(key_b)
                    self._neighbors[key_b].add(key_a)

    @property
    def keys(self) -> list[str]:
        return list(self._key_groups)

    def correlation_of(self, key_a: str, key_b: str) -> float:
        """Correlation between two keys (0 when they never co-modify)."""
        if key_a == key_b:
            raise ValueError("correlation with itself is not meaningful")
        self._check(key_a)
        self._check(key_b)
        return self._pairs.get(frozenset((key_a, key_b)), 0.0)

    def distance_of(self, key_a: str, key_b: str) -> float:
        return correlation_to_distance(self.correlation_of(key_a, key_b))

    def neighbors(self, key: str) -> set[str]:
        """Keys with non-zero correlation to ``key``."""
        self._check(key)
        return set(self._neighbors[key])

    def _check(self, key: str) -> None:
        if key not in self._key_groups:
            raise KeyError(key)

    def finite_pairs(self) -> Iterable[tuple[str, str, float]]:
        """All stored (key_a, key_b, correlation) entries."""
        for pair, value in self._pairs.items():
            key_a, key_b = sorted(pair)
            yield key_a, key_b, value

    def connected_components(self) -> list[set[str]]:
        """Components of the finite-distance graph.

        Every HAC cluster is a subset of one component, so clustering can
        run per-component.  Keys with no neighbours form singleton
        components.
        """
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in self._key_groups:
            if start in seen:
                continue
            stack = [start]
            component: set[str] = set()
            while stack:
                key = stack.pop()
                if key in component:
                    continue
                component.add(key)
                stack.extend(self._neighbors[key] - component)
            seen |= component
            components.append(component)
        return components

    def __len__(self) -> int:
        return len(self._key_groups)
